#!/usr/bin/env python3
"""N-process contention example.

Sweeps process count x scheduling policy through the declarative sweep API:
N copies of a streaming kernel (distinct address spaces, identical virtual
layouts — the adversarial ASID case) are time-sliced onto one accelerator
under each registered policy, once with the fabric TLB flushed at every
context switch (``svm``) and once with ASID-tagged entries surviving across
slices (``svm-shared-tlb``).  The printed table shows ASID survival paying
off as contention grows — the Fig. 12 story, driven directly through
``Grid``/``Sweep``/``ExperimentJob``.

Run with:  python examples/contention.py
"""

from __future__ import annotations

from repro.eval.harness import HarnessConfig
from repro.eval.report import format_table
from repro.eval.sweep import Grid
from repro.exec import ExperimentJob, MemoCache, SweepRunner
from repro.workloads import contention

PROCESS_COUNTS = (1, 2, 4, 8)
POLICIES = ("round-robin", "weighted-fair", "fault-aware")
MODELS = ("svm", "svm-shared-tlb")


def main() -> int:
    config = HarnessConfig(tlb_entries=64)
    specs = {(procs, policy): contention(
                 ["vecadd"] * procs, scale="tiny", quantum=2_000,
                 policy=policy,
                 weights=tuple(float(i + 1) for i in range(procs)))
             for procs in PROCESS_COUNTS for policy in POLICIES}

    grid = Grid(procs=PROCESS_COUNTS, policy=POLICIES, model=MODELS)
    sweep = grid.sweep(
        lambda procs, policy, model: ExperimentJob(
            model, specs[(procs, policy)], config),
        label="contention")
    runner = SweepRunner(jobs=4, cache=MemoCache())
    outcomes = sweep.run(runner)

    rows = []
    for procs in PROCESS_COUNTS:
        for policy in POLICIES:
            flush = outcomes.get(procs=procs, policy=policy, model="svm")
            shared = outcomes.get(procs=procs, policy=policy,
                                  model="svm-shared-tlb")
            saved = flush.total_cycles - shared.total_cycles
            rows.append({
                "processes": procs,
                "policy": policy,
                "flush_cycles": flush.total_cycles,
                "shared_cycles": shared.total_cycles,
                "asid_survival_saves": saved,
                "flush_misses": flush.tlb_misses,
                "shared_misses": shared.tlb_misses,
            })
    print(format_table(rows, title="N-process contention: flush-per-switch "
                                   "vs ASID survival"))
    print()
    print(runner.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
