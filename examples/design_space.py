#!/usr/bin/env python3
"""Design-space exploration example.

Sweeps TLB size, burst length and outstanding-request window for a blocked
matrix-multiply hardware thread, prints every design point and the
runtime-vs-LUT Pareto front — the automated dimensioning argument of the
synthesis flow (Fig. 10).  The grid is evaluated through a ``SweepRunner``
(process-pool workers + memo cache), and the runner's timing/cache summary
is printed at the end.

Run with:  python examples/design_space.py
"""

from __future__ import annotations

from repro.core.dse import SweepAxes
from repro.eval.experiments import fig10_dse
from repro.eval.report import format_table
from repro.exec import MemoCache, SweepRunner


def main() -> int:
    axes = SweepAxes(tlb_entries=(8, 16, 32, 64),
                     max_burst_bytes=(128, 256),
                     max_outstanding=(2, 4),
                     shared_walker=(False,))
    runner = SweepRunner(jobs=4, cache=MemoCache())
    result = fig10_dse(kernel="matmul", scale="tiny", axes=axes, runner=runner)

    def rows(points):
        return [{**p["params"], "runtime": p["runtime_cycles"],
                 "luts": p["luts"], "bram_kb": p["bram_kb"]} for p in points]

    print(format_table(rows(result["points"]), title="All design points"))
    print(format_table(rows(result["pareto"]), title="Pareto front (runtime vs LUTs)"))
    best = result["pareto"][0]
    print(f"Fastest configuration: {best['params']} "
          f"at {best['runtime_cycles']} cycles / {best['luts']} LUTs")
    print()
    print(runner.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
