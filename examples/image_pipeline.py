#!/usr/bin/env python3
"""Image-processing pipeline example: multiple hardware threads, one process.

Synthesizes a system with two hardware threads working on the same address
space — a 3x3 convolution filter and a histogram of the filtered image — and
runs them concurrently.  Demonstrates the multi-threaded synthesis path,
per-thread TLB sizing and the shared-bus contention statistics.

Run with:  python examples/image_pipeline.py [width] [height]
"""

from __future__ import annotations

import sys

from repro import (
    Platform,
    PlatformConfig,
    SystemSpec,
    SystemSynthesizer,
    ThreadSpec,
    size_tlb_for_footprint,
    workload,
)
from repro.eval.report import format_table


def main() -> int:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 128

    platform = Platform(PlatformConfig())

    filter_wl = workload("filter2d", scale="tiny", width=width,
                         height=height).bind(platform.space)
    hist_wl = workload("histogram", scale="tiny",
                       n=width * height // 4).bind(platform.space)

    page = platform.page_size
    spec = SystemSpec(
        name="image-pipeline",
        threads=[
            ThreadSpec(name="filter", kernel="filter2d",
                       tlb_entries=size_tlb_for_footprint(
                           filter_wl.footprint_bytes, page)),
            ThreadSpec(name="hist", kernel="histogram",
                       tlb_entries=size_tlb_for_footprint(
                           hist_wl.footprint_bytes, page)),
        ],
    )

    system = SystemSynthesizer().synthesize(spec, platform=platform)
    estimate = system.resource_estimate()
    print(f"Synthesized system '{spec.name}':")
    print(f"  threads          : {[t.name for t in spec.threads]}")
    print(f"  TLB entries      : "
          f"{ {t.name: t.tlb_entries for t in spec.threads} }")
    print(f"  resource estimate: {estimate.luts} LUTs, {estimate.ffs} FFs, "
          f"{estimate.bram_kb:.1f} KB BRAM, {estimate.dsps} DSPs")
    print(f"  fits on device   : {system.fits()}\n")

    result = system.run({"filter": filter_wl.make_kernel(),
                         "hist": hist_wl.make_kernel()})

    rows = []
    for name in ("filter", "hist"):
        rows.append({
            "thread": name,
            "fabric_cycles": result.per_thread_fabric_cycles[name],
            "wall_cycles": result.per_thread_wall_cycles[name],
            "tlb_hit_rate": round(result.tlb_hit_rate(name), 4),
        })
    print(format_table(rows, title="Per-thread execution"))

    stats = result.stats
    print(f"Total cycles (both threads)    : {result.total_cycles}")
    print(f"Bus transactions               : {int(stats.get('bus.requests', 0))}")
    print(f"Bus grants that waited         : "
          f"{int(stats.get('bus.contended_grants', 0))}")
    print(f"DRAM bytes transferred         : "
          f"{int(stats.get('dram.bytes_read', 0) + stats.get('dram.bytes_written', 0))}")
    print(f"Host driver overhead (cycles)  : {result.software_overhead_cycles}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
