#!/usr/bin/env python3
"""Quickstart: synthesize an SVM hardware-thread system and compare it with
the software and copy-DMA baselines on a single workload.

All registered execution models run as one sweep (parallel workers + memo
cache via ``SweepRunner``); every model returns the same ``RunOutcome``.

Run with:  python examples/quickstart.py [kernel] [scale]
"""

from __future__ import annotations

import sys

from repro import HarnessConfig, compare, registered_models, workload
from repro.eval.report import format_table
from repro.exec import MemoCache, SweepRunner


def main() -> int:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "vecadd"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"

    spec = workload(kernel, scale=scale)
    print(f"Workload: {spec.name}  (kernel={spec.kernel}, params={spec.params})")
    print(f"Registered execution models: {', '.join(registered_models())}")
    print("Running software, copy-DMA, SVM hardware thread and ideal models...\n")

    config = HarnessConfig(auto_size_tlb=True)
    runner = SweepRunner(jobs=4, cache=MemoCache())
    result = compare(spec, config, runner=runner)

    print(format_table([result.as_row()],
                       title="End-to-end cycles (fabric clock)"))

    breakdown = result["copydma"].breakdown
    print("Copy-DMA breakdown (cycles):")
    print(f"  dma alloc : {breakdown['alloc_cycles']}")
    print(f"  copy in   : {breakdown['copy_in_cycles']}")
    print(f"  compute   : {result['copydma'].fabric_cycles}")
    print(f"  copy out  : {breakdown['copy_out_cycles']}")
    print()
    print(f"SVM thread TLB hit rate : {result.svm.tlb_hit_rate:.3f}")
    print(f"SVM thread page faults  : {result.svm.faults}")
    print(f"Speedup vs software     : {result.speedup_vs_software:.2f}x")
    print(f"Speedup vs copy-DMA     : {result.speedup_vs_copydma:.2f}x")
    print(f"VM overhead vs ideal    : {result.vm_overhead:.3f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
