#!/usr/bin/env python3
"""Pointer-chasing example: why shared virtual memory matters.

A hardware thread traverses a linked list that lives in the host process's
heap.  With SVM the accelerator dereferences the application's own pointers;
with a conventional copy-based accelerator the host must serialise the whole
list (pointer fix-up into a DMA buffer) before the accelerator can touch it.
This example reproduces that comparison and also shows what happens when the
list is only partially resident (demand paging from the fabric).

The (residency × model) grid is declared through the sweep API and
dispatched in one parallel, memoized batch; results are read back by
coordinates.

Run with:  python examples/pointer_chasing.py [nodes]
"""

from __future__ import annotations

import sys

from repro import HarnessConfig, workload
from repro.eval.report import format_table
from repro.eval.sweep import Grid
from repro.exec import ExperimentJob, MemoCache, SweepRunner


def main() -> int:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 4096

    residencies = {1.0: "fully resident", 0.5: "50% resident"}
    config = HarnessConfig(auto_size_tlb=True)
    specs = {res: workload("linked_list", scale="tiny", nodes=nodes,
                           residency=res) for res in residencies}

    grid = Grid(residency=list(residencies),
                model=("software", "copydma", "svm"))
    sweep = grid.sweep(
        lambda residency, model: ExperimentJob(model, specs[residency], config),
        label="pointer_chasing")
    outcomes = sweep.run(SweepRunner(jobs=4, cache=MemoCache()))

    rows = []
    for residency, label in residencies.items():
        software = outcomes.get(residency=residency, model="software")
        dma = outcomes.get(residency=residency, model="copydma")
        svm = outcomes.get(residency=residency, model="svm")
        rows.append({
            "list state": label,
            "software": software.total_cycles,
            "copy_dma_total": dma.total_cycles,
            "copy_dma_marshalling": dma.marshalling_cycles,
            "svm_thread": svm.total_cycles,
            "svm_faults": svm.faults,
            "svm_vs_dma": round(dma.total_cycles / svm.total_cycles, 2),
        })

    print(f"Linked list traversal, {nodes} nodes of 16 bytes\n")
    print(format_table(rows, title="Pointer chasing: SVM vs copy-based accelerator"))
    # The canonical tidy view — one row per sweep point, coords + record
    # columns — comes straight off the outcomes (same schema the results
    # store and `repro query` serve):
    print(outcomes.to_table(
        title="Per-point records",
        columns=["residency", "model", "total_cycles", "faults", "tier"]))
    print("Note: the copy-based flow pays per-node pointer serialisation on")
    print("every invocation, while the SVM thread walks the in-place list and")
    print("only pays translation (TLB misses / demand faults) for pages it")
    print("actually touches.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
