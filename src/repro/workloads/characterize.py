"""Workload characterisation (Table 2).

Replays a bound workload's operation stream functionally (no timing) and
reports footprint, traffic, page behaviour and a locality measure — the
numbers a system designer uses to dimension TLBs, and which the evaluation
section tabulates for every benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from ..sim.process import Access, Burst, Compute, run_functional
from .specs import BoundWorkload


@dataclass(frozen=True)
class WorkloadCharacterisation:
    """Static characterisation of one workload's memory behaviour."""

    name: str
    pattern: str
    footprint_bytes: int
    touched_bytes: int
    memory_operations: int
    bytes_moved: int
    compute_cycles: int
    unique_pages: int
    page_reuse_factor: float       # accesses per unique page
    tlb_working_set_pages: int     # pages needed to cover 90% of accesses
    bytes_per_compute_cycle: float

    def as_row(self) -> Dict[str, object]:
        return {
            "workload": self.name,
            "pattern": self.pattern,
            "footprint_kb": self.footprint_bytes // 1024,
            "touched_kb": self.touched_bytes // 1024,
            "mem_ops": self.memory_operations,
            "bytes_moved_kb": self.bytes_moved // 1024,
            "compute_cycles": self.compute_cycles,
            "unique_pages": self.unique_pages,
            "page_reuse": round(self.page_reuse_factor, 1),
            "wss90_pages": self.tlb_working_set_pages,
            "bytes_per_cycle": round(self.bytes_per_compute_cycle, 2),
        }


def characterise(workload: BoundWorkload, page_size: int = 4096,
                 pattern: str = "") -> WorkloadCharacterisation:
    """Characterise one bound workload by functional replay."""
    ops = run_functional(workload.make_kernel())

    bytes_moved = 0
    mem_ops = 0
    compute_cycles = 0
    page_counts: Dict[int, int] = OrderedDict()

    for op in ops:
        if isinstance(op, Compute):
            compute_cycles += op.cycles
        elif isinstance(op, (Access, Burst)):
            mem_ops += 1
            if isinstance(op, Burst):
                size = op.total_bytes
            else:
                size = op.size
            bytes_moved += size
            first = op.addr // page_size
            last = (op.addr + size - 1) // page_size
            for vpn in range(first, last + 1):
                page_counts[vpn] = page_counts.get(vpn, 0) + 1

    unique_pages = len(page_counts)
    total_page_touches = sum(page_counts.values())
    reuse = total_page_touches / unique_pages if unique_pages else 0.0

    # 90% working set: smallest number of (hottest) pages covering 90% of
    # page touches — a proxy for the TLB size needed for high hit rates.
    wss90 = 0
    if total_page_touches:
        covered = 0
        for count in sorted(page_counts.values(), reverse=True):
            covered += count
            wss90 += 1
            if covered >= 0.9 * total_page_touches:
                break

    bytes_per_cycle = bytes_moved / compute_cycles if compute_cycles else float(bytes_moved)

    return WorkloadCharacterisation(
        name=workload.name,
        pattern=pattern,
        footprint_bytes=workload.footprint_bytes,
        touched_bytes=workload.touched_bytes,
        memory_operations=mem_ops,
        bytes_moved=bytes_moved,
        compute_cycles=compute_cycles,
        unique_pages=unique_pages,
        page_reuse_factor=reuse,
        tlb_working_set_pages=wss90,
        bytes_per_compute_cycle=bytes_per_cycle,
    )
