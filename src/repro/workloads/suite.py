"""Standard workload suites used by the evaluation.

Three size classes are provided.  ``tiny`` keeps unit/integration tests fast,
``default`` is what the benchmark harness runs (large enough that memory
behaviour dominates but small enough to simulate in seconds), ``large``
stresses TLB capacity and demand paging for the sweep experiments.
"""

from __future__ import annotations

from typing import Dict, List

from .specs import WorkloadSpec


def _sized(scale: str) -> Dict[str, Dict[str, int]]:
    if scale == "tiny":
        return {
            "vecadd": {"n": 4096},
            "saxpy": {"n": 4096},
            "matmul": {"n": 64, "block": 32},
            "merge_sort": {"n": 4096},
            "filter2d": {"width": 64, "height": 64},
            "linked_list": {"nodes": 1024, "node_bytes": 16},
            "histogram": {"n": 4096, "bins": 4096},
            "spmv": {"rows": 256, "nnz_per_row": 8},
            "random_access": {"table_bytes": 512 * 1024, "accesses": 2048},
        }
    if scale == "default":
        return {
            "vecadd": {"n": 65536},
            "saxpy": {"n": 65536},
            "matmul": {"n": 96, "block": 32},
            "merge_sort": {"n": 32768},
            "filter2d": {"width": 192, "height": 192},
            "linked_list": {"nodes": 8192, "node_bytes": 16},
            "histogram": {"n": 32768, "bins": 16384},
            "spmv": {"rows": 2048, "nnz_per_row": 8},
            "random_access": {"table_bytes": 4 * 1024 * 1024, "accesses": 16384},
        }
    if scale == "large":
        return {
            "vecadd": {"n": 262144},
            "saxpy": {"n": 262144},
            "matmul": {"n": 128, "block": 32},
            "merge_sort": {"n": 65536},
            "filter2d": {"width": 256, "height": 256},
            "linked_list": {"nodes": 32768, "node_bytes": 16},
            "histogram": {"n": 65536, "bins": 65536},
            "spmv": {"rows": 4096, "nnz_per_row": 12},
            "random_access": {"table_bytes": 16 * 1024 * 1024, "accesses": 32768},
        }
    raise ValueError(f"unknown scale {scale!r}; use tiny, default or large")


def standard_suite(scale: str = "default", residency: float = 1.0,
                   seed: int = 7) -> List[WorkloadSpec]:
    """The full evaluation suite (one workload per library kernel)."""
    sizes = _sized(scale)
    return [WorkloadSpec(name=kernel, kernel=kernel, params=params,
                         residency=residency, seed=seed)
            for kernel, params in sorted(sizes.items())]


def workload(kernel: str, scale: str = "default", residency: float = 1.0,
             seed: int = 7, **overrides: int) -> WorkloadSpec:
    """A single workload spec by kernel name, with optional size overrides."""
    params = dict(_sized(scale)[kernel])
    params.update(overrides)
    return WorkloadSpec(name=kernel, kernel=kernel, params=params,
                        residency=residency, seed=seed)


def pattern_classes() -> Dict[str, List[str]]:
    """Kernels grouped by access-pattern class (used by the Fig. 5 sweep)."""
    return {
        "streaming": ["vecadd", "saxpy", "merge_sort", "filter2d"],
        "blocked": ["matmul"],
        "pointer": ["linked_list"],
        "random": ["histogram", "spmv", "random_access"],
    }
