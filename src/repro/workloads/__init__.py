"""Workload generators and suites for the evaluation."""

from .characterize import WorkloadCharacterisation, characterise
from .multiprocess import MultiProcessSpec, contention, duet
from .specs import BoundWorkload, WorkloadSpec, available_workload_kernels
from .suite import pattern_classes, standard_suite, workload

__all__ = [
    "BoundWorkload",
    "MultiProcessSpec",
    "WorkloadCharacterisation",
    "WorkloadSpec",
    "available_workload_kernels",
    "characterise",
    "contention",
    "duet",
    "pattern_classes",
    "standard_suite",
    "workload",
]
