"""Workload specifications and binding to an address space.

A :class:`WorkloadSpec` describes a workload abstractly (which kernel, what
problem size, how much of it is resident at start).  Binding it to a process
address space allocates the buffers, generates auxiliary data (linked-list
chain order, histogram bin indices, sparse patterns) with a seeded RNG, and
yields a :class:`BoundWorkload` that can mint fresh kernel generators — one
per execution model — plus the byte counts every baseline needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..hwthread import kernels
from ..hwthread.hls import KernelSchedule, schedule_for
from ..hwthread.kernels import WORD
from ..os.address_space import AddressSpace, VMArea
from ..sim.process import KernelGenerator


@dataclass(frozen=True)
class WorkloadSpec:
    """Abstract description of one workload instance."""

    name: str
    kernel: str
    params: Dict[str, int] = field(default_factory=dict)
    residency: float = 1.0
    seed: int = 7
    burst_words: int = 64

    def __post_init__(self) -> None:
        if self.kernel not in _BINDERS:
            raise ValueError(f"unknown kernel {self.kernel!r}; "
                             f"known: {sorted(_BINDERS)}")
        if not 0.0 <= self.residency <= 1.0:
            raise ValueError("residency must be within [0, 1]")

    def bind(self, space: AddressSpace) -> "BoundWorkload":
        """Allocate buffers in ``space`` and return the bound workload."""
        return _BINDERS[self.kernel](self, space)

    @property
    def work_items(self) -> int:
        """Problem size (elements / nodes / accesses) this spec describes.

        Matches the ``items`` count of the bound workload without binding:
        each kernel's counter mirrors its binder's parameter defaults, so
        throughput metrics can be computed from the spec instead of guessing
        which ``params`` key holds the item count.
        """
        return _WORK_ITEMS[self.kernel](self)


@dataclass
class BoundWorkload:
    """A workload whose buffers live in a concrete address space."""

    spec: WorkloadSpec
    make_kernel: Callable[[], KernelGenerator]
    areas: List[VMArea]
    footprint_bytes: int          # total bytes of all mapped buffers
    touched_bytes: int            # bytes the kernel actually reads + writes
    copy_in_bytes: int            # bytes a copy-based accelerator must marshal in
    copy_out_bytes: int           # ... and out
    items: int                    # problem size (elements / nodes / pixels)
    #: Items needing pointer fix-up when marshalled into a physically
    #: contiguous DMA buffer (non-zero only for pointer-based structures).
    marshal_items: int = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kernel_name(self) -> str:
        return self.spec.kernel

    @property
    def schedule(self) -> KernelSchedule:
        return schedule_for(self.spec.kernel)

    @property
    def footprint_pages(self) -> int:
        # Footprint is reported in pages of the address space's page size by
        # the evaluation harness; store bytes and let the caller divide.
        return 0


# ---------------------------------------------------------------------------
# Binder helpers
# ---------------------------------------------------------------------------
#: One source of truth for every kernel's parameter defaults, shared by the
#: binders and the ``work_items`` counters so they cannot diverge.  (Dynamic
#: defaults — linked_list's ``visit`` follows ``nodes``, spmv's ``cols``
#: follows ``rows`` — stay in the binders.)
_PARAM_DEFAULTS: Dict[str, Dict[str, int]] = {
    "vecadd": {"n": 65536},
    "saxpy": {"n": 65536},
    "matmul": {"n": 96, "block": 32},
    "merge_sort": {"n": 32768},
    "filter2d": {"width": 256, "height": 256},
    "linked_list": {"nodes": 8192, "node_bytes": 16},
    "histogram": {"n": 32768, "bins": 16384, "zipf_like": 0},
    "spmv": {"rows": 2048, "nnz_per_row": 8},
    "random_access": {"table_bytes": 4 * 1024 * 1024, "accesses": 16384},
}


def _param(spec: WorkloadSpec, name: str) -> int:
    """A workload parameter, falling back to the kernel's default."""
    if name in spec.params:
        return spec.params[name]
    return _PARAM_DEFAULTS[spec.kernel][name]


def _mmap(space: AddressSpace, size: int, name: str, residency: float) -> VMArea:
    return space.mmap(size, name=name, residency=residency)


def _bind_vecadd(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    n = _param(spec, "n")
    size = n * WORD
    a = _mmap(space, size, f"{spec.name}.a", spec.residency)
    b = _mmap(space, size, f"{spec.name}.b", spec.residency)
    dst = _mmap(space, size, f"{spec.name}.dst", spec.residency)

    def make() -> KernelGenerator:
        return kernels.vecadd(dst.start, a.start, b.start, n,
                              burst_words=spec.burst_words)

    return BoundWorkload(spec=spec, make_kernel=make, areas=[a, b, dst],
                         footprint_bytes=3 * size, touched_bytes=3 * size,
                         copy_in_bytes=2 * size, copy_out_bytes=size, items=n)


def _bind_saxpy(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    n = _param(spec, "n")
    size = n * WORD
    x = _mmap(space, size, f"{spec.name}.x", spec.residency)
    y = _mmap(space, size, f"{spec.name}.y", spec.residency)
    dst = _mmap(space, size, f"{spec.name}.dst", spec.residency)

    def make() -> KernelGenerator:
        return kernels.saxpy(dst.start, x.start, y.start, n,
                             burst_words=spec.burst_words)

    return BoundWorkload(spec=spec, make_kernel=make, areas=[x, y, dst],
                         footprint_bytes=3 * size, touched_bytes=3 * size,
                         copy_in_bytes=2 * size, copy_out_bytes=size, items=n)


def _bind_matmul(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    n = _param(spec, "n")
    block = _param(spec, "block")
    size = n * n * WORD
    a = _mmap(space, size, f"{spec.name}.a", spec.residency)
    b = _mmap(space, size, f"{spec.name}.b", spec.residency)
    c = _mmap(space, size, f"{spec.name}.c", spec.residency)
    blocks = n // block
    touched = (2 * blocks * size) + size  # A and B streamed once per block row/col

    def make() -> KernelGenerator:
        return kernels.matmul(c.start, a.start, b.start, n, block=block)

    return BoundWorkload(spec=spec, make_kernel=make, areas=[a, b, c],
                         footprint_bytes=3 * size, touched_bytes=touched,
                         copy_in_bytes=2 * size, copy_out_bytes=size,
                         items=n * n)


def _bind_merge_sort(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    n = _param(spec, "n")
    size = n * WORD
    buf_a = _mmap(space, size, f"{spec.name}.a", spec.residency)
    buf_b = _mmap(space, size, f"{spec.name}.b", spec.residency)
    import math
    passes = max(1, math.ceil(math.log2(max(2, n))))

    def make() -> KernelGenerator:
        return kernels.merge_sort(buf_a.start, buf_b.start, n,
                                  burst_words=spec.burst_words)

    return BoundWorkload(spec=spec, make_kernel=make, areas=[buf_a, buf_b],
                         footprint_bytes=2 * size,
                         touched_bytes=2 * size * passes,
                         copy_in_bytes=size, copy_out_bytes=size, items=n)


def _bind_filter2d(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    width = _param(spec, "width")
    height = _param(spec, "height")
    size = width * height * WORD
    src = _mmap(space, size, f"{spec.name}.src", spec.residency)
    dst = _mmap(space, size, f"{spec.name}.dst", spec.residency)

    def make() -> KernelGenerator:
        return kernels.filter2d(dst.start, src.start, width, height,
                                burst_words=spec.burst_words)

    return BoundWorkload(spec=spec, make_kernel=make, areas=[src, dst],
                         footprint_bytes=2 * size, touched_bytes=2 * size,
                         copy_in_bytes=size, copy_out_bytes=size,
                         items=width * height)


def _bind_linked_list(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    nodes = _param(spec, "nodes")
    node_bytes = _param(spec, "node_bytes")
    visit = spec.params.get("visit", nodes)
    pool_bytes = nodes * node_bytes
    pool = _mmap(space, pool_bytes, f"{spec.name}.pool", spec.residency)

    rng = random.Random(spec.seed)
    order = list(range(nodes))
    rng.shuffle(order)
    chain = [pool.start + idx * node_bytes for idx in order[:visit]]

    def make() -> KernelGenerator:
        return kernels.linked_list(chain, node_bytes=node_bytes)

    touched = len(chain) * node_bytes
    return BoundWorkload(spec=spec, make_kernel=make, areas=[pool],
                         footprint_bytes=pool_bytes, touched_bytes=touched,
                         copy_in_bytes=pool_bytes, copy_out_bytes=0,
                         items=len(chain), marshal_items=nodes)


def _bind_histogram(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    n = _param(spec, "n")
    num_bins = _param(spec, "bins")
    skew = _param(spec, "zipf_like")
    src_size = n * WORD
    bins_size = num_bins * WORD
    src = _mmap(space, src_size, f"{spec.name}.src", spec.residency)
    bins = _mmap(space, bins_size, f"{spec.name}.bins", spec.residency)

    rng = random.Random(spec.seed)
    if skew:
        # Skewed distribution: 80% of updates hit 20% of the bins.
        hot = max(1, num_bins // 5)
        indices = [rng.randrange(hot) if rng.random() < 0.8
                   else rng.randrange(num_bins) for _ in range(n)]
    else:
        indices = [rng.randrange(num_bins) for _ in range(n)]

    def make() -> KernelGenerator:
        return kernels.histogram(src.start, n, bins.start, indices,
                                 burst_words=spec.burst_words)

    return BoundWorkload(spec=spec, make_kernel=make, areas=[src, bins],
                         footprint_bytes=src_size + bins_size,
                         touched_bytes=src_size + 2 * n * WORD,
                         copy_in_bytes=src_size + bins_size,
                         copy_out_bytes=bins_size, items=n)


def _bind_spmv(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    rows = _param(spec, "rows")
    nnz_per_row = _param(spec, "nnz_per_row")
    cols = spec.params.get("cols", rows)
    nnz = rows * nnz_per_row

    values = _mmap(space, nnz * WORD, f"{spec.name}.vals", spec.residency)
    colidx = _mmap(space, nnz * WORD, f"{spec.name}.cols", spec.residency)
    x = _mmap(space, cols * WORD, f"{spec.name}.x", spec.residency)
    y = _mmap(space, rows * WORD, f"{spec.name}.y", spec.residency)

    rng = random.Random(spec.seed)
    row_lengths = [nnz_per_row] * rows
    gathers = [rng.randrange(cols) for _ in range(nnz)]

    def make() -> KernelGenerator:
        return kernels.spmv(row_lengths, values.start, colidx.start,
                            x.start, y.start, gathers,
                            burst_words=spec.burst_words)

    footprint = (2 * nnz + cols + rows) * WORD
    touched = (2 * nnz + nnz + rows) * WORD
    return BoundWorkload(spec=spec, make_kernel=make,
                         areas=[values, colidx, x, y],
                         footprint_bytes=footprint, touched_bytes=touched,
                         copy_in_bytes=(2 * nnz + cols) * WORD,
                         copy_out_bytes=rows * WORD, items=nnz)


def _bind_random_access(spec: WorkloadSpec, space: AddressSpace) -> BoundWorkload:
    table_bytes = _param(spec, "table_bytes")
    accesses = _param(spec, "accesses")
    table = _mmap(space, table_bytes, f"{spec.name}.table", spec.residency)

    rng = random.Random(spec.seed)
    addresses = [table.start + rng.randrange(table_bytes // WORD) * WORD
                 for _ in range(accesses)]

    def make() -> KernelGenerator:
        return kernels.random_access(addresses, write_fraction=0.25)

    return BoundWorkload(spec=spec, make_kernel=make, areas=[table],
                         footprint_bytes=table_bytes,
                         touched_bytes=accesses * WORD,
                         copy_in_bytes=table_bytes, copy_out_bytes=table_bytes,
                         items=accesses)


_BINDERS: Dict[str, Callable[[WorkloadSpec, AddressSpace], BoundWorkload]] = {
    "vecadd": _bind_vecadd,
    "saxpy": _bind_saxpy,
    "matmul": _bind_matmul,
    "merge_sort": _bind_merge_sort,
    "filter2d": _bind_filter2d,
    "linked_list": _bind_linked_list,
    "histogram": _bind_histogram,
    "spmv": _bind_spmv,
    "random_access": _bind_random_access,
}


#: Per-kernel item counters; parameter defaults come from the same
#: ``_PARAM_DEFAULTS`` table the binders read, and each counter is checked
#: against the bound workload's ``items`` by the test suite.
_WORK_ITEMS: Dict[str, Callable[[WorkloadSpec], int]] = {
    "vecadd": lambda s: _param(s, "n"),
    "saxpy": lambda s: _param(s, "n"),
    "matmul": lambda s: _param(s, "n") ** 2,
    "merge_sort": lambda s: _param(s, "n"),
    "filter2d": lambda s: _param(s, "width") * _param(s, "height"),
    "linked_list": lambda s: min(_param(s, "nodes"),
                                 s.params.get("visit", _param(s, "nodes"))),
    "histogram": lambda s: _param(s, "n"),
    "spmv": lambda s: _param(s, "rows") * _param(s, "nnz_per_row"),
    "random_access": lambda s: _param(s, "accesses"),
}


def available_workload_kernels() -> List[str]:
    return sorted(_BINDERS)
