"""Multi-process workloads: address spaces time-sliced onto one accelerator.

The single-process evaluation never exercises what the PR-1 ASID semantics
exist for: *two* host processes whose hardware-thread work shares one fabric
TLB.  This module provides that scenario as a first-class workload family:

* :class:`MultiProcessSpec` — a frozen, picklable description of one workload
  per process plus the OS scheduling quantum,
* :func:`slice_plan` — the OS's time-slicing decision.  The per-process
  kernels are materialised into operation lists, their demand estimated, and
  a single-core :class:`~repro.os.scheduler.RoundRobinScheduler` produces the
  slice timeline; each slice is then realised as a run of operations,
* :func:`time_sliced_kernel` — replays the plan as one kernel generator: at
  every process boundary it drains outstanding memory traffic (``Fence``),
  invokes the supplied switch hook (the harness re-points the MMU at the next
  process's page table — *without* flushing the shared, ASID-tagged TLB) and
  pays the context-switch stall.

The result is the paper's TLB contention story end to end: translations of
both address spaces collide in one TLB, survive each other's time slices via
ASID tags, and die only under targeted or wildcard shootdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

from ..os.scheduler import RoundRobinScheduler, SchedulerConfig
from ..sim.process import Access, Burst, Compute, Fence, KernelGenerator, Operation
from .specs import WorkloadSpec
from .suite import workload


@dataclass(frozen=True)
class MultiProcessSpec:
    """One workload per process, contending for a single accelerator."""

    name: str
    specs: Tuple[WorkloadSpec, ...]
    #: OS scheduling quantum in (estimated) fabric cycles.
    quantum: int = 20_000

    def __post_init__(self) -> None:
        if len(self.specs) < 2:
            raise ValueError("a multi-process workload needs >= 2 processes")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")

    @property
    def num_processes(self) -> int:
        return len(self.specs)

    @property
    def work_items(self) -> int:
        return sum(spec.work_items for spec in self.specs)

    @property
    def kernel(self) -> str:
        """Representative kernel name (used for HLS schedules/resources)."""
        return self.specs[0].kernel


def duet(kernel_a: str, kernel_b: str | None = None, scale: str = "tiny",
         quantum: int = 20_000, residency: float = 1.0,
         seed: int = 7, **overrides: int) -> MultiProcessSpec:
    """Two processes running ``kernel_a`` and ``kernel_b`` (default: same).

    Identical kernels are the adversarial case: both address spaces map the
    *same* virtual page numbers (allocation is deterministic per space), so
    any TLB not keyed by ASID would hand process B process A's frames.
    """
    kernel_b = kernel_b or kernel_a
    a = workload(kernel_a, scale=scale, residency=residency, seed=seed,
                 **overrides)
    b = workload(kernel_b, scale=scale, residency=residency, seed=seed + 1,
                 **overrides)
    return MultiProcessSpec(name=f"{kernel_a}+{kernel_b}", specs=(a, b),
                            quantum=quantum)


# ---------------------------------------------------------------------------
# Slicing
# ---------------------------------------------------------------------------
def estimate_demand(ops: Iterable[Operation]) -> int:
    """Rough fabric-cycle demand of an operation list.

    Only *relative* accuracy matters: the estimate shapes how many operations
    fall into each scheduler slice, not any reported cycle count.
    """
    total = 0
    for op in ops:
        if isinstance(op, Compute):
            total += op.cycles
        elif isinstance(op, Burst):
            total += 1 + op.total_bytes // 8
        elif isinstance(op, Access):
            total += 1 + op.size // 8
        else:
            total += 1
    return total


#: One planned slice: (process index, operations it executes).
SlicePlan = List[Tuple[int, List[Operation]]]


def slice_plan(op_lists: Sequence[List[Operation]],
               quantum: int = 20_000) -> SlicePlan:
    """Time-slice per-process operation lists with the OS scheduler.

    A single accelerator slot (``num_cores=1``) is shared round-robin; the
    scheduler's cycle timeline is mapped back onto operations using the same
    demand estimate it was fed.  Every operation of every process appears in
    exactly one slice, in program order.
    """
    demands = [(str(index), max(1, estimate_demand(ops)))
               for index, ops in enumerate(op_lists)]
    scheduler = RoundRobinScheduler(SchedulerConfig(
        num_cores=1, quantum=quantum, context_switch_cycles=0))
    timeline = scheduler.timeline(demands)

    cursors = [0] * len(op_lists)
    plan: SlicePlan = []
    for time_slice in timeline:
        index = int(time_slice.thread)
        ops = op_lists[index]
        budget = time_slice.cycles
        chunk: List[Operation] = []
        while cursors[index] < len(ops) and budget > 0:
            op = ops[cursors[index]]
            chunk.append(op)
            budget -= max(1, estimate_demand((op,)))
            cursors[index] += 1
        if chunk:
            plan.append((index, chunk))
    # Estimation rounding can strand a tail of operations; run each tail in
    # one final slice so the plan always covers the full program.
    for index, ops in enumerate(op_lists):
        if cursors[index] < len(ops):
            plan.append((index, ops[cursors[index]:]))
    return plan


def time_sliced_kernel(plan: SlicePlan,
                       on_switch: Callable[[int], int],
                       initial_process: int = 0) -> KernelGenerator:
    """Replay a slice plan as one kernel generator.

    ``on_switch(process)`` is invoked at every process boundary — after a
    ``Fence`` has drained the outgoing process's outstanding operations — and
    returns the context-switch stall in fabric cycles.  The switch hook runs
    when the generator is advanced past the fence, i.e. exactly at the point
    the OS would perform the switch.
    """
    def generate() -> KernelGenerator:
        current = initial_process
        for process, ops in plan:
            if process != current:
                yield Fence()
                stall = on_switch(process)
                current = process
                if stall > 0:
                    yield Compute(cycles=stall)
            yield from ops
    return generate()
