"""Multi-process workloads: N address spaces time-sliced onto one accelerator.

The single-process evaluation never exercises what the PR-1 ASID semantics
exist for: several host processes whose hardware-thread work shares one
fabric TLB.  This module provides that scenario as a first-class workload
family:

* :class:`MultiProcessSpec` — a frozen, picklable description of one workload
  per process, per-process demand weights, the OS scheduling quantum and the
  scheduling *policy* (any name in the
  :mod:`repro.os.scheduler` registry: round-robin, weighted-fair,
  fault-aware, or anything registered later),
* :func:`slice_plan` — the OS's time-slicing decision.  The per-process
  kernels are materialised into operation lists, their demand and translation
  pressure estimated, and the selected policy produces the single-core slice
  timeline; each slice is then realised as a run of operations,
* :func:`time_sliced_kernel` — replays the plan as one kernel generator: at
  every process boundary it drains outstanding memory traffic (``Fence``),
  invokes the supplied switch hook (the harness re-points the MMU at the next
  process's page table — *without* flushing the shared, ASID-tagged TLB) and
  pays the context-switch stall.

The result is the paper's TLB contention story end to end, at any process
count: translations of N address spaces collide in one TLB, survive each
other's time slices via ASID tags, and die only under targeted or wildcard
shootdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..os.scheduler import SCHEDULER_POLICIES, SchedulerConfig, ThreadDemand, get_policy
from ..sim.process import Access, Burst, Compute, Fence, KernelGenerator, Operation
from .specs import WorkloadSpec
from .suite import workload


@dataclass(frozen=True)
class MultiProcessSpec:
    """One workload per process, contending for a single accelerator.

    A single-process spec (``len(specs) == 1``) is allowed as the
    no-contention control point of process-count sweeps (Fig. 12's N=1).
    """

    name: str
    specs: Tuple[WorkloadSpec, ...]
    #: OS scheduling quantum in (estimated) fabric cycles.
    quantum: int = 20_000
    #: Scheduling policy name (``repro.os.scheduler`` registry).
    policy: str = "round-robin"
    #: Relative demand weight per process (None = equal).  Consumed by
    #: weight-sensitive policies such as ``weighted-fair``.
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a multi-process workload needs >= 1 process")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.policy not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown scheduler policy {self.policy!r}; registered: "
                f"{', '.join(sorted(SCHEDULER_POLICIES))}")
        if self.weights is not None:
            if len(self.weights) != len(self.specs):
                raise ValueError("weights must match the number of processes")
            if any(w <= 0 for w in self.weights):
                raise ValueError("weights must be positive")

    @property
    def num_processes(self) -> int:
        return len(self.specs)

    @property
    def work_items(self) -> int:
        return sum(spec.work_items for spec in self.specs)

    @property
    def kernel(self) -> str:
        """Representative kernel name (used for HLS schedules/resources)."""
        return self.specs[0].kernel

    def weight_of(self, index: int) -> float:
        return 1.0 if self.weights is None else self.weights[index]


def contention(kernels: Sequence[str], scale: str = "tiny",
               quantum: int = 20_000, policy: str = "round-robin",
               weights: Optional[Sequence[float]] = None,
               residency: float = 1.0, seed: int = 7,
               **overrides: int) -> MultiProcessSpec:
    """N processes, one per kernel name, contending for one accelerator.

    Repeating a kernel name is the adversarial case: those address spaces map
    the *same* virtual page numbers (allocation is deterministic per space),
    so any TLB not keyed by ASID would hand one process another's frames.
    Each process gets a distinct workload seed so data-dependent kernels
    (linked_list, random_access) still differ.
    """
    if not kernels:
        raise ValueError("contention() needs at least one kernel")
    specs = tuple(workload(kernel, scale=scale, residency=residency,
                           seed=seed + index, **overrides)
                  for index, kernel in enumerate(kernels))
    return MultiProcessSpec(name="+".join(kernels), specs=specs,
                            quantum=quantum, policy=policy,
                            weights=None if weights is None else tuple(weights))


def duet(kernel_a: str, kernel_b: str | None = None, scale: str = "tiny",
         quantum: int = 20_000, residency: float = 1.0,
         seed: int = 7, **overrides: int) -> MultiProcessSpec:
    """Two processes running ``kernel_a`` and ``kernel_b`` (default: same)."""
    kernel_b = kernel_b or kernel_a
    return contention((kernel_a, kernel_b), scale=scale, quantum=quantum,
                      residency=residency, seed=seed, **overrides)


# ---------------------------------------------------------------------------
# Slicing
# ---------------------------------------------------------------------------
def estimate_demand(ops: Iterable[Operation]) -> int:
    """Rough fabric-cycle demand of an operation list.

    Only *relative* accuracy matters: the estimate shapes how many operations
    fall into each scheduler slice, not any reported cycle count.
    """
    total = 0
    for op in ops:
        if isinstance(op, Compute):
            total += op.cycles
        elif isinstance(op, Burst):
            total += 1 + op.total_bytes // 8
        elif isinstance(op, Access):
            total += 1 + op.size // 8
        else:
            total += 1
    return total


#: Upper bound on an estimated pressure value.  A degenerate near-zero-cycle
#: process (the N=1 control running a trivial kernel, say) would otherwise
#: divide a page count by almost nothing and hand ``fault-aware`` an
#: effectively infinite pressure — which turns into absurd quanta for its
#: neighbours.  Real workloads sit orders of magnitude below this cap.
MAX_PRESSURE = 1.0e6


def estimate_pressure(ops: Sequence[Operation],
                      page_size: int = 4096) -> float:
    """Translation pressure: distinct pages touched per kilocycle of demand.

    This is what a miss-driven scheduling policy can actually observe ahead
    of time: a process sweeping many distinct pages per cycle of work will
    miss (and fault) the most in a shared fabric TLB.  Zero-demand operation
    lists have zero pressure, and the estimate saturates at
    :data:`MAX_PRESSURE`, so downstream policies can never see a division
    blow-up from a trivial process.
    """
    pages = set()
    for op in ops:
        if isinstance(op, Access):
            pages.add(op.addr // page_size)
            pages.add((op.addr + max(0, op.size - 1)) // page_size)
        elif isinstance(op, Burst):
            first = op.addr // page_size
            last = (op.addr + max(0, op.total_bytes - 1)) // page_size
            pages.update(range(first, last + 1))
    demand = estimate_demand(ops)
    if demand <= 0:
        return 0.0
    return min(MAX_PRESSURE, 1000.0 * len(pages) / demand)


def thread_demands(op_lists: Sequence[List[Operation]],
                   weights: Optional[Sequence[float]] = None,
                   page_size: int = 4096) -> List[ThreadDemand]:
    """Per-process static demand/pressure estimates, as policies consume them.

    The shared front half of both scheduling paths: the static planner
    (:func:`slice_plan`) feeds these to ``policy.plan``, and the epoch-driven
    adaptive path feeds them to ``policy.quanta`` for the *initial* epoch —
    so an adaptive policy starts from exactly the footing its static
    counterpart would, and every later epoch is pure measurement.
    """
    return [ThreadDemand(name=str(index),
                         demand_cycles=max(1, estimate_demand(ops)),
                         weight=(1.0 if weights is None else weights[index]),
                         pressure=estimate_pressure(ops, page_size))
            for index, ops in enumerate(op_lists)]


#: One planned slice: (process index, operations it executes).
SlicePlan = List[Tuple[int, List[Operation]]]


def _take_chunk(ops: List[Operation], cursor: int,
                budget: int) -> Tuple[List[Operation], int]:
    """Pop operations from ``cursor`` until ``budget`` estimated cycles spent.

    The one greedy chunking rule mapping scheduler quanta onto operations,
    shared by the static planner (:func:`slice_plan`) and the epoch-driven
    adaptive path (:func:`adaptive_time_sliced_kernel`) so the two can never
    map quanta onto operations differently.
    """
    chunk: List[Operation] = []
    while cursor < len(ops) and budget > 0:
        op = ops[cursor]
        chunk.append(op)
        budget -= max(1, estimate_demand((op,)))
        cursor += 1
    return chunk, cursor


def slice_plan(op_lists: Sequence[List[Operation]],
               quantum: int = 20_000,
               policy: str = "round-robin",
               weights: Optional[Sequence[float]] = None,
               page_size: int = 4096) -> SlicePlan:
    """Time-slice per-process operation lists with a registered OS policy.

    A single accelerator slot (``num_cores=1``) is shared per the policy's
    plan; the scheduler's cycle timeline is mapped back onto operations using
    the same demand estimate it was fed.  Every operation of every process
    appears in exactly one slice, in program order.
    """
    demands = thread_demands(op_lists, weights, page_size)
    timeline = get_policy(policy).plan(
        demands, SchedulerConfig(num_cores=1, quantum=quantum,
                                 context_switch_cycles=0))

    cursors = [0] * len(op_lists)
    plan: SlicePlan = []
    for time_slice in timeline:
        index = int(time_slice.thread)
        chunk, cursors[index] = _take_chunk(op_lists[index], cursors[index],
                                            time_slice.cycles)
        if chunk:
            plan.append((index, chunk))
    # Estimation rounding can strand a tail of operations; run each tail in
    # one final slice so the plan always covers the full program.
    for index, ops in enumerate(op_lists):
        if cursors[index] < len(ops):
            plan.append((index, ops[cursors[index]:]))
    return plan


def time_sliced_kernel(plan: SlicePlan,
                       on_switch: Callable[[int], int],
                       initial_process: int = 0) -> KernelGenerator:
    """Replay a slice plan as one kernel generator.

    ``on_switch(process)`` is invoked at every process boundary — after a
    ``Fence`` has drained the outgoing process's outstanding operations — and
    returns the context-switch stall in fabric cycles.  The switch hook runs
    when the generator is advanced past the fence, i.e. exactly at the point
    the OS would perform the switch.
    """
    def generate() -> KernelGenerator:
        current = initial_process
        for process, ops in plan:
            if process != current:
                yield Fence()
                stall = on_switch(process)
                current = process
                if stall > 0:
                    yield Compute(cycles=stall)
            yield from ops
    return generate()


# ---------------------------------------------------------------------------
# Online (epoch-driven) slicing
# ---------------------------------------------------------------------------
def adaptive_time_sliced_kernel(op_lists: Sequence[List[Operation]],
                                policy,
                                config: SchedulerConfig,
                                bus,
                                on_switch: Callable[[int], int],
                                weights: Optional[Sequence[float]] = None,
                                page_size: int = 4096,
                                initial_process: int = 0) -> KernelGenerator:
    """Replan the time-slicing every epoch from live telemetry.

    Unlike :func:`time_sliced_kernel`, no complete plan exists up front: one
    *epoch* (a rotation granting every unfinished process one quantum-sized
    run of operations) is materialised at a time.  Every slice is bracketed
    by ``bus.begin_slice`` / ``bus.end_slice`` with a ``Fence`` in between —
    the generator resumes only once the fabric has drained, so the counter
    deltas the :class:`~repro.os.telemetry.TelemetryBus` attributes to the
    slice are exact.  After each epoch ``policy.observe(epoch_stats)`` may
    return new per-process quanta (clamped to >= 1) for the next epoch.

    The initial quanta come from ``policy.quanta`` over the same static
    demand estimates the static planner uses; ``on_switch`` has the same
    contract as in :func:`time_sliced_kernel`.  Generators advance lazily,
    so each epoch's operations are chosen *after* the previous epoch's have
    executed — this is what makes the feedback genuinely online.
    """
    demands = thread_demands(op_lists, weights, page_size)
    initial = policy.quanta(demands, config)
    quanta = {d.name: max(1, initial[d.name]) for d in demands}

    def generate() -> KernelGenerator:
        cursors = [0] * len(op_lists)
        current = initial_process
        while any(cursors[i] < len(op_lists[i]) for i in range(len(op_lists))):
            for index, ops in enumerate(op_lists):
                if cursors[index] >= len(ops):
                    continue
                quantum = quanta[str(index)]
                chunk, cursors[index] = _take_chunk(ops, cursors[index],
                                                    quantum)
                bus.begin_slice(str(index), quantum, len(chunk))
                if index != current:
                    # The previous slice's trailing Fence has drained the
                    # fabric; the switch cost lands on the incoming slice.
                    stall = on_switch(index)
                    current = index
                    if stall > 0:
                        yield Compute(cycles=stall)
                yield from chunk
                yield Fence()
                # The generator is only resumed here once every operation of
                # the slice has retired: the drained instant.
                bus.end_slice()
            epoch = bus.close_epoch(
                remaining={str(i): len(op_lists[i]) - cursors[i]
                           for i in range(len(op_lists))})
            replanned = policy.observe(epoch)
            if replanned:
                for name, value in replanned.items():
                    if name in quanta:
                        quanta[name] = max(1, int(value))
    return generate()
