"""Command-line interface: run any experiment of the evaluation by name.

Usage::

    python -m repro list                      # experiments, kernels, models
    python -m repro models                    # registered execution models
    python -m repro run table3 --scale tiny   # regenerate one table/figure
    python -m repro run fig5 --json           # machine-readable output
    python -m repro compare matmul --scale tiny --models svm,copydma
    python -m repro run fig5 --results-db results.db   # persist outcomes
    python -m repro query --db results.db --experiment fig5_tlb_sweep
    python -m repro broker serve --db sweeps.db --port 8754   # HTTP broker
    python -m repro worker --broker sweeps.db             # shared-fs fleet
    python -m repro worker --broker http://host:8754      # networked fleet
    python -m repro sweep submit --broker http://host:8754 spec.json
    python -m repro sweep results --broker sweeps.db <id> --follow

``--broker`` takes a broker URL: a bare path or ``sqlite:///path/to.db``
opens the SQLite backend directly (all processes share the file), while
``http://host:port`` talks to a ``repro broker serve`` server — no shared
filesystem required.

The ``run`` subcommand is built entirely on the experiment metadata in
:data:`repro.eval.experiments.EXPERIMENTS` (which knobs each experiment
declares); the ``compare``/``models`` subcommands on the execution-model
registry (:mod:`repro.models`); the ``query`` subcommand on the append-only
results store (:mod:`repro.store`).  Registering a new experiment or model
makes it reachable here without touching this module.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .eval.experiments import EXPERIMENTS
from .eval.harness import HarnessConfig, compare
from .eval.report import (format_nested_series, format_output, format_series,
                          format_table)
from .exec import SweepRunner, default_cache
from .models import get_model, registered_models
from .store import open_results_store
from .workloads import available_workload_kernels, workload

#: Default on-disk cache location; ``--cache-dir`` / ``REPRO_CACHE_DIR``
#: override, ``--no-cache`` disables caching entirely.
DEFAULT_CACHE_DIR = ".repro-cache"


# ---------------------------------------------------------------------------
# Output rendering
# ---------------------------------------------------------------------------
def _print_output(rows: List[dict], columns: Optional[List[str]] = None,
                  fmt: str = "table", title: str = "") -> None:
    """Print rows through the shared :func:`format_output` renderer.

    CSV already ends with a newline (no extra one); table and JSON get the
    terminating newline ``print`` adds.
    """
    text = format_output(rows, columns=columns, fmt=fmt, title=title)
    print(text, end="" if fmt == "csv" else "\n")


def _render(result: object) -> str:
    """Best-effort text rendering of an experiment result structure."""
    if isinstance(result, list) and result and isinstance(result[0], dict):
        return format_table(result)
    if isinstance(result, dict):
        values = list(result.values())
        if values and isinstance(values[0], dict) and all(
                isinstance(v, dict) for v in values):
            try:
                return format_nested_series(result)   # {group: {name: [..]}}
            except Exception:                          # fall through to JSON
                pass
        if values and isinstance(values[0], list):
            try:
                return format_series(result)
            except Exception:
                pass
    return json.dumps(result, indent=2, default=str)


def _to_rows(result: object) -> List[dict]:
    """Flatten any experiment result structure into a list of row dicts."""
    if isinstance(result, list) and all(isinstance(r, dict) for r in result):
        return list(result)
    if isinstance(result, dict):
        values = list(result.values())
        # {group: {name: [values...]}} — nested per-kernel series.
        if values and all(isinstance(v, dict) for v in values):
            rows = []
            for group, series in result.items():
                for row in _series_rows(series):
                    rows.append({"group": group, **row})
            return rows
        # {name: [row dicts...]} — e.g. fig10's points/pareto sets.
        if values and all(isinstance(v, list) and v
                          and all(isinstance(i, dict) for i in v)
                          for v in values):
            return [{"series": name, **row}
                    for name, rows_ in result.items() for row in rows_]
        # {name: [values...]} — flat series.
        if values and all(isinstance(v, (list, tuple)) for v in values):
            return _series_rows(result)
        # Flat scalar mapping — one row.
        return [dict(result)]
    raise ValueError(f"cannot tabulate result of type {type(result).__name__}")


def _series_rows(series: dict) -> List[dict]:
    length = max((len(v) for v in series.values()), default=0)
    return [{key: (values[i] if i < len(values) else "")
             for key, values in series.items()}
            for i in range(length)]


def _emit(result: object, args: argparse.Namespace) -> None:
    # ``--json`` is a raw passthrough of the experiment's own structure
    # (pinned output contract); row-shaped formats go through the shared
    # ``format_output`` renderer after ``_to_rows`` flattening.
    if getattr(args, "json", False):
        print(json.dumps(result, indent=2, default=str))
        return
    if getattr(args, "csv", False):
        _print_output(_to_rows(result), fmt="csv")
        return
    print(_render(result))


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for virtual-memory-enabled "
                    "hardware threads (DATE 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, kernels and models")
    sub.add_parser("models", help="list registered execution models")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def positive_float(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
        return value

    def add_exec_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                         help="evaluate independent experiment points on N "
                              "worker processes (default: 1, serial)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="disable memoization of repeated experiment "
                              "points (cache is on by default)")
        cmd.add_argument("--cache-dir", metavar="DIR",
                         default=os.environ.get("REPRO_CACHE_DIR",
                                                DEFAULT_CACHE_DIR),
                         help="persist the memo cache here so hits survive "
                              "across invocations (default: %(default)s, "
                              "or $REPRO_CACHE_DIR)")
        cmd.add_argument("--refresh-cache", action="store_true",
                         help="drop all cached results first, then re-run "
                              "and repopulate (use after changing simulator "
                              "code within one version)")
        cmd.add_argument("--cache-max-mb", type=positive_float, default=None,
                         metavar="MB",
                         help="cap the on-disk cache; least-recently-used "
                              "entries are evicted past the cap (default: "
                              "$REPRO_CACHE_MAX_MB, or uncapped)")
        cmd.add_argument("--stats", action="store_true",
                         help="print the runner summary (timings, cache and "
                              "tier accounting) as JSON on stderr instead "
                              "of the text form")
        add_results_db_flag(cmd)

    def add_results_db_flag(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--results-db", metavar="PATH",
                         default=os.environ.get("REPRO_RESULTS_DB") or None,
                         help="append every computed outcome to this "
                              "append-only SQLite results store (queryable "
                              "with `repro query`; default: "
                              "$REPRO_RESULTS_DB, or disabled)")

    def add_output_flags(cmd: argparse.ArgumentParser) -> None:
        fmt = cmd.add_mutually_exclusive_group()
        fmt.add_argument("--json", action="store_true",
                         help="emit the raw result structure as JSON")
        fmt.add_argument("--csv", action="store_true",
                         help="emit the result as CSV rows")

    run = sub.add_parser("run", help="run one experiment (table/figure)")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", default="tiny",
                     choices=("tiny", "default", "large"),
                     help="workload size class (where applicable)")
    run.add_argument("--models", default=None, metavar="A,B,...",
                     help="restrict a model-sweeping experiment (table3, "
                          "fig11, ...) to these registered execution models")
    run.add_argument("--tier", default=None,
                     choices=("auto", "event", "replay"),
                     help="execution tier for experiments that support it: "
                          "replay records each op stream once and replays it "
                          "through the fastpath engine (identical results, "
                          "less wall-clock); auto falls back to the event "
                          "simulator when a point is ineligible")
    run.add_argument("--explorer", default=None, metavar="NAME",
                     help="design-space exploration backend for adaptive-DSE "
                          "experiments (fig14): exhaustive evaluates the "
                          "whole grid, successive-halving searches it under "
                          "--budget; any backend registered via "
                          "repro.dse.register_explorer is accepted")
    run.add_argument("--budget", type=positive_int, default=None, metavar="N",
                     help="hard evaluation budget for adaptive-DSE "
                          "experiments: at most N evaluator runs, warm-start "
                          "adoptions from the results store are free")
    add_exec_flags(run)
    add_output_flags(run)

    bench = sub.add_parser(
        "bench",
        help="run the benchmark suite; optionally gate against a baseline")
    bench.add_argument("--output", metavar="PATH", default=None,
                       help="write the report here "
                            "(default: BENCH_<sha>.json)")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="compare against this baseline and exit 1 if "
                            "wall time or cycle counts regress past the "
                            "threshold")
    bench.add_argument("--write-baseline", metavar="PATH", nargs="?",
                       const="benchmarks/baseline.json", default=None,
                       help="also write the report as the new baseline "
                            "(default path: %(const)s)")
    bench.add_argument("--threshold", type=float, default=None, metavar="PCT",
                       help="allowed relative growth before failing "
                            "(default: 0.20 = 20%%)")
    bench.add_argument("--check-baseline-fresh", metavar="PATH", nargs="?",
                       const="benchmarks/baseline.json", default=None,
                       help="exit 1 if the committed baseline's cycle "
                            "metrics differ at all from this run — any "
                            "drift, improvements included, means the "
                            "baseline needs a --write-baseline refresh "
                            "(default path: %(const)s)")
    bench.add_argument("--only", metavar="A,B,...", default=None,
                       help="run only these suite entries (comma-separated; "
                            "the scheduled default-scale CI job runs the "
                            "contention entries this way)")
    bench.add_argument("--scale", default="tiny",
                       choices=("tiny", "default", "large"),
                       help="workload size class for every entry (the "
                            "committed baseline is tiny-scale: gate flags "
                            "only make sense at tiny)")
    bench.add_argument("--summary", metavar="PATH", default=None,
                       help="append a markdown drift table (this run vs "
                            "--summary-baseline) to PATH — pass "
                            "$GITHUB_STEP_SUMMARY in CI")
    bench.add_argument("--summary-baseline", metavar="PATH",
                       default="benchmarks/baseline.json",
                       help="baseline the --summary table compares against "
                            "(default: %(default)s; never fails the run)")
    bench.add_argument("--json", action="store_true",
                       help="print the report as JSON on stdout")
    add_results_db_flag(bench)

    cmp_cmd = sub.add_parser("compare",
                             help="compare execution models on one kernel")
    cmp_cmd.add_argument("kernel", choices=available_workload_kernels())
    cmp_cmd.add_argument("--scale", default="tiny",
                         choices=("tiny", "default", "large"))
    cmp_cmd.add_argument("--tlb-entries", type=int, default=None,
                         help="fixed TLB size (default: auto-sized)")
    cmp_cmd.add_argument("--models", default=None, metavar="A,B,...",
                         help="comma-separated execution models to run "
                              "(default: all canonical models)")
    add_exec_flags(cmp_cmd)
    add_output_flags(cmp_cmd)

    def add_broker_flag(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--broker", metavar="URL", required=True,
                         help="broker URL: a path or sqlite:///path/to.db "
                              "opens the SQLite backend (file shared by "
                              "submitters and workers, created on first "
                              "use); http://host:port connects to a "
                              "`repro broker serve` server")

    def add_worker_cache_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--no-cache", action="store_true",
                         help="do not consult/populate the shared memo store")
        cmd.add_argument("--cache-dir", metavar="DIR",
                         default=os.environ.get("REPRO_CACHE_DIR",
                                                DEFAULT_CACHE_DIR),
                         help="fleet-wide memo store directory shared with "
                              "other workers and submitters "
                              "(default: %(default)s, or $REPRO_CACHE_DIR)")

    worker_cmd = sub.add_parser(
        "worker",
        help="run a sweep worker: claim, lease, execute and report jobs "
             "from a broker until the queue stays idle")
    add_broker_flag(worker_cmd)
    add_worker_cache_flags(worker_cmd)
    worker_cmd.add_argument("--id", default=None, metavar="NAME",
                            help="worker id recorded on claims/results "
                                 "(default: <hostname>-<pid>)")
    worker_cmd.add_argument("--lease-seconds", type=positive_float,
                            default=None, metavar="S",
                            help="claim lease duration; a worker that dies "
                                 "frees its job after this long "
                                 "(default: the broker's 30s)")
    worker_cmd.add_argument("--idle-grace", type=float, default=0.0,
                            metavar="S",
                            help="keep polling this long after the queue "
                                 "empties before exiting (default: exit on "
                                 "the first empty poll)")
    worker_cmd.add_argument("--poll-interval", type=positive_float,
                            default=0.05, metavar="S",
                            help="sleep between empty polls "
                                 "(default: %(default)s)")
    worker_cmd.add_argument("--max-jobs", type=positive_int, default=None,
                            metavar="N",
                            help="exit after executing N jobs")

    broker_cmd = sub.add_parser(
        "broker", help="run broker services (the HTTP front for a fleet)")
    broker_sub = broker_cmd.add_subparsers(dest="broker_command",
                                           required=True)
    serve = broker_sub.add_parser(
        "serve",
        help="serve a SQLite broker over HTTP so workers and submitters "
             "need no shared filesystem (connect with "
             "--broker http://host:port)")
    serve.add_argument("--db", metavar="PATH", required=True,
                       help="SQLite broker file backing the server "
                            "(created on first use)")
    serve.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                       help="bind address (default: %(default)s; use "
                            "0.0.0.0 to accept remote workers)")
    serve.add_argument("--port", type=int, default=8754, metavar="N",
                       help="listen port (default: %(default)s; 0 picks a "
                            "free port and prints it)")
    serve.add_argument("--blob-dir", metavar="DIR", default=None,
                       help="persist large payloads/values as "
                            "content-addressed files here (default: "
                            "in-memory, lost on restart)")
    serve.add_argument("--lease-seconds", type=positive_float, default=None,
                       metavar="S",
                       help="fleet-wide claim lease duration; connecting "
                            "workers inherit it (default: the broker's 30s)")
    serve.add_argument("--max-request-mb", type=positive_float, default=64.0,
                       metavar="MB",
                       help="reject request bodies larger than this with "
                            "HTTP 413 (default: %(default)s)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every request to stderr")
    # The server owns the fleet-wide memo/results consult: clients cannot
    # ship store handles over the wire, so these flags live here.
    add_worker_cache_flags(serve)
    add_results_db_flag(serve)

    sweep_cmd = sub.add_parser(
        "sweep", help="submit sweeps to a broker and poll their results")
    sweep_sub = sweep_cmd.add_subparsers(dest="sweep_command", required=True)

    submit = sweep_sub.add_parser(
        "submit", help="enqueue a JSON sweep spec; prints the sweep id")
    add_broker_flag(submit)
    add_worker_cache_flags(submit)
    submit.add_argument("spec", nargs="?", default="-", metavar="SPEC.json",
                        help="sweep spec file ('-' or omitted: read stdin)")
    submit.add_argument("--id-only", action="store_true",
                        help="print only the sweep id (for scripting)")
    # At enqueue time the broker consults the persistent results store too:
    # any point a past run recorded under this package version is adopted
    # as done without queueing it.
    add_results_db_flag(submit)

    status = sweep_sub.add_parser("status", help="one sweep's state counts")
    add_broker_flag(status)
    status.add_argument("sweep_id")
    status.add_argument("--json", action="store_true",
                        help="emit the raw status record as JSON")

    results = sweep_sub.add_parser(
        "results",
        help="stream a sweep's finished points as JSON lines")
    add_broker_flag(results)
    results.add_argument("sweep_id")
    results.add_argument("--follow", action="store_true",
                         help="poll until every job finishes, printing each "
                              "point as it completes")
    results.add_argument("--timeout", type=positive_float, default=None,
                         metavar="S",
                         help="bound --follow; exit 1 if the sweep is still "
                              "running after S seconds")
    results.add_argument("--poll-interval", type=positive_float, default=0.2,
                         metavar="S",
                         help="sleep between polls while following "
                              "(default: %(default)s)")
    results.add_argument("--format", default="jsonl",
                         choices=("jsonl", "table", "csv", "json"),
                         help="jsonl streams one JSON object per finished "
                              "point as it arrives (default); table/csv/"
                              "json collect the points into one-row-per-"
                              "point output via the shared renderer")

    list_cmd = sweep_sub.add_parser("list", help="status of every sweep")
    add_broker_flag(list_cmd)
    list_cmd.add_argument("--json", action="store_true",
                          help="emit the raw status records as JSON")

    query = sub.add_parser(
        "query",
        help="query an append-only results store written via --results-db")
    query.add_argument("--db", metavar="PATH",
                       default=os.environ.get("REPRO_RESULTS_DB") or None,
                       help="the results store file to read "
                            "(default: $REPRO_RESULTS_DB)")
    query.add_argument("--experiment", default=None,
                       help="restrict to rows recorded under this "
                            "experiment/sweep label ('bench' for the "
                            "benchmark suite)")
    query.add_argument("--model", default=None,
                       help="restrict to one execution model")
    query.add_argument("--kernel", default=None,
                       help="restrict to one workload kernel")
    query.add_argument("--sha", default=None,
                       help="restrict to rows recorded at this git sha")
    query.add_argument("--tier", default=None,
                       help="restrict to one execution tier (event/replay)")
    query.add_argument("--coord", action="append", default=[],
                       metavar="AXIS=VALUE",
                       help="restrict to rows whose sweep coordinates "
                            "contain AXIS=VALUE (repeatable)")
    query.add_argument("--since", default=None, metavar="WHEN",
                       help="only rows recorded at or after this ISO "
                            "date/datetime (UTC)")
    query.add_argument("--until", default=None, metavar="WHEN",
                       help="only rows recorded at or before this ISO "
                            "date/datetime (UTC)")
    query.add_argument("--limit", type=positive_int, default=None,
                       metavar="N", help="emit at most N rows")
    query.add_argument("--columns", default=None, metavar="A,B,...",
                       help="restrict and order the output columns")
    query.add_argument("--trend", default=None, metavar="METRIC",
                       help="aggregate METRIC per git sha (runs + min/mean/"
                            "max) instead of listing individual rows — the "
                            "cross-commit trend view")
    query.add_argument("--format", default="table",
                       choices=("table", "csv", "json"),
                       help="output format (default: %(default)s)")
    return parser


def _parse_models(text: str):
    """Comma-separated model names -> tuple, or None (and a message) if any
    name is not in the registry."""
    models = tuple(name.strip() for name in text.split(",") if name.strip())
    unknown = set(models) - set(registered_models())
    if unknown:
        print(f"unknown models: {', '.join(sorted(unknown))} "
              f"(registered: {', '.join(registered_models())})",
              file=sys.stderr)
        return None
    return models


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    max_bytes = None
    if args.cache_max_mb is not None:
        max_bytes = int(args.cache_max_mb * 1024 * 1024)
    cache = None if args.no_cache else default_cache(args.cache_dir,
                                                     max_bytes=max_bytes)
    if cache is not None and args.refresh_cache:
        cache.clear()
    results = (open_results_store(args.results_db)
               if getattr(args, "results_db", None) else None)
    return SweepRunner(jobs=args.jobs, cache=cache, results=results)


def _report_runner(runner: SweepRunner, args: argparse.Namespace) -> None:
    """The post-run runner summary on stderr: JSON with ``--stats``."""
    if getattr(args, "stats", False):
        print(json.dumps(runner.summary_dict(), indent=2, sort_keys=True),
              file=sys.stderr)
    elif runner.timings:
        print(runner.summary(), file=sys.stderr)


def _sweep_memo(args: argparse.Namespace):
    """The shared fleet memo store a worker/submitter should attach to."""
    if args.no_cache:
        return None
    return default_cache(args.cache_dir)


def _sweep_results(args: argparse.Namespace):
    """The persistent results store a submitter should consult, if any."""
    if getattr(args, "results_db", None):
        return open_results_store(args.results_db)
    return None


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:")
        for name in sorted(EXPERIMENTS):
            exp = EXPERIMENTS[name]
            print(f"  {name:<18s} {exp.title}")
        print("kernels:    ", ", ".join(available_workload_kernels()))
        print("models:     ", ", ".join(registered_models()))
        return 0

    if args.command == "models":
        for name in registered_models():
            model = get_model(name)
            doc = (type(model).__doc__ or model.__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
            print(f"{name:<12s} {summary}")
        return 0

    if args.command == "run":
        exp = EXPERIMENTS[args.experiment]
        overrides = {}
        if args.models:
            models = _parse_models(args.models)
            if models is None:
                return 2
            if "models" not in exp.knobs:
                print(f"experiment {exp.name!r} does not sweep models "
                      f"(knobs: {', '.join(exp.knobs)})", file=sys.stderr)
                return 2
            overrides["models"] = models
        if args.tier:
            if "tier" not in exp.knobs:
                print(f"experiment {exp.name!r} does not select execution "
                      f"tiers (knobs: {', '.join(exp.knobs)})",
                      file=sys.stderr)
                return 2
            overrides["tier"] = args.tier
        if args.explorer:
            if "explorer" not in exp.knobs:
                print(f"experiment {exp.name!r} does not take an exploration "
                      f"backend (knobs: {', '.join(exp.knobs)})",
                      file=sys.stderr)
                return 2
            from .dse import explorer_names
            if args.explorer not in explorer_names():
                print(f"unknown explorer {args.explorer!r} "
                      f"(registered: {', '.join(explorer_names())})",
                      file=sys.stderr)
                return 2
            overrides["explorer"] = args.explorer
        if args.budget is not None:
            if "budget" not in exp.knobs:
                print(f"experiment {exp.name!r} does not take an evaluation "
                      f"budget (knobs: {', '.join(exp.knobs)})",
                      file=sys.stderr)
                return 2
            overrides["budget"] = args.budget
        # Built unconditionally so cache flags (--refresh-cache in
        # particular) take effect even for non-sweepable experiments.
        runner = _make_runner(args)
        result = exp.run(scale=args.scale,
                         runner=runner if exp.sweepable else None,
                         **overrides)
        _emit(result, args)
        _report_runner(runner, args)
        return 0

    if args.command == "bench":
        from .eval import bench as bench_mod
        only = None
        if args.only:
            only = [name.strip() for name in args.only.split(",")
                    if name.strip()]
            unknown = set(only) - set(bench_mod.BENCH_SUITE)
            if unknown:
                print(f"unknown benchmark entries: "
                      f"{', '.join(sorted(unknown))} "
                      f"(suite: {', '.join(bench_mod.BENCH_SUITE)})",
                      file=sys.stderr)
                return 2
            # The gates and the baseline writer are whole-suite semantics: a
            # subset run would report every skipped entry as a regression /
            # as drift, or overwrite the baseline with a partial one.
            incompatible = [flag for flag, value in
                            (("--baseline", args.baseline),
                             ("--check-baseline-fresh",
                              args.check_baseline_fresh),
                             ("--write-baseline", args.write_baseline))
                            if value]
            if incompatible:
                print(f"--only runs a subset of the suite and cannot be "
                      f"combined with {', '.join(incompatible)} "
                      "(whole-suite semantics)", file=sys.stderr)
                return 2
        if args.scale != "tiny":
            # The committed baseline is tiny-scale: gating against it at
            # another scale reports nonsense regressions, and writing it
            # would poison every subsequent CI gate.
            incompatible = [flag for flag, value in
                            (("--baseline", args.baseline),
                             ("--check-baseline-fresh",
                              args.check_baseline_fresh),
                             ("--write-baseline", args.write_baseline))
                            if value]
            if incompatible:
                print(f"--scale {args.scale} cannot be combined with "
                      f"{', '.join(incompatible)}: the committed baseline "
                      "is tiny-scale", file=sys.stderr)
                return 2
        count = len(only) if only is not None else len(bench_mod.BENCH_SUITE)
        print(f"benchmark suite ({count} entries, serial, "
              f"scale={args.scale}):", file=sys.stderr)
        report = bench_mod.run_suite(
            progress=lambda line: print(line, file=sys.stderr),
            scale=args.scale, only=only)
        output = args.output or f"BENCH_{report.sha}.json"
        bench_mod.write_report(report, output)
        print(f"wrote {output}", file=sys.stderr)
        if args.results_db:
            store = open_results_store(args.results_db)
            appended = store.record_bench(report, scale=args.scale)
            print(f"recorded {appended} bench row(s) in {args.results_db} "
                  "(query with: repro query --experiment bench "
                  f"--db {args.results_db})", file=sys.stderr)
        if args.write_baseline:
            bench_mod.write_baseline(report, args.write_baseline)
            print(f"wrote baseline {args.write_baseline} "
                  "(exact cycles, padded wall budgets)", file=sys.stderr)
        if args.json:
            print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        if args.summary:
            baseline_data = None
            if os.path.exists(args.summary_baseline):
                baseline_data = bench_mod.load_report(args.summary_baseline)
                if only is not None:
                    # Subset run: only compare the entries that actually ran,
                    # so skipped benchmarks don't read as drift.
                    baseline_data = dict(baseline_data)
                    baseline_data["records"] = {
                        name: record
                        for name, record in baseline_data["records"].items()
                        if name in report.records}
            with open(args.summary, "a") as fh:
                fh.write(bench_mod.summarize_drift(report.as_dict(),
                                                   baseline_data))
            print(f"appended drift summary to {args.summary}",
                  file=sys.stderr)
        failed = False
        if args.baseline:
            threshold = (args.threshold if args.threshold is not None
                         else bench_mod.DEFAULT_THRESHOLD)
            problems = bench_mod.compare(report.as_dict(),
                                         bench_mod.load_report(args.baseline),
                                         threshold=threshold)
            if problems:
                print(f"benchmark regression gate FAILED "
                      f"(vs {args.baseline}):", file=sys.stderr)
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
                failed = True
            else:
                print(f"benchmark regression gate passed "
                      f"(vs {args.baseline}, threshold "
                      f"+{threshold:.0%})", file=sys.stderr)
        if args.check_baseline_fresh:
            drift = bench_mod.check_freshness(
                report.as_dict(),
                bench_mod.load_report(args.check_baseline_fresh))
            if drift:
                print(f"baseline {args.check_baseline_fresh} is STALE — "
                      "cycle metrics drifted; refresh it with "
                      "`repro bench --write-baseline`:", file=sys.stderr)
                for problem in drift:
                    print(f"  {problem}", file=sys.stderr)
                failed = True
            else:
                print(f"baseline {args.check_baseline_fresh} is fresh "
                      "(cycle metrics exactly match this run)",
                      file=sys.stderr)
        return 1 if failed else 0

    if args.command == "compare":
        if args.tlb_entries is None:
            config = HarnessConfig(auto_size_tlb=True)
        else:
            config = HarnessConfig(tlb_entries=args.tlb_entries)
        models = None
        if args.models:
            models = _parse_models(args.models)
            if models is None:
                return 2
        runner = _make_runner(args)
        result = compare(workload(args.kernel, scale=args.scale), config,
                         runner=runner, models=models)
        row = result.as_row()
        if args.json:
            _emit([row], args)        # raw passthrough, pinned contract
        else:
            _print_output([row], fmt="csv" if args.csv else "table",
                          title=f"Comparison: {args.kernel} ({args.scale})")
        _report_runner(runner, args)
        return 0

    if args.command == "worker":
        from .dist import BrokerUnavailable, Worker, connect_broker
        try:
            broker = connect_broker(args.broker, **(
                {} if args.lease_seconds is None
                else {"lease_seconds": args.lease_seconds}))
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            worker = Worker(broker, memo=_sweep_memo(args),
                            worker_id=args.id,
                            lease_seconds=args.lease_seconds)
            executed = worker.run_until_idle(idle_grace=args.idle_grace,
                                             poll_interval=args.poll_interval,
                                             max_jobs=args.max_jobs)
        except BrokerUnavailable as exc:
            print(str(exc), file=sys.stderr)
            return 1
        finally:
            broker.close()
        print(f"worker {worker.worker_id}: executed {executed} job(s), "
              f"{worker.failures} failure(s)", file=sys.stderr)
        return 0

    if args.command == "broker":
        return _broker_command(args)

    if args.command == "sweep":
        from .dist import BrokerUnavailable, connect_broker
        try:
            broker = connect_broker(args.broker)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            return _sweep_command(broker, args)
        except BrokerUnavailable as exc:
            print(str(exc), file=sys.stderr)
            return 1
        finally:
            broker.close()

    if args.command == "query":
        return _query_command(args)

    return 1


def _broker_command(args: argparse.Namespace) -> int:
    from .dist import BrokerServer, DirBlobStore, SQLiteBroker

    broker = SQLiteBroker(args.db, **(
        {} if args.lease_seconds is None
        else {"lease_seconds": args.lease_seconds}))
    blobs = DirBlobStore(args.blob_dir) if args.blob_dir else None
    try:
        server = BrokerServer(
            broker, host=args.host, port=args.port, blobs=blobs,
            memo=_sweep_memo(args), results=_sweep_results(args),
            max_request_bytes=int(args.max_request_mb * 1024 * 1024),
            quiet=not args.verbose)
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        broker.close()
        return 1
    print(f"serving broker {args.db} at {server.url} "
          f"(blobs: {args.blob_dir or 'in-memory'}; stop with Ctrl-C)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        broker.close()
    return 0


def _sweep_command(broker, args: argparse.Namespace) -> int:
    from .dist import service

    if args.sweep_command == "submit":
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec) as fh:
                text = fh.read()
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"spec is not valid JSON: {exc}", file=sys.stderr)
            return 2
        try:
            ticket = service.submit_sweep(broker, spec,
                                          memo=_sweep_memo(args),
                                          results=_sweep_results(args))
        except service.SpecError as exc:
            print(f"invalid sweep spec: {exc}", file=sys.stderr)
            return 2
        if args.id_only:
            print(ticket.sweep_id)
        else:
            print(f"sweep {ticket.sweep_id}: {ticket.total} job(s) enqueued, "
                  f"{ticket.already_done} already resolved from the memo/"
                  "results stores")
            print(f"  follow with: repro sweep results --broker "
                  f"{args.broker} {ticket.sweep_id} --follow")
        return 0

    if args.sweep_command == "status":
        try:
            status = service.sweep_status(broker, args.sweep_id)
        except KeyError:
            print(f"unknown sweep {args.sweep_id!r}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(f"sweep {status['sweep_id']} ({status['label']}): "
                  f"{status['done']}/{status['total']} done, "
                  f"{status['leased']} running, {status['pending']} pending, "
                  f"{status['failed']} failed, "
                  f"{status['cancelled']} cancelled"
                  + (" [sweep cancelled]" if status["sweep_cancelled"]
                     else ""))
        return 0

    if args.sweep_command == "results":
        failures = 0
        collected: List[dict] = []
        try:
            for record in service.iter_results(
                    broker, args.sweep_id, follow=args.follow,
                    poll_interval=args.poll_interval, timeout=args.timeout):
                if record["state"] != "done":
                    failures += 1
                if args.format == "jsonl":
                    print(json.dumps(record, sort_keys=True, default=str),
                          flush=True)
                else:
                    collected.append(_point_row(record))
        except KeyError:
            print(f"unknown sweep {args.sweep_id!r}", file=sys.stderr)
            return 2
        except TimeoutError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        if args.format != "jsonl":
            collected.sort(key=lambda row: row.get("position", 0))
            _print_output(collected, fmt=args.format,
                          title=f"Sweep {args.sweep_id}")
        if failures:
            print(f"{failures} job(s) did not complete", file=sys.stderr)
            return 1
        return 0

    if args.sweep_command == "list":
        sweeps = broker.sweeps()
        if args.json:
            print(json.dumps(sweeps, indent=2, sort_keys=True))
        else:
            for status in sweeps:
                print(f"{status['sweep_id']}  {status['label']:<20s} "
                      f"{status['done']}/{status['total']} done"
                      + (" [cancelled]" if status["sweep_cancelled"]
                         else ""))
        return 0

    return 1


def _when_to_epoch(text: Optional[str]) -> Optional[float]:
    """ISO date/datetime -> epoch seconds; naive values are taken as UTC."""
    from datetime import datetime, timezone
    if text is None:
        return None
    when = datetime.fromisoformat(text)       # ValueError on bad input
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return when.timestamp()


def _query_command(args: argparse.Namespace) -> int:
    from .store import ResultsStore, SchemaMismatchError

    if not args.db:
        print("no results store: pass --db PATH or set $REPRO_RESULTS_DB",
              file=sys.stderr)
        return 2
    if not os.path.exists(args.db):
        print(f"results store {args.db} does not exist (runs with "
              "--results-db create it)", file=sys.stderr)
        return 2
    coords = {}
    for item in args.coord:
        axis, sep, value = item.partition("=")
        if not sep or not axis:
            print(f"--coord expects AXIS=VALUE, got {item!r}",
                  file=sys.stderr)
            return 2
        coords[axis] = value
    try:
        since = _when_to_epoch(args.since)
        until = _when_to_epoch(args.until)
    except ValueError as exc:
        print(f"invalid --since/--until value: {exc}", file=sys.stderr)
        return 2

    filters = {name: value for name, value in
               (("experiment", args.experiment), ("model", args.model),
                ("kernel", args.kernel), ("sha", args.sha),
                ("tier", args.tier)) if value is not None}
    if coords:
        filters["coords"] = coords
    if since is not None:
        filters["since"] = since
    if until is not None:
        filters["until"] = until
    try:
        store = ResultsStore(args.db)
    except SchemaMismatchError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        if args.trend:
            rows = store.trend(args.trend, **filters)
            if args.limit is not None:
                rows = rows[:args.limit]
        else:
            rows = store.query(limit=args.limit, **filters)
    finally:
        store.close()
    columns = None
    if args.columns:
        columns = [name.strip() for name in args.columns.split(",")
                   if name.strip()]
    _print_output(rows, columns=columns, fmt=args.format,
                  title=f"Results: {args.db}")
    print(f"{len(rows)} row(s)", file=sys.stderr)
    return 0


def _point_row(record: dict) -> dict:
    """One finished sweep point -> a flat row for table/csv/json output."""
    row = {"position": record.get("position"), "state": record.get("state")}
    coords = record.get("coords") or {}
    if isinstance(coords, dict):
        row.update(coords)
    outcome = record.get("outcome")
    if isinstance(outcome, dict):
        # Scalars only: breakdown dicts and other structures don't fit a
        # flat row (the jsonl stream keeps the full structure).
        row.update({key: value for key, value in outcome.items()
                    if not isinstance(value, (dict, list))})
    elif outcome is not None:
        row["outcome"] = outcome
    if record.get("error"):
        row["error"] = record["error"]
    return row


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
