"""Command-line interface: run any experiment of the evaluation by name.

Usage::

    python -m repro list                      # show available experiments
    python -m repro run table3 --scale tiny   # regenerate one table/figure
    python -m repro compare matmul --scale tiny
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import List, Optional

from .eval.experiments import EXPERIMENTS
from .eval.harness import HarnessConfig, compare
from .eval.report import format_nested_series, format_series, format_table
from .exec import SweepRunner, default_cache
from .workloads import available_workload_kernels, workload


def _render(result: object) -> str:
    """Best-effort text rendering of an experiment result structure."""
    if isinstance(result, list) and result and isinstance(result[0], dict):
        return format_table(result)
    if isinstance(result, dict):
        values = list(result.values())
        if values and isinstance(values[0], dict) and all(
                isinstance(v, dict) for v in values):
            try:
                return format_nested_series(result)   # {group: {name: [..]}}
            except Exception:                          # fall through to JSON
                pass
        if values and isinstance(values[0], list):
            return format_series(result)
    return json.dumps(result, indent=2, default=str)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for virtual-memory-enabled "
                    "hardware threads (DATE 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and kernels")

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    def add_exec_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--jobs", type=positive_int, default=1, metavar="N",
                         help="evaluate independent experiment points on N "
                              "worker processes (default: 1, serial)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="disable memoization of repeated experiment "
                              "points (cache is on by default)")

    run = sub.add_parser("run", help="run one experiment (table/figure)")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", default="tiny",
                     choices=("tiny", "default", "large"),
                     help="workload size class (where applicable)")
    add_exec_flags(run)

    cmp_cmd = sub.add_parser("compare",
                             help="compare all execution models on one kernel")
    cmp_cmd.add_argument("kernel", choices=available_workload_kernels())
    cmp_cmd.add_argument("--scale", default="tiny",
                         choices=("tiny", "default", "large"))
    cmp_cmd.add_argument("--tlb-entries", type=int, default=None,
                         help="fixed TLB size (default: auto-sized)")
    add_exec_flags(cmp_cmd)
    return parser


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    cache = None if args.no_cache else default_cache()
    return SweepRunner(jobs=args.jobs, cache=cache)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        print("kernels:    ", ", ".join(available_workload_kernels()))
        return 0

    if args.command == "run":
        func = EXPERIMENTS[args.experiment]
        runner = _make_runner(args)
        # Not every experiment takes every knob (table2 has no runner; fig9
        # has no scale); pass only what the function declares.
        accepted = inspect.signature(func).parameters
        kwargs = {}
        if "scale" in accepted:
            kwargs["scale"] = args.scale
        if "runner" in accepted:
            kwargs["runner"] = runner
        result = func(**kwargs)
        print(_render(result))
        if runner.timings:
            print(runner.summary(), file=sys.stderr)
        return 0

    if args.command == "compare":
        if args.tlb_entries is None:
            config = HarnessConfig(auto_size_tlb=True)
        else:
            config = HarnessConfig(tlb_entries=args.tlb_entries)
        runner = _make_runner(args)
        result = compare(workload(args.kernel, scale=args.scale), config,
                         runner=runner)
        print(format_table([result.as_row()],
                           title=f"Comparison: {args.kernel} ({args.scale})"))
        if runner.timings:
            print(runner.summary(), file=sys.stderr)
        return 0

    return 1


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
