"""Accelerator kernel library.

Each kernel is a generator factory producing the operation stream of one
hardware thread: bursts/accesses with *virtual* addresses plus compute
operations derived from the kernel's HLS schedule.  The same generators are
replayed by the software baseline (with a CPU cost model) so that every
execution model runs the identical access pattern.

The kernels cover the access-pattern classes the paper's evaluation is built
around:

* streaming       — vecadd, saxpy, merge_sort passes, filter2d
* blocked reuse   — matmul
* pointer chasing — linked_list
* random access   — histogram (large table), spmv (x-vector gathers), random_access
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.process import Access, Burst, Compute, Fence, KernelGenerator
from .hls import KernelSchedule, schedule_for

WORD = 4  # bytes of one data element (single-precision / 32-bit int)


@dataclass(frozen=True)
class KernelInfo:
    """Registry metadata for one library kernel."""

    name: str
    pattern: str                   # streaming | blocked | pointer | random
    description: str
    bytes_per_item: int            # bytes moved per processed item (approx.)


def _burst_stream(base: int, num_words: int, burst_words: int,
                  is_write: bool = False) -> Iterable[Burst]:
    """Yield bursts covering ``num_words`` consecutive words from ``base``."""
    offset = 0
    while offset < num_words:
        count = min(burst_words, num_words - offset)
        yield Burst(addr=base + offset * WORD, count=count, size=WORD,
                    is_write=is_write)
        offset += count


# --------------------------------------------------------------------------
# Streaming kernels
# --------------------------------------------------------------------------
def vecadd(dst: int, src_a: int, src_b: int, n: int,
           burst_words: int = 64,
           schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """dst[i] = a[i] + b[i] for i in range(n)."""
    schedule = schedule or schedule_for("vecadd")
    offset = 0
    while offset < n:
        count = min(burst_words, n - offset)
        yield Burst(addr=src_a + offset * WORD, count=count, size=WORD)
        yield Burst(addr=src_b + offset * WORD, count=count, size=WORD)
        yield Compute(schedule.cycles_for_items(count))
        yield Burst(addr=dst + offset * WORD, count=count, size=WORD, is_write=True)
        offset += count
    yield Fence()


def saxpy(dst: int, src_x: int, src_y: int, n: int, burst_words: int = 64,
          schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """dst[i] = a * x[i] + y[i]."""
    schedule = schedule or schedule_for("saxpy")
    offset = 0
    while offset < n:
        count = min(burst_words, n - offset)
        yield Burst(addr=src_x + offset * WORD, count=count, size=WORD)
        yield Burst(addr=src_y + offset * WORD, count=count, size=WORD)
        yield Compute(schedule.cycles_for_items(count))
        yield Burst(addr=dst + offset * WORD, count=count, size=WORD, is_write=True)
        offset += count
    yield Fence()


def merge_sort(buf_a: int, buf_b: int, n: int, burst_words: int = 64,
               schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """Out-of-place bottom-up merge sort: log2(n) full streaming passes.

    Each pass reads the source buffer and writes the destination buffer in
    order (merging is sequential in both runs), ping-ponging between the two
    buffers.
    """
    schedule = schedule or schedule_for("merge_sort")
    passes = max(1, math.ceil(math.log2(max(2, n))))
    src, dst = buf_a, buf_b
    for _ in range(passes):
        offset = 0
        while offset < n:
            count = min(burst_words, n - offset)
            yield Burst(addr=src + offset * WORD, count=count, size=WORD)
            yield Compute(schedule.cycles_for_items(count))
            yield Burst(addr=dst + offset * WORD, count=count, size=WORD,
                        is_write=True)
            offset += count
        src, dst = dst, src
        yield Fence()


def filter2d(dst: int, src: int, width: int, height: int,
             burst_words: int = 64,
             schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """3x3 convolution over a ``width`` x ``height`` image with line buffers.

    Thanks to on-chip line buffers each input pixel is read exactly once and
    each output pixel written once; the datapath applies 9 MACs per pixel.
    """
    schedule = schedule or schedule_for("filter2d")
    for row in range(height):
        row_base = src + row * width * WORD
        for burst in _burst_stream(row_base, width, burst_words):
            yield burst
        yield Compute(schedule.cycles_for_items(width))
        if row >= 2:
            out_base = dst + (row - 1) * width * WORD
            for burst in _burst_stream(out_base, width, burst_words,
                                       is_write=True):
                yield burst
    yield Fence()


# --------------------------------------------------------------------------
# Blocked-reuse kernels
# --------------------------------------------------------------------------
def matmul(dst: int, src_a: int, src_b: int, n: int, block: int = 32,
           schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """Blocked C = A * B on n x n row-major matrices.

    For each (i, j) output block the kernel streams the corresponding A-row
    blocks and B-column blocks through on-chip buffers; each element is
    reused ``block`` times once on chip.
    """
    if n % block:
        raise ValueError(f"matrix size {n} must be a multiple of block {block}")
    schedule = schedule or schedule_for("matmul")
    blocks = n // block

    def block_rows(base: int, block_row: int, block_col: int,
                   is_write: bool = False) -> Iterable[Burst]:
        for row in range(block):
            addr = base + ((block_row * block + row) * n + block_col * block) * WORD
            yield Burst(addr=addr, count=block, size=WORD, is_write=is_write)

    for bi in range(blocks):
        for bj in range(blocks):
            for bk in range(blocks):
                for burst in block_rows(src_a, bi, bk):
                    yield burst
                for burst in block_rows(src_b, bk, bj):
                    yield burst
                # block x block x block multiply-accumulate operations
                yield Compute(schedule.cycles_for_items(block * block * block))
            for burst in block_rows(dst, bi, bj, is_write=True):
                yield burst
    yield Fence()


# --------------------------------------------------------------------------
# Pointer-chasing kernels
# --------------------------------------------------------------------------
def linked_list(node_addresses: Sequence[int], node_bytes: int = 16,
                schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """Traverse a linked list given the chain of node virtual addresses.

    The traversal is inherently serial: each node must be fetched before the
    next pointer is known, so accesses cannot be pipelined (a fence after
    every access models the dependency).
    """
    schedule = schedule or schedule_for("linked_list")
    per_node = schedule.cycles_for_items(1)
    for addr in node_addresses:
        yield Access(addr=addr, size=node_bytes)
        yield Fence()
        yield Compute(per_node)


# --------------------------------------------------------------------------
# Random-access kernels
# --------------------------------------------------------------------------
def histogram(src: int, n: int, bins_base: int, bin_indices: Sequence[int],
              bins_in_bram: bool = False, burst_words: int = 64,
              schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """Histogram of ``n`` input elements into a bin table.

    ``bin_indices`` gives, for every input element, the bin it lands in (the
    workload generator draws them from the desired distribution).  With
    ``bins_in_bram`` the updates stay on chip; otherwise each update is a
    read-modify-write of the in-memory bin table (random traffic).
    """
    schedule = schedule or schedule_for("histogram")
    offset = 0
    while offset < n:
        count = min(burst_words, n - offset)
        yield Burst(addr=src + offset * WORD, count=count, size=WORD)
        yield Compute(schedule.cycles_for_items(count))
        if not bins_in_bram:
            for i in range(offset, offset + count):
                bin_addr = bins_base + bin_indices[i] * WORD
                yield Access(addr=bin_addr, size=WORD)
                yield Access(addr=bin_addr, size=WORD, is_write=True)
        offset += count
    yield Fence()


def spmv(row_lengths: Sequence[int], values_base: int, colidx_base: int,
         x_base: int, y_base: int, x_gather_indices: Sequence[int],
         burst_words: int = 64,
         schedule: Optional[KernelSchedule] = None) -> KernelGenerator:
    """CSR sparse matrix-vector multiply y = A @ x.

    ``row_lengths`` holds the number of non-zeros per row; the generator
    streams values and column indices row by row and gathers x entries at the
    positions listed in ``x_gather_indices`` (one per non-zero, produced by
    the workload generator from the sparsity pattern).
    """
    schedule = schedule or schedule_for("spmv")
    nnz_cursor = 0
    for row, nnz in enumerate(row_lengths):
        if nnz <= 0:
            continue
        remaining = nnz
        while remaining > 0:
            count = min(burst_words, remaining)
            base_off = (nnz_cursor + (nnz - remaining)) * WORD
            yield Burst(addr=values_base + base_off, count=count, size=WORD)
            yield Burst(addr=colidx_base + base_off, count=count, size=WORD)
            for k in range(count):
                gather = x_gather_indices[nnz_cursor + (nnz - remaining) + k]
                yield Access(addr=x_base + gather * WORD, size=WORD)
            yield Compute(schedule.cycles_for_items(count))
            remaining -= count
        yield Access(addr=y_base + row * WORD, size=WORD, is_write=True)
        nnz_cursor += nnz
    yield Fence()


def random_access(addresses: Sequence[int], size: int = WORD,
                  write_fraction: float = 0.0,
                  compute_per_access: int = 2) -> KernelGenerator:
    """GUPS-style random accesses over a precomputed address list."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be within [0, 1]")
    write_every = int(1.0 / write_fraction) if write_fraction > 0 else 0
    for i, addr in enumerate(addresses):
        is_write = write_every > 0 and (i % write_every) == 0
        yield Access(addr=addr, size=size, is_write=is_write)
        if compute_per_access:
            yield Compute(compute_per_access)
    yield Fence()


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------
KERNEL_INFO: Dict[str, KernelInfo] = {
    "vecadd": KernelInfo("vecadd", "streaming",
                         "element-wise vector addition", 12),
    "saxpy": KernelInfo("saxpy", "streaming",
                        "single-precision a*x + y", 12),
    "merge_sort": KernelInfo("merge_sort", "streaming",
                             "bottom-up out-of-place merge sort", 8),
    "filter2d": KernelInfo("filter2d", "streaming",
                           "3x3 image convolution with line buffers", 8),
    "matmul": KernelInfo("matmul", "blocked",
                         "blocked dense matrix multiply", 12),
    "linked_list": KernelInfo("linked_list", "pointer",
                              "serial linked-list traversal", 16),
    "histogram": KernelInfo("histogram", "random",
                            "histogram with in-memory bin table", 12),
    "spmv": KernelInfo("spmv", "random",
                       "CSR sparse matrix-vector multiply", 16),
    "random_access": KernelInfo("random_access", "random",
                                "GUPS-style uniform random accesses", 4),
}


def kernel_names() -> List[str]:
    return sorted(KERNEL_INFO)


def kernel_info(name: str) -> KernelInfo:
    try:
        return KERNEL_INFO[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; known: {kernel_names()}") from None
