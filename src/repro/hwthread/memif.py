"""Hardware-thread memory interface (the fabric side of the SVM path).

Each hardware thread owns a memory interface that accepts *virtual* address
operations from the kernel datapath, translates them through the thread's
MMU, splits bursts that cross page boundaries, and issues the resulting
physical transactions to the thread's bus port.

Two translation modes exist:

* ``mmu`` — the paper's design: every page touched goes through the TLB /
  walker / fault-delegation path, with the corresponding latencies.
* ``functional translator`` — a zero-latency callable (used by the *ideal*
  physically-addressed baseline and by the copy-DMA baseline, whose buffers
  are physically contiguous and pinned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from ..mem.port import MemoryRequest, MemoryTarget
from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.process import Access, Burst
from ..sim.trace import GLOBAL_TRACER
from ..vm.mmu import MMU
from ..vm.types import AccessType, Translation


#: Completion callback: True when the operation retired normally, False when
#: it was aborted by an unresolvable translation fault.
OpCallback = Callable[[bool], None]

#: Zero-latency functional translator signature (vaddr -> paddr).
FunctionalTranslator = Callable[[int, AccessType], int]


@dataclass(frozen=True)
class MemoryInterfaceConfig:
    """Fabric-side interface parameters."""

    max_burst_bytes: int = 256      # AXI-style burst split size
    issue_latency: int = 1          # cycles to issue a beat from the datapath

    def __post_init__(self) -> None:
        if self.max_burst_bytes <= 0:
            raise ValueError("max_burst_bytes must be positive")
        if self.issue_latency < 0:
            raise ValueError("issue_latency must be non-negative")


class MemoryInterface(Component):
    """Translates and issues one hardware thread's memory operations."""

    def __init__(self, sim: Simulator, bus_port: MemoryTarget,
                 mmu: Optional[MMU] = None,
                 translator: Optional[FunctionalTranslator] = None,
                 config: MemoryInterfaceConfig | None = None,
                 name: str = "memif"):
        super().__init__(sim, name)
        if mmu is None and translator is None:
            raise ValueError("memory interface needs an MMU or a functional translator")
        self.config = config or MemoryInterfaceConfig()
        self.bus_port = bus_port
        self.mmu = mmu
        self.translator = translator
        self.thread_name = name
        #: Optional live :class:`repro.sim.recorder.TraceRecorder`: when
        #: attached, every submitted operation is recorded as it retires
        #: through the event tier (used to cross-check functional captures).
        self.recorder = None

    def attach_recorder(self, recorder) -> None:
        """Record every operation submitted through this interface."""
        self.recorder = recorder

    # ------------------------------------------------------------ public API
    def submit(self, op: Union[Access, Burst], on_done: OpCallback) -> None:
        """Issue a virtual-address operation; ``on_done`` fires at retirement."""
        if self.recorder is not None:
            self.recorder.on_op(op)
        if GLOBAL_TRACER.enabled:
            GLOBAL_TRACER.log(self.now, self.name, "op",
                              f"addr={op.addr:#x} write={op.is_write}")
        if isinstance(op, Access):
            chunks = self._split(op.addr, op.size, op.is_write)
        elif isinstance(op, Burst):
            chunks = self._split(op.addr, op.total_bytes, op.is_write)
        else:  # pragma: no cover - guarded by the thread model
            raise TypeError(f"unsupported memory operation {op!r}")
        self.count("ops")
        self.count("bytes", sum(size for _, size, _ in chunks))
        self._run_chunks(chunks, 0, on_done)

    # ----------------------------------------------------------- chunk logic
    def _split(self, vaddr: int, size: int, is_write: bool) -> List[tuple[int, int, bool]]:
        """Split [vaddr, vaddr+size) at page and max-burst boundaries."""
        page_size = self._page_size()
        limit = min(self.config.max_burst_bytes, page_size)
        chunks: List[tuple[int, int, bool]] = []
        remaining = size
        cursor = vaddr
        while remaining > 0:
            page_left = page_size - (cursor % page_size)
            chunk = min(remaining, page_left, limit)
            chunks.append((cursor, chunk, is_write))
            cursor += chunk
            remaining -= chunk
        return chunks

    def _page_size(self) -> int:
        if self.mmu is not None:
            return self.mmu.page_size
        return 4096

    def _run_chunks(self, chunks: List[tuple[int, int, bool]], index: int,
                    on_done: OpCallback) -> None:
        """Translate and issue chunks sequentially (one transaction at a time
        per datapath operation; pipelining across *operations* is handled by
        the hardware thread's outstanding-op window)."""
        if index >= len(chunks):
            on_done(True)
            return
        vaddr, size, is_write = chunks[index]
        access = AccessType.WRITE if is_write else AccessType.READ

        def issue(paddr: int) -> None:
            request = MemoryRequest(
                addr=paddr, size=size, is_write=is_write, master=self.name,
                callback=lambda _req: self._run_chunks(chunks, index + 1, on_done))
            self.count("transactions")
            self.schedule(self.config.issue_latency,
                          lambda: self.bus_port.access(request))

        if self.mmu is not None:
            def on_translate(translation: Optional[Translation]) -> None:
                if translation is None:
                    self.count("aborted_ops")
                    on_done(False)
                    return
                issue(translation.paddr)

            self.mmu.translate(vaddr, access, on_translate,
                               thread=self.thread_name)
        else:
            assert self.translator is not None
            issue(self.translator(vaddr, access))
