"""HLS-style scheduling model for accelerator datapaths.

The real toolflow runs Vivado HLS on C kernels; what matters for the
system-level evaluation is the *throughput* of the generated datapath: how
many cycles of compute accompany each data item, given an initiation
interval (II), an unroll factor and a pipeline depth.  This module provides a
small analytic model of that schedule which the kernel library uses to emit
:class:`~repro.sim.process.Compute` operations, and which the resource model
uses to estimate datapath area.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class OperatorBudget:
    """Hardware operators instantiated by the HLS schedule (for area)."""

    adders: int = 0
    multipliers: int = 0
    dividers: int = 0
    comparators: int = 0
    bram_words: int = 0


@dataclass(frozen=True)
class KernelSchedule:
    """Datapath schedule of one HLS kernel.

    Attributes mirror the pragmas the paper's flow applies: ``unroll`` is the
    loop unroll factor, ``initiation_interval`` the pipeline II of the inner
    loop, ``pipeline_depth`` the latency of one iteration, and
    ``ops_per_item`` the arithmetic operations applied to each data item.
    """

    name: str
    initiation_interval: int = 1
    pipeline_depth: int = 8
    unroll: int = 1
    ops_per_item: int = 1
    operators: OperatorBudget = field(default_factory=OperatorBudget)

    def __post_init__(self) -> None:
        if self.initiation_interval <= 0:
            raise ValueError("initiation interval must be positive")
        if self.pipeline_depth <= 0:
            raise ValueError("pipeline depth must be positive")
        if self.unroll <= 0:
            raise ValueError("unroll factor must be positive")
        if self.ops_per_item < 0:
            raise ValueError("ops_per_item must be non-negative")

    # -------------------------------------------------------------- schedule
    def cycles_for_items(self, items: int) -> int:
        """Datapath cycles to process ``items`` data items.

        Classic pipelined-loop formula: ``depth + (ceil(items/unroll) - 1) * II``.
        """
        if items <= 0:
            return 0
        iterations = math.ceil(items / self.unroll)
        return self.pipeline_depth + (iterations - 1) * self.initiation_interval

    def throughput_items_per_cycle(self) -> float:
        """Steady-state throughput of the datapath."""
        return self.unroll / self.initiation_interval

    def compute_intensity(self, bytes_per_item: int) -> float:
        """Operations per byte moved (used for the Fig. 9 crossover analysis)."""
        if bytes_per_item <= 0:
            raise ValueError("bytes_per_item must be positive")
        return self.ops_per_item / bytes_per_item


#: Default schedules for the kernel library — the numbers correspond to the
#: pragmas the paper's flow would apply (II=1 streaming pipelines, modest
#: unrolling, deeper pipelines for floating-point kernels).
DEFAULT_SCHEDULES: Dict[str, KernelSchedule] = {
    "vecadd": KernelSchedule("vecadd", initiation_interval=1, pipeline_depth=6,
                             unroll=2, ops_per_item=1,
                             operators=OperatorBudget(adders=2)),
    "saxpy": KernelSchedule("saxpy", initiation_interval=1, pipeline_depth=10,
                            unroll=2, ops_per_item=2,
                            operators=OperatorBudget(adders=2, multipliers=2)),
    "matmul": KernelSchedule("matmul", initiation_interval=1, pipeline_depth=12,
                             unroll=16, ops_per_item=2,
                             operators=OperatorBudget(adders=16, multipliers=16,
                                                      bram_words=4096)),
    "histogram": KernelSchedule("histogram", initiation_interval=2,
                                pipeline_depth=6, unroll=1, ops_per_item=1,
                                operators=OperatorBudget(adders=1, bram_words=1024)),
    "linked_list": KernelSchedule("linked_list", initiation_interval=1,
                                  pipeline_depth=4, unroll=1, ops_per_item=1,
                                  operators=OperatorBudget(adders=1, comparators=1)),
    "merge_sort": KernelSchedule("merge_sort", initiation_interval=1,
                                 pipeline_depth=8, unroll=1, ops_per_item=1,
                                 operators=OperatorBudget(comparators=2,
                                                          bram_words=2048)),
    "filter2d": KernelSchedule("filter2d", initiation_interval=1,
                               pipeline_depth=14, unroll=4, ops_per_item=9,
                               operators=OperatorBudget(adders=18, multipliers=18,
                                                        bram_words=3072)),
    "spmv": KernelSchedule("spmv", initiation_interval=2, pipeline_depth=12,
                           unroll=1, ops_per_item=2,
                           operators=OperatorBudget(adders=2, multipliers=2)),
    "random_access": KernelSchedule("random_access", initiation_interval=1,
                                    pipeline_depth=4, unroll=1, ops_per_item=1,
                                    operators=OperatorBudget(adders=1,
                                                             comparators=1)),
}


def schedule_for(kernel_name: str) -> KernelSchedule:
    """Look up the default schedule of a library kernel."""
    try:
        return DEFAULT_SCHEDULES[kernel_name]
    except KeyError:
        raise KeyError(
            f"no HLS schedule registered for kernel {kernel_name!r}; "
            f"known kernels: {sorted(DEFAULT_SCHEDULES)}") from None


def scale_schedule(schedule: KernelSchedule, unroll: int) -> KernelSchedule:
    """Re-derive a schedule for a different unroll factor (DSE knob).

    Unrolling multiplies the operator budget and throughput but deepens the
    pipeline slightly (one extra stage per doubling, a common HLS outcome).
    """
    if unroll <= 0:
        raise ValueError("unroll factor must be positive")
    extra_depth = max(0, int(math.log2(max(1, unroll / schedule.unroll))))
    factor = unroll / schedule.unroll
    ops = schedule.operators
    scaled = OperatorBudget(
        adders=math.ceil(ops.adders * factor),
        multipliers=math.ceil(ops.multipliers * factor),
        dividers=math.ceil(ops.dividers * factor),
        comparators=math.ceil(ops.comparators * factor),
        bram_words=ops.bram_words,
    )
    return KernelSchedule(
        name=schedule.name,
        initiation_interval=schedule.initiation_interval,
        pipeline_depth=schedule.pipeline_depth + extra_depth,
        unroll=unroll,
        ops_per_item=schedule.ops_per_item,
        operators=scaled,
    )
