"""Hardware thread model, HLS schedules and the accelerator kernel library."""

from . import kernels
from .hls import (
    DEFAULT_SCHEDULES,
    KernelSchedule,
    OperatorBudget,
    scale_schedule,
    schedule_for,
)
from .kernels import KERNEL_INFO, KernelInfo, kernel_info, kernel_names
from .memif import (
    FunctionalTranslator,
    MemoryInterface,
    MemoryInterfaceConfig,
    OpCallback,
)
from .thread import HardwareThread, HardwareThreadConfig, ThreadDoneCallback

__all__ = [
    "DEFAULT_SCHEDULES",
    "FunctionalTranslator",
    "HardwareThread",
    "HardwareThreadConfig",
    "KERNEL_INFO",
    "KernelInfo",
    "KernelSchedule",
    "MemoryInterface",
    "MemoryInterfaceConfig",
    "OpCallback",
    "OperatorBudget",
    "ThreadDoneCallback",
    "kernel_info",
    "kernel_names",
    "kernels",
    "scale_schedule",
    "schedule_for",
]
