"""Hardware thread execution model.

A hardware thread is an HLS-generated accelerator that executes a kernel
described as a generator of operations (:class:`~repro.sim.process.Compute`,
:class:`~repro.sim.process.Access`, :class:`~repro.sim.process.Burst`,
:class:`~repro.sim.process.Fence`).  The model captures the behaviour that
matters for the memory-system evaluation:

* compute occupies the datapath and overlaps with outstanding memory traffic,
* up to ``max_outstanding`` memory operations may be in flight (the HLS tool
  pipelines loads/stores), additional operations stall the datapath,
* a fence drains the outstanding window,
* an unresolvable translation fault aborts the thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.process import Access, Burst, Compute, Fence, Operation, ProcessState, Yield
from .memif import MemoryInterface


#: Called when the thread finishes; the argument is True for normal
#: completion and False when the thread aborted on a fatal fault.
ThreadDoneCallback = Callable[[bool], None]


@dataclass(frozen=True)
class HardwareThreadConfig:
    max_outstanding: int = 4
    start_latency: int = 10      # command-register write to first operation

    def __post_init__(self) -> None:
        if self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        if self.start_latency < 0:
            raise ValueError("start_latency must be non-negative")


class HardwareThread(Component):
    """Drives one kernel generator against a memory interface."""

    def __init__(self, sim: Simulator, kernel, memif: MemoryInterface,
                 config: HardwareThreadConfig | None = None,
                 name: str = "hwt"):
        super().__init__(sim, name)
        self.config = config or HardwareThreadConfig()
        self.memif = memif
        self.state = ProcessState(kernel)
        self._outstanding = 0
        self._waiting_for_slot = False
        self._waiting_for_fence = False
        self._aborted = False
        self._done_callback: Optional[ThreadDoneCallback] = None
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None

    # ------------------------------------------------------------------ run
    def start(self, on_done: Optional[ThreadDoneCallback] = None) -> None:
        """Start executing the kernel; ``on_done(ok)`` fires at completion."""
        if self.started_at is not None:
            raise RuntimeError(f"hardware thread {self.name} already started")
        self._done_callback = on_done
        self.started_at = self.now
        self.state.started_at = self.now
        self.count("starts")
        self.schedule(self.config.start_latency, self._advance)

    def _advance(self) -> None:
        """Fetch the next operation from the kernel and dispatch it."""
        if self._aborted:
            return
        op = self.state.advance()
        if op is None:
            self._maybe_finish()
            return
        self._dispatch(op)

    def _dispatch(self, op: Operation) -> None:
        if isinstance(op, Compute):
            self.count("compute_cycles", op.cycles)
            self.schedule(op.cycles, self._advance)
        elif isinstance(op, (Access, Burst)):
            self._issue_memory(op)
        elif isinstance(op, Fence):
            if self._outstanding == 0:
                self.schedule(0, self._advance)
            else:
                self._waiting_for_fence = True
        elif isinstance(op, Yield):
            self.schedule(1, self._advance)
        else:
            raise TypeError(f"kernel yielded unsupported operation {op!r}")

    # --------------------------------------------------------------- memory
    def _issue_memory(self, op: Union[Access, Burst]) -> None:
        self.count("mem_ops")
        if isinstance(op, Burst):
            self.count("mem_bytes", op.total_bytes)
        else:
            self.count("mem_bytes", op.size)

        if self._outstanding >= self.config.max_outstanding:
            # Datapath stalls until a slot frees up; remember the op.
            self._waiting_for_slot = True
            self._stalled_op = op
            self._stall_started = self.now
            return
        self._outstanding += 1
        self.memif.submit(op, self._on_mem_done)
        # Memory ops are fire-and-forget within the outstanding window: the
        # datapath continues with the next operation immediately.
        self.schedule(0, self._advance)

    def _on_mem_done(self, ok: bool) -> None:
        self._outstanding -= 1
        if not ok:
            self._abort()
            return
        if self._waiting_for_slot:
            self._waiting_for_slot = False
            op = self._stalled_op
            self.sample("stall_cycles", self.now - self._stall_started)
            self._outstanding += 1
            self.memif.submit(op, self._on_mem_done)
            self.schedule(0, self._advance)
            return
        if self._waiting_for_fence and self._outstanding == 0:
            self._waiting_for_fence = False
            self.schedule(0, self._advance)
            return
        if self.state.finished:
            self._maybe_finish()

    # ------------------------------------------------------------ completion
    def _maybe_finish(self) -> None:
        if not self.state.finished or self._outstanding > 0:
            return
        if self.finished_at is not None:
            return
        self.finished_at = self.now
        self.state.finish(self.now)
        self.set_stat("cycles", self.finished_at - (self.started_at or 0))
        self.count("completions")
        if self._done_callback is not None:
            self._done_callback(True)

    def _abort(self) -> None:
        if self._aborted:
            return
        self._aborted = True
        self.finished_at = self.now
        self.count("aborts")
        if self._done_callback is not None:
            self._done_callback(False)

    # ------------------------------------------------------------------ info
    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def cycles(self) -> Optional[int]:
        if self.finished_at is None or self.started_at is None:
            return None
        return self.finished_at - self.started_at
