"""Persistent experiment results: the append-only run ledger.

One WAL-mode SQLite file (:class:`ResultsStore`) accumulating one row per
computed outcome — memo key, sweep coords, canonical record, provenance —
written opportunistically by :class:`~repro.exec.runner.SweepRunner`,
:class:`~repro.dist.runner.DistributedRunner` and ``repro bench`` whenever
``--results-db`` / ``REPRO_RESULTS_DB`` points somewhere, and read back by
``repro query`` and the distributed broker's enqueue-time dedup.

See the "Results store & repro query" section of the README for usage.
"""

from .results import (SCHEMA_VERSION, ResultsStore, SchemaMismatchError,
                      git_sha, open_results_store)

__all__ = [
    "ResultsStore",
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "git_sha",
    "open_results_store",
]
