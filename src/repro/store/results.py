"""Append-only SQLite results store: one row per computed outcome.

Every run today evaporates when the process exits — ad-hoc JSON files,
golden fixtures, CI artifacts.  :class:`ResultsStore` is the persistent
ledger behind ``--results-db`` / ``REPRO_RESULTS_DB``: one row per
:class:`~repro.models.base.RunOutcome` (or benchmark record), carrying

* the memo ``stable_key`` (:func:`repro.exec.keys.stable_key`) — the same
  content address the :class:`~repro.exec.cache.MemoCache` and the
  distributed broker use, so "has this exact point ever been run" is one
  indexed lookup,
* the sweep coordinates and the experiment label the point belonged to,
* the canonical flat record (``RunOutcome.to_record()``: cycles, TLB/fault/
  telemetry aggregates, tier) as queryable columns plus the full JSON,
* provenance: package version, git sha, wall time, timestamp.

The store is **append-only**: rows are deduplicated by ``(key, git_sha)``
with ``INSERT OR IGNORE``, so re-running an unchanged sweep appends nothing,
while the same point computed at a different commit lands a new row — that
is what makes cross-sha trend queries (``repro query --trend``) possible.

Like the broker and the memo cache it is one WAL-mode SQLite file, safe for
many concurrent writer processes (workers, runners, CI jobs), with an
injectable ``clock`` and ``sha`` so tests pin rows deterministically.  The
schema is versioned in a ``meta`` table; opening a store written by an
incompatible schema raises :class:`SchemaMismatchError` instead of
guessing.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import subprocess
import threading
import time
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..exec.keys import stable_key

#: Bump on any incompatible change to the ``runs`` table layout.
SCHEMA_VERSION = 1

_MISSING = object()

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id              INTEGER PRIMARY KEY,
    key             TEXT NOT NULL,
    experiment      TEXT NOT NULL DEFAULT '',
    model           TEXT,
    kernel          TEXT,
    tier            TEXT,
    coords          TEXT,
    total_cycles    INTEGER,
    fabric_cycles   INTEGER,
    record          TEXT NOT NULL,
    value           BLOB,
    wall_seconds    REAL,
    package_version TEXT NOT NULL,
    git_sha         TEXT NOT NULL,
    created         REAL NOT NULL,
    UNIQUE (key, git_sha)
);
CREATE INDEX IF NOT EXISTS runs_by_key        ON runs (key);
CREATE INDEX IF NOT EXISTS runs_by_experiment ON runs (experiment);
CREATE INDEX IF NOT EXISTS runs_by_sha        ON runs (git_sha);
"""


class SchemaMismatchError(RuntimeError):
    """The store on disk was written by an incompatible schema version."""


def git_sha() -> str:
    """Commit identity for provenance columns (CI env var, then git).

    The same resolution order the bench suite uses for its report filenames:
    ``GITHUB_SHA`` when CI provides it, the working tree's ``HEAD``
    otherwise, and the literal ``"local"`` outside any repository.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(["git", "rev-parse", "--short=12", "HEAD"],
                             capture_output=True, text=True, timeout=10)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "local"


def _package_version() -> str:
    # Imported lazily: ``repro`` pulls subpackages in during its own import.
    from .. import __version__
    return __version__


def _iso(timestamp: float) -> str:
    """Timestamps as sortable UTC ISO strings in query output."""
    return datetime.fromtimestamp(timestamp, tz=timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")


def _as_record(outcome: Any, coords: Optional[Mapping[str, Any]]
               ) -> Dict[str, Any]:
    """Any outcome -> the canonical flat record dict.

    :class:`~repro.models.base.RunOutcome` (and anything else providing
    ``to_record``) defines its own schema; mappings and dataclasses are
    taken field-by-field; scalars land under a ``value`` column.
    """
    to_record = getattr(outcome, "to_record", None)
    if callable(to_record):
        return to_record(coords)
    record = dict(coords) if coords else {}
    if isinstance(outcome, Mapping):
        record.update(outcome)
    elif is_dataclass(outcome) and not isinstance(outcome, type):
        record.update(asdict(outcome))
    else:
        record["value"] = outcome
    return record


class ResultsStore:
    """The append-only run ledger: one WAL-mode SQLite file, many writers.

    Parameters
    ----------
    path:
        The SQLite file (created, with parents, on first use).
    clock:
        Injectable time source for the ``created`` column, so tests pin
        rows without sleeping or stamping wall time.
    sha:
        Override the git sha recorded on every row (default:
        :func:`git_sha` resolved once at open).
    """

    def __init__(self, path: Union[str, os.PathLike], *,
                 clock: Callable[[], float] = time.time,
                 sha: Optional[str] = None,
                 busy_timeout: float = 30.0) -> None:
        self.path = Path(path)
        self.clock = clock
        self.sha = sha if sha is not None else git_sha()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._db = sqlite3.connect(self.path, timeout=busy_timeout,
                                   check_same_thread=False,
                                   isolation_level=None)
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)
            self._check_schema()

    def _check_schema(self) -> None:
        row = self._db.execute("SELECT value FROM meta WHERE key = ?",
                               ("schema_version",)).fetchone()
        if row is None:
            self._db.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)))
            return
        found = row[0]
        if found != str(SCHEMA_VERSION):
            self._db.close()
            raise SchemaMismatchError(
                f"results store {self.path} has schema version {found}, "
                f"this build expects {SCHEMA_VERSION}; query it with a "
                "matching repro release or start a fresh --results-db file "
                "(the store is append-only and is never migrated in place)")

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------- recording
    def record(self, key: str, outcome: Any, *,
               experiment: str = "",
               coords: Optional[Mapping[str, Any]] = None,
               kernel: Optional[str] = None,
               wall_seconds: Optional[float] = None) -> bool:
        """Append one outcome row; True when this call inserted it.

        Idempotent per ``(key, git sha)``: recording the same point again at
        the same commit is a no-op, so warm-cache re-runs never duplicate
        rows.  The full outcome is also pickled into the row so the
        distributed broker can adopt it as a finished result
        (:meth:`get_value`).
        """
        record = _as_record(outcome, coords)
        try:
            record_json = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):
            record_json = json.dumps({"repr": repr(record)})
        try:
            payload: Optional[bytes] = pickle.dumps(
                outcome, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            payload = None                     # row stays queryable without it
        coords_json = (json.dumps(dict(coords), sort_keys=True, default=str)
                       if coords else None)

        def _int_or_none(value: Any) -> Optional[int]:
            return int(value) if isinstance(value, (int, float)) else None

        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._db.execute(
                    "INSERT OR IGNORE INTO runs (key, experiment, model,"
                    " kernel, tier, coords, total_cycles, fabric_cycles,"
                    " record, value, wall_seconds, package_version, git_sha,"
                    " created) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                    " ?, ?)",
                    (key, experiment,
                     record.get("model"),
                     kernel if kernel is not None else record.get("kernel"),
                     record.get("tier"),
                     coords_json,
                     _int_or_none(record.get("total_cycles")),
                     _int_or_none(record.get("fabric_cycles")),
                     record_json, payload, wall_seconds,
                     _package_version(), self.sha, self.clock()))
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return cursor.rowcount > 0

    def record_bench(self, report: Any, scale: str = "tiny") -> int:
        """Append one row per benchmark suite entry; returns rows inserted.

        ``report`` is an :class:`~repro.eval.bench.BenchReport`.  Entries
        are keyed by (suite name, scale) — content-addressed like sweep
        points, so one bench run per commit lands exactly one row per entry
        and ``repro query --experiment bench --trend <metric>`` reads the
        per-sha history the CI artifacts only kept implicitly.
        """
        inserted = 0
        for name, entry in report.records.items():
            metrics = dict(entry.get("metrics", {}))
            inserted += self.record(
                stable_key("repro-bench", name, scale),
                {"entry": name, "scale": scale, **metrics},
                experiment="bench",
                coords={"entry": name, "scale": scale},
                wall_seconds=float(entry.get("wall_seconds", 0.0)))
        return inserted

    # --------------------------------------------------------------- lookups
    def get_value(self, key: str, default: Any = None) -> Any:
        """The most recent stored outcome for ``key``, unpickled.

        Only rows written by the **current package version** are served —
        the same guard the memo cache's version namespace provides: a store
        carrying numbers from a previous release must not warm-start the
        fleet with them.  Returns ``default`` when absent or unreadable.
        """
        with self._lock:
            row = self._db.execute(
                "SELECT value FROM runs WHERE key = ? AND"
                " package_version = ? AND value IS NOT NULL"
                " ORDER BY id DESC LIMIT 1",
                (key, _package_version())).fetchone()
        if row is None:
            return default
        try:
            return pickle.loads(row[0])
        except Exception:
            return default

    def warm_values(self, keys: List[str]) -> Dict[str, Any]:
        """Bulk :meth:`get_value`: the newest current-version row per key.

        The warm-start query of the adaptive explorers (:mod:`repro.dse`):
        one chunked ``IN`` query instead of one round-trip per candidate,
        under the same package-version guard as :meth:`get_value`.  Keys
        with no readable row are simply absent from the result.
        """
        out: Dict[str, Any] = {}
        keys = list(keys)
        version = _package_version()
        chunk_size = 400           # comfortably under SQLite's host limit
        with self._lock:
            for start in range(0, len(keys), chunk_size):
                chunk = keys[start:start + chunk_size]
                marks = ",".join("?" * len(chunk))
                rows = self._db.execute(
                    f"SELECT key, value FROM runs WHERE key IN ({marks})"
                    " AND package_version = ? AND value IS NOT NULL"
                    " ORDER BY id",
                    (*chunk, version)).fetchall()
                for key, blob in rows:       # ascending id: newest row wins
                    try:
                        out[key] = pickle.loads(blob)
                    except Exception:
                        out.pop(key, None)   # unreadable newest: drop the key
        return out

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._db.execute(
                "SELECT 1 FROM runs WHERE key = ? AND package_version = ?"
                " AND value IS NOT NULL LIMIT 1",
                (key, _package_version())).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            row = self._db.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(row[0])

    # --------------------------------------------------------------- queries
    def query(self, *, experiment: Optional[str] = None,
              model: Optional[str] = None,
              kernel: Optional[str] = None,
              sha: Optional[str] = None,
              tier: Optional[str] = None,
              key: Optional[str] = None,
              coords: Optional[Mapping[str, Any]] = None,
              since: Optional[float] = None,
              until: Optional[float] = None,
              limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Matching rows as flat dicts, oldest first.

        Equality filters map onto indexed columns; ``coords`` matches rows
        whose coordinates contain every given item (values compared after
        ``str()`` so CLI-supplied strings match stored numbers);
        ``since``/``until`` bound the ``created`` timestamp (inclusive).
        Each row is the canonical record plus provenance columns
        (``experiment``, ``wall_seconds``, ``package_version``, ``git_sha``,
        ``created`` as UTC ISO, and the content ``key``).
        """
        clauses, params = [], []
        for column, value in (("experiment", experiment), ("model", model),
                              ("kernel", kernel), ("git_sha", sha),
                              ("tier", tier), ("key", key)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if since is not None:
            clauses.append("created >= ?")
            params.append(since)
        if until is not None:
            clauses.append("created <= ?")
            params.append(until)
        sql = ("SELECT experiment, kernel, record, coords, wall_seconds,"
               " package_version, git_sha, created, key FROM runs")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        with self._lock:
            rows = self._db.execute(sql, params).fetchall()

        out: List[Dict[str, Any]] = []
        for (row_experiment, row_kernel, record_json, coords_json,
             wall_seconds, package_version, row_sha, created,
             row_key) in rows:
            record = json.loads(record_json)
            if coords is not None:
                row_coords = json.loads(coords_json) if coords_json else {}
                if not all(str(row_coords.get(name, _MISSING)) == str(value)
                           for name, value in coords.items()):
                    continue
            flat = {"experiment": row_experiment, **record}
            if row_kernel is not None:
                # The kernel column may come from the work item rather than
                # the record (e.g. coords without a kernel axis): surface it.
                flat.setdefault("kernel", row_kernel)
            flat.update(wall_seconds=wall_seconds,
                        package_version=package_version,
                        git_sha=row_sha, created=_iso(created), key=row_key)
            out.append(flat)
            if limit is not None and len(out) >= limit:
                break
        return out

    def trend(self, metric: str, **filters: Any) -> List[Dict[str, Any]]:
        """Per-sha aggregation of one record metric, oldest sha first.

        One row per git sha holding ``runs`` (rows carrying the metric) and
        the metric's min/mean/max across them — the cross-commit trend line
        the append-only design exists for.  ``filters`` are
        :meth:`query` keywords.
        """
        groups: Dict[str, List[float]] = {}
        first_seen: Dict[str, str] = {}
        for row in self.query(**filters):
            value = row.get(metric)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            sha = row["git_sha"]
            groups.setdefault(sha, []).append(float(value))
            first_seen.setdefault(sha, row["created"])
        return [{"git_sha": sha, "runs": len(values),
                 f"{metric}_min": min(values),
                 f"{metric}_mean": sum(values) / len(values),
                 f"{metric}_max": max(values),
                 "created": first_seen[sha]}
                for sha, values in groups.items()]

    def distinct(self, column: str) -> List[str]:
        """Distinct non-null values of one indexed column (for discovery)."""
        if column not in ("experiment", "model", "kernel", "tier", "git_sha"):
            raise ValueError(f"column {column!r} is not queryable; use one "
                             "of experiment, model, kernel, tier, git_sha")
        with self._lock:
            rows = self._db.execute(
                f"SELECT DISTINCT {column} FROM runs WHERE {column}"
                " IS NOT NULL ORDER BY 1").fetchall()
        return [row[0] for row in rows]


#: Process-wide stores, one per path — mirrors ``default_cache`` so the CLI
#: and library callers touching the same file share one connection.
_open_stores: Dict[str, ResultsStore] = {}


def open_results_store(path: Union[str, os.PathLike, None] = None,
                       ) -> Optional[ResultsStore]:
    """The process-global store for ``path`` (lazily created), or ``None``.

    With ``path=None`` the ``REPRO_RESULTS_DB`` environment variable
    decides: set, outcomes are appended there; unset, recording is off and
    ``None`` is returned — the store is strictly opt-in.
    """
    if path is None:
        path = os.environ.get("REPRO_RESULTS_DB") or None
    if path is None:
        return None
    key = str(Path(path))
    if key not in _open_stores:
        _open_stores[key] = ResultsStore(path)
    return _open_stores[key]


__all__ = ["ResultsStore", "SCHEMA_VERSION", "SchemaMismatchError",
           "git_sha", "open_results_store"]
