"""repro: system-level synthesis for virtual-memory-enabled hardware threads.

A cycle-level reproduction of the DATE 2016 paper's system: hardware threads
generated from HLS kernels that share the host process's virtual address
space through per-thread MMUs (TLB + page-table walker), with page faults
delegated to the host OS, plus the system-level synthesis flow that
dimensions and assembles such systems and the baselines they are evaluated
against.

Public API quick tour
---------------------

>>> from repro import workload, compare, HarnessConfig
>>> result = compare(workload("vecadd", scale="tiny"), HarnessConfig())
>>> result.speedup_vs_software > 0
True

Subpackages
-----------
``repro.core``      -- system specification, synthesis, resource model, DSE
``repro.sim``       -- event-driven cycle-level simulation kernel
``repro.mem``       -- DRAM, bus, caches, physical memory map
``repro.vm``        -- page tables, TLBs, walkers, MMUs, faults
``repro.os``        -- frame allocation, address spaces, fault handling, delegates
``repro.hwthread``  -- hardware thread model, HLS schedules, kernel library
``repro.baselines`` -- software, copy-DMA and ideal accelerator baselines
``repro.workloads`` -- workload generators and suites
``repro.eval``      -- experiment harness reproducing every table and figure
"""

from .core import (
    Platform,
    PlatformConfig,
    ResourceEstimate,
    ResourceModel,
    SynthesizedSystem,
    SystemSpec,
    SystemSynthesizer,
    ThreadSpec,
    size_tlb_for_footprint,
)
from .eval import HarnessConfig, compare, run_copydma, run_ideal, run_software, run_svm
from .models import (
    RunOutcome,
    get_model,
    register_model,
    registered_models,
)
from .workloads import WorkloadSpec, standard_suite, workload

# 1.5.0: adaptive multi-process breakdowns gained telemetry-derived fields
# (host_tlb_refills, epoch_fairness); the bump re-namespaces the memo cache
# and version-guards warm starts so pre-1.5 rows are never adopted.
__version__ = "1.5.0"

__all__ = [
    "HarnessConfig",
    "Platform",
    "PlatformConfig",
    "ResourceEstimate",
    "ResourceModel",
    "RunOutcome",
    "SynthesizedSystem",
    "SystemSpec",
    "SystemSynthesizer",
    "ThreadSpec",
    "WorkloadSpec",
    "compare",
    "get_model",
    "register_model",
    "registered_models",
    "run_copydma",
    "run_ideal",
    "run_software",
    "run_svm",
    "size_tlb_for_footprint",
    "standard_suite",
    "workload",
    "__version__",
]
