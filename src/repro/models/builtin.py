"""The paper's four execution models, on the registry.

Each model wraps one harness entry point (:mod:`repro.eval.harness`) and
normalises its result into a :class:`~repro.models.base.RunOutcome`.  The
harness import is deferred to call time: the harness builds platforms and
baselines whose modules ultimately import this package back.
"""

from __future__ import annotations

from typing import Any, Tuple

from .base import RunOutcome
from .registry import register_model

#: The models every comparison row of the paper reports, in column order.
CANONICAL_MODELS: Tuple[str, ...] = ("svm", "ideal", "copydma", "software")


def is_multiprocess(spec: Any) -> bool:
    """True when ``spec`` is an N-process contention workload."""
    from ..workloads.multiprocess import MultiProcessSpec
    return isinstance(spec, MultiProcessSpec)


def run_svm_family(name: str, spec: Any, config: Any = None,
                   num_threads: int = 1,
                   flush_on_switch: bool = True,
                   tier: str = "event") -> RunOutcome:
    """Run any SVM-family model on a single- or multi-process spec.

    Shared by the canonical ``svm`` and every variant so the multiprocess
    dispatch (and its TLB semantics) cannot drift between models: an
    N-process spec is time-sliced through ``run_multiprocess`` —
    ``flush_on_switch=True`` for models whose fabric TLB offers no
    cross-process survival, ``False`` for ASID survival (``svm-shared-tlb``)
    — while anything else runs the ordinary ``run_svm`` path.  ``tier``
    selects the execution tier (``"auto"`` replays recorded op streams
    through the fastpath engine when the configuration is eligible, falling
    back to the event simulator otherwise; see :mod:`repro.eval.harness`).
    """
    from ..eval import harness
    if is_multiprocess(spec):
        result = harness.run_multiprocess(spec, config,
                                          flush_on_switch=flush_on_switch,
                                          tier=tier)
    else:
        result = harness.run_svm(spec, config, num_threads=num_threads,
                                 tier=tier)
    return svm_outcome(name, result)


def svm_outcome(name: str, result: Any) -> RunOutcome:
    """Normalise an :class:`~repro.eval.harness.SVMResult` into a RunOutcome.

    Shared by every SVM-family model (the canonical ``svm`` and the variants
    in :mod:`repro.models.variants`) so the field mapping cannot drift.
    """
    return RunOutcome(model=name,
                      total_cycles=result.total_cycles,
                      fabric_cycles=result.fabric_cycles,
                      tlb_hit_rate=result.tlb_hit_rate,
                      tlb_misses=result.tlb_misses,
                      faults=result.faults,
                      software_overhead_cycles=result.software_overhead_cycles,
                      tier=result.tier,
                      breakdown=result.translation_breakdown())


@register_model("svm")
class SVMModel:
    """The paper's system: hardware thread + MMU (TLB, walker, page faults)."""

    tiers = ("event", "replay")

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1, tier: str = "event") -> RunOutcome:
        return run_svm_family("svm", spec, config, num_threads, tier=tier)


@register_model("ideal")
class IdealModel:
    """Same datapath with zero-cost translation (VM-overhead reference)."""

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1) -> RunOutcome:
        from ..eval import harness
        cycles = harness.run_ideal(spec, config)
        return RunOutcome(model="ideal", total_cycles=cycles,
                          fabric_cycles=cycles)


@register_model("copydma")
class CopyDMAModel:
    """Conventional copy-in / compute / copy-out accelerator baseline."""

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1) -> RunOutcome:
        from ..eval import harness
        result = harness.run_copydma(spec, config)
        return RunOutcome(model="copydma",
                          total_cycles=result.total_cycles,
                          fabric_cycles=result.fabric_cycles,
                          breakdown={"alloc_cycles": result.alloc_cycles,
                                     "copy_in_cycles": result.copy_in_cycles,
                                     "copy_out_cycles": result.copy_out_cycles,
                                     "mem_bytes": result.mem_bytes})


@register_model("software")
class SoftwareModel:
    """The kernel running on the host CPU (fabric-equivalent cycles)."""

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1) -> RunOutcome:
        from ..eval import harness
        cycles = harness.run_software(spec, config, num_threads=num_threads)
        return RunOutcome(model="software", total_cycles=cycles,
                          fabric_cycles=cycles)
