"""Execution-model protocol and the unified run outcome.

Every execution model — the paper's SVM hardware thread, the ideal
physically-addressed accelerator, the copy-DMA baseline, the software CPU,
and any model registered later — answers the same question: *how long does
this workload take under this configuration?*  :class:`RunOutcome` is the
uniform, picklable answer, so sweeps, comparisons and the memo cache never
need to know which model produced a result.  Model-specific detail (the
copy-DMA marshalling split, for instance) goes in the optional ``breakdown``
mapping instead of a per-model result type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Protocol, runtime_checkable


@dataclass(frozen=True)
class RunOutcome:
    """Uniform result of running one workload under one execution model.

    ``total_cycles`` is the end-to-end time in fabric cycles (including any
    software/marshalling overhead the model pays); ``fabric_cycles`` is the
    compute portion only.  Translation statistics are zero for models that
    do not translate (ideal, copydma, software).
    """

    model: str
    total_cycles: int
    fabric_cycles: int
    tlb_hit_rate: float = 0.0
    tlb_misses: int = 0
    faults: int = 0
    software_overhead_cycles: int = 0
    #: Execution tier that produced the result: ``"event"`` for the
    #: event-driven simulator, ``"replay"`` for the fastpath replay engine.
    tier: str = "event"
    #: Model-specific extras (e.g. the copy-DMA alloc/copy-in/copy-out split).
    breakdown: Optional[Dict[str, Any]] = field(default=None)

    def __post_init__(self) -> None:
        if self.total_cycles < 0 or self.fabric_cycles < 0:
            raise ValueError("cycle counts must be non-negative")

    @property
    def marshalling_cycles(self) -> int:
        """Host-side data-movement cycles (alloc + copy-in + copy-out).

        Zero for models that do not marshal; copy-based models report the
        split through ``breakdown``.
        """
        if not self.breakdown:
            return 0
        return int(self.breakdown.get("alloc_cycles", 0)
                   + self.breakdown.get("copy_in_cycles", 0)
                   + self.breakdown.get("copy_out_cycles", 0))


@runtime_checkable
class ExecutionModel(Protocol):
    """What a registered execution model must provide.

    ``run`` executes one workload spec under one harness configuration and
    returns a :class:`RunOutcome`.  Models that have no notion of multiple
    hardware threads accept and ignore ``num_threads``.

    ``tiers`` declares which execution tiers the model supports.  The
    registry defaults it to ``("event",)``; models built on the SVM harness
    additionally declare ``"replay"`` and accept a ``tier`` keyword in
    ``run`` (``"auto" | "event" | "replay"``, see
    :mod:`repro.eval.harness`).  Jobs only forward a tier request to models
    that declare it, so single-tier models never see the keyword.
    """

    name: str
    tiers: tuple

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1) -> RunOutcome:
        ...
