"""Execution-model protocol and the unified run outcome.

Every execution model — the paper's SVM hardware thread, the ideal
physically-addressed accelerator, the copy-DMA baseline, the software CPU,
and any model registered later — answers the same question: *how long does
this workload take under this configuration?*  :class:`RunOutcome` is the
uniform, picklable answer, so sweeps, comparisons and the memo cache never
need to know which model produced a result.  Model-specific detail (the
copy-DMA marshalling split, for instance) goes in the optional ``breakdown``
mapping instead of a per-model result type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Protocol, Tuple, runtime_checkable

#: Breakdown counters surfaced as flat record fields (0 when a model does
#: not report them).  Keep in sync with ``SVMResult.translation_breakdown``.
_RECORD_BREAKDOWN_FIELDS: Tuple[str, ...] = (
    "walks", "walker_levels", "walker_cycles", "miss_stall_cycles",
    "prefetches_issued", "prefetch_hits", "context_switches", "epochs")

#: The canonical record schema: every ``RunOutcome.to_record()`` emits
#: exactly these fields (plus the caller's coordinate columns).  Pinned —
#: the results store, ``repro query`` and CSV consumers parse it; removing
#: or renaming a field is a schema break and needs a store
#: ``SCHEMA_VERSION`` bump to go with it.
RECORD_FIELDS: Tuple[str, ...] = (
    "model", "tier", "total_cycles", "fabric_cycles", "tlb_hit_rate",
    "tlb_misses", "faults", "software_overhead_cycles",
    "marshalling_cycles") + _RECORD_BREAKDOWN_FIELDS


@dataclass(frozen=True)
class RunOutcome:
    """Uniform result of running one workload under one execution model.

    ``total_cycles`` is the end-to-end time in fabric cycles (including any
    software/marshalling overhead the model pays); ``fabric_cycles`` is the
    compute portion only.  Translation statistics are zero for models that
    do not translate (ideal, copydma, software).
    """

    model: str
    total_cycles: int
    fabric_cycles: int
    tlb_hit_rate: float = 0.0
    tlb_misses: int = 0
    faults: int = 0
    software_overhead_cycles: int = 0
    #: Execution tier that produced the result: ``"event"`` for the
    #: event-driven simulator, ``"replay"`` for the fastpath replay engine.
    tier: str = "event"
    #: Model-specific extras (e.g. the copy-DMA alloc/copy-in/copy-out split).
    breakdown: Optional[Dict[str, Any]] = field(default=None)

    def __post_init__(self) -> None:
        if self.total_cycles < 0 or self.fabric_cycles < 0:
            raise ValueError("cycle counts must be non-negative")

    @property
    def marshalling_cycles(self) -> int:
        """Host-side data-movement cycles (alloc + copy-in + copy-out).

        Zero for models that do not marshal; copy-based models report the
        split through ``breakdown``.
        """
        if not self.breakdown:
            return 0
        return int(self.breakdown.get("alloc_cycles", 0)
                   + self.breakdown.get("copy_in_cycles", 0)
                   + self.breakdown.get("copy_out_cycles", 0))

    def to_record(self, coords: Optional[Mapping[str, Any]] = None
                  ) -> Dict[str, Any]:
        """The canonical flat record: one dict, every output surface.

        ``coords`` (sweep coordinates) become leading columns; then exactly
        :data:`RECORD_FIELDS` — cycles, translation statistics, the
        marshalling aggregate and the breakdown counters (0 where a model
        does not report one).  The results store, ``repro query``, CSV/JSON
        row output and :meth:`SweepOutcomes.to_records` all serialize
        through this method, so the field set is pinned by test.  A
        coordinate sharing a record field's name (e.g. a ``model`` axis) is
        overwritten by the outcome's own value — they agree by
        construction.
        """
        record: Dict[str, Any] = dict(coords) if coords else {}
        breakdown = self.breakdown or {}
        record.update(
            model=self.model,
            tier=self.tier,
            total_cycles=self.total_cycles,
            fabric_cycles=self.fabric_cycles,
            tlb_hit_rate=self.tlb_hit_rate,
            tlb_misses=self.tlb_misses,
            faults=self.faults,
            software_overhead_cycles=self.software_overhead_cycles,
            marshalling_cycles=self.marshalling_cycles,
        )
        for name in _RECORD_BREAKDOWN_FIELDS:
            record[name] = int(breakdown.get(name, 0))
        return record


@runtime_checkable
class ExecutionModel(Protocol):
    """What a registered execution model must provide.

    ``run`` executes one workload spec under one harness configuration and
    returns a :class:`RunOutcome`.  Models that have no notion of multiple
    hardware threads accept and ignore ``num_threads``.

    ``tiers`` declares which execution tiers the model supports.  The
    registry defaults it to ``("event",)``; models built on the SVM harness
    additionally declare ``"replay"`` and accept a ``tier`` keyword in
    ``run`` (``"auto" | "event" | "replay"``, see
    :mod:`repro.eval.harness`).  Jobs only forward a tier request to models
    that declare it, so single-tier models never see the keyword.
    """

    name: str
    tiers: tuple

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1) -> RunOutcome:
        ...
