"""The SVM variant family: prefetching, shared-TLB and hugepage models.

These are the first models to join the registry after the paper's four —
the payoff of the PR-2 registry design: each variant is the canonical SVM
datapath with one translation-machinery knob turned, registered under its
own name, and immediately sweepable by jobs, ``compare()``, the figure
experiments (Fig. 11 ablates all seven models) and the CLI without touching
any of those layers.

* ``svm-prefetch`` — a next-page/stride translation prefetcher on the TLB
  miss path (:mod:`repro.vm.mmu`): demand misses predict the following pages
  and walk them in the background, so streaming kernels stop stalling on
  page-boundary misses.  Expect fewer TLB misses and miss-stall cycles than
  ``svm``; the walker works *more* (prefetch walks), the datapath waits less.
* ``svm-shared-tlb`` — all hardware threads (or, for a
  :class:`~repro.workloads.multiprocess.MultiProcessSpec`, all processes
  time-sliced onto one thread) share a single ASID-tagged fabric TLB.
  Capacity contention hurts; what the model demonstrates is *correct
  isolation*: translations of different address spaces coexist per ASID and
  cross-process shootdowns (:meth:`repro.os.kernel.HostKernel.shootdown`)
  stay targeted.
* ``svm-hugepage`` — 2 MB pages with a single-level page table
  (:data:`repro.vm.pagetable.HUGE_PAGE_SIZE`): ~512× fewer translations
  miss and every walk reads one PTE instead of one per level.  Expect far
  fewer walker levels/cycles than ``svm`` at the cost of coarser paging
  (demand paging and partial residency lose granularity).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Tuple

from ..vm.pagetable import HUGE_PAGE_SIZE, levels_for_page_size
from .base import RunOutcome
from .builtin import run_svm_family
from .registry import register_model

#: The non-canonical SVM variants, in the column order Fig. 11 reports.
VARIANT_MODELS: Tuple[str, ...] = ("svm-prefetch", "svm-shared-tlb",
                                   "svm-hugepage")


@register_model("svm-prefetch")
class PrefetchSVMModel:
    """SVM thread with a next-page/stride TLB prefetcher on the miss path."""

    #: Pages walked ahead of the demand stream (applied when the harness
    #: config does not set its own depth).
    default_depth = 1

    tiers = ("event", "replay")

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1, tier: str = "event") -> RunOutcome:
        from ..eval import harness
        config = config or harness.HarnessConfig()
        if config.tlb_prefetch == 0:
            config = replace(config, tlb_prefetch=self.default_depth)
        # svm semantics + prefetcher: no cross-process TLB survival.
        return run_svm_family("svm-prefetch", spec, config, num_threads,
                              tier=tier)


@register_model("svm-shared-tlb")
class SharedTLBSVMModel:
    """One ASID-tagged fabric TLB shared by all threads / processes."""

    tiers = ("event", "replay")

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1, tier: str = "event") -> RunOutcome:
        from ..eval import harness
        config = config or harness.HarnessConfig()
        # ASID-tagged entries survive context switches: no flush.
        return run_svm_family("svm-shared-tlb", spec,
                              replace(config, shared_tlb=True), num_threads,
                              flush_on_switch=False, tier=tier)


@register_model("svm-hugepage")
class HugepageSVMModel:
    """SVM thread backed by 2 MB pages and a single-level page table."""

    page_size = HUGE_PAGE_SIZE

    tiers = ("event", "replay")

    def run(self, spec: Any, config: Any = None,
            num_threads: int = 1, tier: str = "event") -> RunOutcome:
        from ..eval import harness
        config = config or harness.HarnessConfig()
        platform = replace(config.platform,
                           page_size=self.page_size,
                           page_table_levels=levels_for_page_size(self.page_size))
        # svm semantics + huge pages: no cross-process TLB survival.
        return run_svm_family("svm-hugepage", spec,
                              replace(config, platform=platform), num_threads,
                              tier=tier)
