"""Pluggable execution models.

An *execution model* answers "how long does this workload take on this kind
of system?" — the paper compares four (``svm``, ``ideal``, ``copydma``,
``software``), all registered here.  Every model returns the same
:class:`RunOutcome`, so the layers above (jobs, sweeps, ``compare()``, the
CLI) are model-agnostic: registering a fifth model under a new name makes it
sweepable everywhere without touching them.

See :mod:`repro.models.registry` for the registration contract and
:mod:`repro.models.builtin` for the reference implementations.
"""

from .base import RECORD_FIELDS, ExecutionModel, RunOutcome
from .registry import (DuplicateModelError, UnknownModelError, get_model,
                       register_model, registered_models, unregister_model)
from . import builtin as _builtin   # registers the paper's four models
from .builtin import CANONICAL_MODELS
from . import variants as _variants  # registers the SVM variant family
from .variants import VARIANT_MODELS

del _builtin, _variants

#: Canonical models first (Table 3 column order), then the variant family —
#: the seven models the Fig. 11 ablation sweeps.
ALL_MODELS = CANONICAL_MODELS + VARIANT_MODELS

__all__ = [
    "ALL_MODELS",
    "CANONICAL_MODELS",
    "VARIANT_MODELS",
    "DuplicateModelError",
    "ExecutionModel",
    "RECORD_FIELDS",
    "RunOutcome",
    "UnknownModelError",
    "get_model",
    "register_model",
    "registered_models",
    "unregister_model",
]
