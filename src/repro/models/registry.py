"""Execution-model registry: name -> :class:`~repro.models.base.ExecutionModel`.

New models plug into every layer above them — :class:`~repro.exec.jobs
.ExperimentJob` dispatch, sweeps, ``compare()`` and the CLI — by registering
under a name; none of those layers enumerate models themselves::

    from repro.models import RunOutcome, register_model

    @register_model("prefetch_svm")
    class PrefetchingSVM:
        \"\"\"SVM thread with next-page prefetch on every TLB miss.\"\"\"

        def run(self, spec, config=None, num_threads=1):
            ...
            return RunOutcome(model="prefetch_svm", total_cycles=...,
                              fabric_cycles=...)

After this, ``ExperimentJob("prefetch_svm", spec, config)`` is a valid sweep
point and ``repro models`` lists the model — no other module changes.

Two practical notes for registered models:

* Memo-cache keys identify a model by its registered *name*, and the disk
  cache's version namespace tracks only this package's version — after
  editing a registered model's logic, use a fresh cache directory (or
  ``MemoCache.clear()``) so old outcomes are not replayed.
* Models registered outside module import (a test, a notebook cell) are not
  re-registered inside spawn/forkserver pool workers; the sweep runner
  detects the resulting ``UnknownModelError`` and transparently falls back
  to the serial path, with identical results.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from .base import ExecutionModel


class UnknownModelError(KeyError):
    """Lookup of a model name nothing has registered."""


class DuplicateModelError(ValueError):
    """Registration under a name that is already taken."""


_REGISTRY: Dict[str, ExecutionModel] = {}


def register_model(name: str) -> Callable:
    """Class (or instance) decorator registering an execution model.

    A decorated class is instantiated once (it must take no constructor
    arguments); an already-constructed object is stored as-is.  The model's
    ``name`` attribute is set to the registered name.  Returns the decorated
    class/object unchanged, so it can still be imported and used directly.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("model name must be a non-empty string")

    def decorate(obj: Union[type, ExecutionModel]):
        if name in _REGISTRY:
            raise DuplicateModelError(
                f"execution model {name!r} is already registered "
                f"(by {type(_REGISTRY[name]).__module__}."
                f"{type(_REGISTRY[name]).__name__})")
        model = obj() if isinstance(obj, type) else obj
        if not callable(getattr(model, "run", None)):
            raise TypeError(
                f"execution model {name!r} must provide a callable "
                f"run(spec, config, num_threads) method")
        model.name = name
        # Models declare supported execution tiers; the default is the
        # event-driven simulator only.  Jobs consult this before forwarding
        # a tier request (see repro.exec.jobs.run_job).
        model.tiers = tuple(getattr(model, "tiers", ("event",)))
        _REGISTRY[name] = model
        return obj

    return decorate


def get_model(name: str) -> ExecutionModel:
    """The registered model instance for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownModelError(
            f"unknown execution model {name!r}; "
            f"registered: {', '.join(registered_models())}") from None


def registered_models() -> Tuple[str, ...]:
    """All registered model names, sorted."""
    return tuple(sorted(_REGISTRY))


def unregister_model(name: str) -> None:
    """Remove a registered model (primarily for tests and plugins)."""
    if name not in _REGISTRY:
        raise UnknownModelError(f"unknown execution model {name!r}")
    del _REGISTRY[name]
