"""Cycle-level, event-driven simulation kernel."""

from .engine import Event, SimulationError, Simulator
from .component import Component
from .process import (
    Access,
    Burst,
    Compute,
    Fence,
    Operation,
    ProcessState,
    Yield,
    count_bytes,
    run_functional,
)
from .stats import Accumulator, Counter, Histogram, Scalar, StatsRegistry, merge_snapshots
from .trace import GLOBAL_TRACER, TraceRecord, Tracer

__all__ = [
    "Access",
    "Accumulator",
    "Burst",
    "Component",
    "Compute",
    "Counter",
    "Event",
    "Fence",
    "GLOBAL_TRACER",
    "Histogram",
    "Operation",
    "ProcessState",
    "Scalar",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "TraceRecord",
    "Tracer",
    "Yield",
    "count_bytes",
    "merge_snapshots",
    "run_functional",
]
