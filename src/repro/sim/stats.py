"""Statistics collection for simulation components.

Every component owns a set of named statistics (counters, scalars,
histograms, latency accumulators) registered in a global
:class:`StatsRegistry` so the evaluation harness can collect a flat snapshot
after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Scalar:
    """A single overwritable numeric value (e.g. a final cycle count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


class Accumulator:
    """Running sum / count / min / max, used for latencies and occupancies."""

    __slots__ = ("name", "total", "count", "minimum", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.total = 0.0
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, sample: float) -> None:
        self.total += sample
        self.count += 1
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.count = 0
        self.minimum = None
        self.maximum = None

    def __repr__(self) -> str:
        return f"Accumulator({self.name}: n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """Bucketed histogram over integer samples (power-of-two buckets)."""

    def __init__(self, name: str, num_buckets: int = 24):
        self.name = name
        self.num_buckets = num_buckets
        self.buckets = [0] * num_buckets
        self.count = 0

    def add(self, sample: int) -> None:
        if sample < 0:
            raise ValueError("histogram samples must be non-negative")
        bucket = sample.bit_length()
        if bucket >= self.num_buckets:
            bucket = self.num_buckets - 1
        self.buckets[bucket] += 1
        self.count += 1

    def reset(self) -> None:
        self.buckets = [0] * self.num_buckets
        self.count = 0

    def as_dict(self) -> Dict[str, int]:
        out = {}
        for i, value in enumerate(self.buckets):
            if value:
                low = 0 if i == 0 else 1 << (i - 1)
                high = (1 << i) - 1
                out[f"[{low},{high}]"] = value
        return out


@dataclass
class StatGroup:
    """Statistics belonging to one component."""

    owner: str
    counters: Dict[str, Counter] = field(default_factory=dict)
    scalars: Dict[str, Scalar] = field(default_factory=dict)
    accumulators: Dict[str, Accumulator] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def scalar(self, name: str) -> Scalar:
        if name not in self.scalars:
            self.scalars[name] = Scalar(name)
        return self.scalars[name]

    def accumulator(self, name: str) -> Accumulator:
        if name not in self.accumulators:
            self.accumulators[name] = Accumulator(name)
        return self.accumulators[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten all statistics of this group into ``{name: value}``."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, scalar in self.scalars.items():
            out[name] = scalar.value
        for name, acc in self.accumulators.items():
            out[f"{name}.mean"] = acc.mean
            out[f"{name}.count"] = acc.count
            out[f"{name}.total"] = acc.total
            if acc.maximum is not None:
                out[f"{name}.max"] = acc.maximum
        for name, hist in self.histograms.items():
            out[f"{name}.count"] = hist.count
        return out

    def reset(self) -> None:
        for collection in (self.counters, self.scalars,
                           self.accumulators, self.histograms):
            for stat in collection.values():
                stat.reset()


class StatsRegistry:
    """All statistic groups of a simulation, keyed by component name."""

    def __init__(self):
        self._groups: Dict[str, StatGroup] = {}

    def group(self, owner: str) -> StatGroup:
        if owner not in self._groups:
            self._groups[owner] = StatGroup(owner)
        return self._groups[owner]

    def groups(self) -> Iterable[Tuple[str, StatGroup]]:
        return self._groups.items()

    def snapshot(self) -> Dict[str, float]:
        """Flatten every statistic into ``{"component.stat": value}``."""
        out: Dict[str, float] = {}
        for owner, group in self._groups.items():
            for name, value in group.snapshot().items():
                out[f"{owner}.{name}"] = value
        return out

    def reset(self) -> None:
        for group in self._groups.values():
            group.reset()

    def query(self, prefix: str) -> Dict[str, float]:
        """Return the snapshot entries whose key starts with ``prefix``."""
        return {k: v for k, v in self.snapshot().items() if k.startswith(prefix)}


def merge_snapshots(snapshots: Iterable[Mapping[str, float]]) -> Dict[str, List[float]]:
    """Collect per-run snapshots into ``{key: [values...]}`` for reporting."""
    merged: Dict[str, List[float]] = {}
    for snap in snapshots:
        for key, value in snap.items():
            merged.setdefault(key, []).append(value)
    return merged


def sum_matching(snapshot: Mapping[str, float], prefix: str,
                 suffix: str) -> int:
    """Sum every ``<prefix>*.<suffix>`` entry of a flat stats snapshot.

    The canonical way to aggregate one statistic over a family of components
    (``sum_matching(snap, "mmu.", "tlb_misses")`` totals the TLB misses of
    every MMU): used by the evaluation harness's result aggregation and by
    the scheduling telemetry bus, so the two can never disagree on what a
    counter means.
    """
    dotted = "." + suffix
    return int(sum(value for key, value in snapshot.items()
                   if key.startswith(prefix) and key.endswith(dotted)))


def diff_snapshots(new: Mapping[str, float],
                   old: Mapping[str, float]) -> Dict[str, float]:
    """Per-key delta ``new - old`` of two snapshots of the same registry.

    Keys absent from ``old`` (components created between the snapshots) count
    from zero; keys absent from ``new`` are dropped.  For monotonic counters
    this is exactly "what happened between the two sample points", which is
    what epoch-based telemetry consumes.
    """
    return {key: value - old.get(key, 0.0) for key, value in new.items()}
