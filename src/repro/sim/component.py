"""Base class for simulated hardware/software components."""

from __future__ import annotations

from typing import Callable

from .engine import Event, Simulator
from .stats import StatGroup


class Component:
    """A named component attached to a :class:`~repro.sim.engine.Simulator`.

    Components get a private statistics group and convenience scheduling
    helpers.  Sub-classes model hardware blocks (DRAM, bus, TLB, walker,
    accelerator threads) or software actors (host kernel, delegate threads).
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.stats: StatGroup = sim.stats.group(name)

    # ------------------------------------------------------------ scheduling
    @property
    def now(self) -> int:
        return self.sim.now

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)

    # ----------------------------------------------------------------- stats
    def count(self, stat: str, amount: int = 1) -> None:
        self.stats.counter(stat).inc(amount)

    def sample(self, stat: str, value: float) -> None:
        self.stats.accumulator(stat).add(value)

    def set_stat(self, stat: str, value: float) -> None:
        self.stats.scalar(stat).set(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class NamedMixin:
    """Tiny helper for objects that carry a name but are not components."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
