"""Lightweight event tracing.

Tracing is disabled by default; when enabled it records ``(cycle, component,
event, detail)`` tuples that tests and debugging sessions can inspect.

Disabled tracing must cost *nothing* on hot paths.  Two rules keep it that
way:

* Call sites in per-event code guard the call itself —
  ``if tracer.enabled: tracer.log(...)`` — so a disabled tracer costs one
  attribute load, not a function call.
* Detail strings are never built eagerly at guarded-off sites.  Where the
  guard idiom is inconvenient, pass a zero-argument callable as ``detail``:
  :meth:`Tracer.log` only invokes it when the record is actually stored, so
  an f-string's formatting cost is deferred behind the enable check.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Union


@dataclass(frozen=True)
class TraceRecord:
    cycle: int
    component: str
    event: str
    detail: str = ""


#: Either the detail string itself, or a zero-argument callable producing it
#: (evaluated only when the record is stored).
Detail = Union[str, Callable[[], str]]


class Tracer:
    """Collects trace records when enabled."""

    def __init__(self, enabled: bool = False, limit: Optional[int] = None):
        self.enabled = enabled
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def log(self, cycle: int, component: str, event: str,
            detail: Detail = "") -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        if callable(detail):
            detail = detail()
        self.records.append(TraceRecord(cycle, component, event, detail))

    @contextmanager
    def section(self, cycle: int, component: str, event: str,
                detail: Detail = "") -> Iterator["Tracer"]:
        """Bracket a block with ``<event>:begin`` / ``<event>:end`` records.

        The end record is emitted even when the block raises, so a truncated
        trace still shows which section failed.  Like :meth:`log`, a callable
        ``detail`` is evaluated at most once, and only when enabled.
        """
        if self.enabled and callable(detail):
            detail = detail()
        self.log(cycle, component, f"{event}:begin", detail)
        try:
            yield self
        finally:
            self.log(cycle, component, f"{event}:end", detail)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def filter(self, component: Optional[str] = None,
               event: Optional[str] = None) -> List[TraceRecord]:
        out = []
        for record in self.records:
            if component is not None and record.component != component:
                continue
            if event is not None and record.event != event:
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self.records)


#: Process-wide tracer used by components that do not receive an explicit one.
GLOBAL_TRACER = Tracer(enabled=False)
