"""Lightweight event tracing.

Tracing is disabled by default (zero overhead besides an ``if``); when
enabled it records ``(cycle, component, event, detail)`` tuples that tests
and debugging sessions can inspect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    cycle: int
    component: str
    event: str
    detail: str = ""


class Tracer:
    """Collects trace records when enabled."""

    def __init__(self, enabled: bool = False, limit: Optional[int] = None):
        self.enabled = enabled
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def log(self, cycle: int, component: str, event: str, detail: str = "") -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(cycle, component, event, detail))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def filter(self, component: Optional[str] = None,
               event: Optional[str] = None) -> List[TraceRecord]:
        out = []
        for record in self.records:
            if component is not None and record.component != component:
                continue
            if event is not None and record.event != event:
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self.records)


#: Process-wide tracer used by components that do not receive an explicit one.
GLOBAL_TRACER = Tracer(enabled=False)
