"""Generator-based simulated processes.

Accelerator kernels and software actors are written as Python generators that
yield *operations* — compute delays, memory accesses, barriers — and are
resumed by their driving component when the operation completes.  This gives
the flexibility of process-based simulation (like hardware threads described
in C for HLS) while keeping the event count proportional to the number of
operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional


class Operation:
    """Base class for values a kernel generator may yield."""

    __slots__ = ()


@dataclass
class Compute(Operation):
    """Occupy the datapath for ``cycles`` cycles (no memory traffic)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("compute cycles must be non-negative")


@dataclass
class Access(Operation):
    """A single memory access of ``size`` bytes at virtual address ``addr``."""

    addr: int
    size: int = 4
    is_write: bool = False
    tag: Optional[str] = None


@dataclass
class Burst(Operation):
    """A burst of ``count`` consecutive accesses of ``size`` bytes each.

    Bursts model the accelerator's AXI burst engine: a single bus transaction
    moving ``count * size`` bytes starting at ``addr``.  The MMU translates
    the burst page-by-page, so bursts may still incur several TLB lookups if
    they cross page boundaries.
    """

    addr: int
    count: int
    size: int = 4
    is_write: bool = False
    tag: Optional[str] = None

    @property
    def total_bytes(self) -> int:
        return self.count * self.size


@dataclass
class Fence(Operation):
    """Wait until all outstanding memory operations of the thread retire."""


@dataclass
class Yield(Operation):
    """Yield the datapath for one cycle (used by cooperative models)."""


@dataclass
class Spawn(Operation):
    """Request that the runtime start another process (software model only)."""

    target: Any = None


KernelGenerator = Generator[Operation, Any, None]


@dataclass
class ProcessState:
    """Bookkeeping for a running generator-based process."""

    generator: KernelGenerator
    finished: bool = False
    started_at: int = 0
    finished_at: Optional[int] = None
    ops_executed: int = 0
    last_value: Any = None
    on_finish: List[Callable[["ProcessState"], None]] = field(default_factory=list)

    def advance(self, send_value: Any = None) -> Optional[Operation]:
        """Resume the generator; return the next operation or None if done."""
        if self.finished:
            return None
        try:
            op = self.generator.send(send_value) if self.ops_executed else next(self.generator)
        except StopIteration:
            self.finished = True
            return None
        self.ops_executed += 1
        return op

    def finish(self, cycle: int) -> None:
        self.finished = True
        self.finished_at = cycle
        for hook in self.on_finish:
            hook(self)


def run_functional(generator: KernelGenerator) -> List[Operation]:
    """Exhaust a kernel generator without timing, returning its operations.

    Used by tests and by the workload characterisation harness (Table 2) to
    inspect the access pattern a kernel produces without simulating it.
    """
    ops: List[Operation] = []
    state = ProcessState(generator)
    while True:
        op = state.advance()
        if op is None:
            break
        ops.append(op)
    return ops


def count_bytes(ops: Iterable[Operation]) -> int:
    """Total bytes moved by the memory operations in ``ops``."""
    total = 0
    for op in ops:
        if isinstance(op, Access):
            total += op.size
        elif isinstance(op, Burst):
            total += op.total_bytes
    return total
