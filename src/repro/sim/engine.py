"""Event-driven, cycle-level simulation engine.

The engine keeps a priority queue of (cycle, sequence, callback) events.  All
timing in the model is expressed in clock cycles of a single global clock
domain (the paper's platform runs the fabric and the memory subsystem from
one clock; the host CPU is modelled with a cycle-ratio, see
:mod:`repro.baselines.software`).

Components never busy-tick: every interaction is an event, so simulation cost
scales with the number of transactions, not with the number of cycles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from .stats import StatsRegistry


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass(order=True)
class _Event:
    cycle: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    popped: bool = field(default=False, compare=False)


class Event:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    @property
    def cycle(self) -> int:
        return self._event.cycle

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event's callback from running.

        A no-op once the event has already been taken off the queue (run or
        skipped): there is nothing left to cancel, and counting it would
        corrupt the live-event accounting.
        """
        if not self._event.cancelled and not self._event.popped:
            self._event.cancelled = True
            self._sim._note_cancelled()


class Simulator:
    """Global event queue and clock.

    Parameters
    ----------
    max_cycles:
        Safety limit; :meth:`run` raises :class:`SimulationError` if the
        simulation has not quiesced by this cycle.  ``None`` disables the
        limit.
    """

    def __init__(self, max_cycles: Optional[int] = None):
        self._queue: list[_Event] = []
        self._seq = 0
        self._now = 0
        self._max_cycles = max_cycles
        self._cancelled = 0
        self.stats = StatsRegistry()
        self._running = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` must be non-negative; a zero delay runs later in the same
        cycle (after all previously scheduled same-cycle events).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = _Event(self._now + int(delay), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return Event(event, self)

    def _note_cancelled(self) -> None:
        self._cancelled += 1

    def schedule_at(self, cycle: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute cycle (must not be in the past)."""
        if cycle < self._now:
            raise ValueError(f"cannot schedule in the past: {cycle} < {self._now}")
        return self.schedule(cycle - self._now, callback)

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains (or until the given cycle).

        Returns the cycle at which the simulation stopped.
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run backwards: until={until} < now={self._now}")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.cycle > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._queue)
                event.popped = True
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                if self._max_cycles is not None and event.cycle > self._max_cycles:
                    raise SimulationError(
                        f"simulation exceeded max_cycles={self._max_cycles} "
                        f"(next event at {event.cycle})"
                    )
                self._now = event.cycle
                event.callback()
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Run a single event.  Returns False when the queue is empty.

        Honours ``max_cycles`` exactly like :meth:`run`: single-stepping past
        the safety limit raises :class:`SimulationError` instead of silently
        executing the event.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            event.popped = True
            if event.cancelled:
                self._cancelled -= 1
                continue
            if self._max_cycles is not None and event.cycle > self._max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={self._max_cycles} "
                    f"(next event at {event.cycle})"
                )
            self._now = event.cycle
            event.callback()
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled
