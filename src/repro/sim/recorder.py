"""Op-stream recording: the *record* half of the two-tier execution seam.

A :class:`TraceRecorder` captures the operation stream a kernel generator
produces — op kind, virtual address, byte count, write flag, issue-gap
(compute) cycles — as compact NumPy arrays.  A recorded stream is the whole
timing-free content of a kernel: the hardware thread model consumes the
operations in program order, so one recording replays deterministically
through any timing model (the event-driven simulator or the
:mod:`repro.fastpath` replay engine).

Two capture modes exist:

* **functional** (:meth:`TraceRecorder.capture`): drain a kernel generator
  directly, without building a simulation.  This is how the replay tier
  records a workload's stream once per shape.
* **live** (:meth:`MemoryInterface.attach_recorder
  <repro.hwthread.memif.MemoryInterface>`): the memory interface feeds every
  submitted operation to an attached recorder during an event-tier run, so a
  stream can be captured from a real simulation and compared against the
  functional recording (the memory interface sees exactly the memory
  operations, in program order, so the live recording must equal the
  functional recording's ``KIND_MEM`` rows — a test pins this).

NumPy is an optional dependency of this module: without it recording is
unavailable (:data:`HAVE_NUMPY` is False) and the replay tier reports itself
ineligible instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from .process import Access, Burst, Compute, Fence, Operation, Yield

#: Recorded op kinds (column values of :attr:`RecordedStream.kinds`).
KIND_COMPUTE = 0
KIND_MEM = 1
KIND_FENCE = 2
KIND_YIELD = 3
#: Process-boundary marker used by multi-process slice programs (never
#: produced by :meth:`TraceRecorder.capture`; the fastpath planner emits it).
KIND_SWITCH = 4


class UnrecordableOperation(TypeError):
    """A kernel yielded an operation the recorder cannot represent."""


@dataclass(frozen=True)
class RecordedStream:
    """One kernel's operation stream as parallel NumPy columns.

    ``kinds[i]`` selects the row's meaning: for ``KIND_MEM`` rows ``addrs``/
    ``sizes``/``writes`` describe the virtual byte range touched (a ``Burst``
    is recorded by its total footprint — the memory interface re-derives the
    page/burst chunking, so the two encodings are equivalent); for
    ``KIND_COMPUTE`` rows ``cycles`` holds the issue gap.  Fence/yield rows
    carry no payload.
    """

    kinds: "object"     # np.ndarray[int8]
    addrs: "object"     # np.ndarray[int64]
    sizes: "object"     # np.ndarray[int64]
    writes: "object"    # np.ndarray[bool]
    cycles: "object"    # np.ndarray[int64]

    @property
    def num_ops(self) -> int:
        return int(len(self.kinds))

    @property
    def nbytes(self) -> int:
        """Storage footprint of the recording (compactness metric)."""
        return sum(int(col.nbytes) for col in
                   (self.kinds, self.addrs, self.sizes, self.writes,
                    self.cycles))

    def columns(self) -> Tuple[List[int], List[int], List[int], List[bool],
                               List[int]]:
        """The stream as plain lists (what a replay loop iterates)."""
        return (self.kinds.tolist(), self.addrs.tolist(),
                self.sizes.tolist(), self.writes.tolist(),
                self.cycles.tolist())


class TraceRecorder:
    """Accumulates one thread's operation stream and freezes it to arrays."""

    def __init__(self) -> None:
        self._kinds: List[int] = []
        self._addrs: List[int] = []
        self._sizes: List[int] = []
        self._writes: List[bool] = []
        self._cycles: List[int] = []

    # ------------------------------------------------------------- recording
    def on_op(self, op: Operation) -> None:
        """Record one operation (the live memif hook and capture both land here)."""
        if isinstance(op, Burst):
            self._append(KIND_MEM, op.addr, op.total_bytes, op.is_write, 0)
        elif isinstance(op, Access):
            self._append(KIND_MEM, op.addr, op.size, op.is_write, 0)
        elif isinstance(op, Compute):
            self._append(KIND_COMPUTE, 0, 0, False, op.cycles)
        elif isinstance(op, Fence):
            self._append(KIND_FENCE, 0, 0, False, 0)
        elif isinstance(op, Yield):
            self._append(KIND_YIELD, 0, 0, False, 0)
        else:
            raise UnrecordableOperation(
                f"cannot record operation {op!r}; recordable kinds are "
                "Compute/Access/Burst/Fence/Yield")

    def _append(self, kind: int, addr: int, size: int, write: bool,
                cycles: int) -> None:
        self._kinds.append(kind)
        self._addrs.append(addr)
        self._sizes.append(size)
        self._writes.append(write)
        self._cycles.append(cycles)

    def __len__(self) -> int:
        return len(self._kinds)

    # -------------------------------------------------------------- freezing
    def finish(self) -> RecordedStream:
        """Freeze the accumulated operations into a :class:`RecordedStream`."""
        if not HAVE_NUMPY:
            raise RuntimeError("recording requires numpy")
        return RecordedStream(
            kinds=_np.asarray(self._kinds, dtype=_np.int8),
            addrs=_np.asarray(self._addrs, dtype=_np.int64),
            sizes=_np.asarray(self._sizes, dtype=_np.int64),
            writes=_np.asarray(self._writes, dtype=bool),
            cycles=_np.asarray(self._cycles, dtype=_np.int64))

    @classmethod
    def capture(cls, ops: Iterable[Operation]) -> RecordedStream:
        """Functionally record an operation iterable (kernel generator or list)."""
        recorder = cls()
        for op in ops:
            recorder.on_op(op)
        return recorder.finish()


def stream_equal(a: RecordedStream, b: RecordedStream) -> bool:
    """True when two recordings describe the identical op stream."""
    if not HAVE_NUMPY:
        raise RuntimeError("stream comparison requires numpy")
    return (a.num_ops == b.num_ops
            and bool(_np.array_equal(a.kinds, b.kinds))
            and bool(_np.array_equal(a.addrs, b.addrs))
            and bool(_np.array_equal(a.sizes, b.sizes))
            and bool(_np.array_equal(a.writes, b.writes))
            and bool(_np.array_equal(a.cycles, b.cycles)))
