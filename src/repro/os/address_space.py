"""Process address space management (vm_areas, mmap, heap).

The host process and its hardware threads share one :class:`AddressSpace`.
The address space owns the page table; buffers handed to hardware threads
are ordinary anonymous mappings — exactly the property the paper exploits:
no marshalling, the accelerator dereferences the same pointers the software
threads use.

Mappings can be *eager* (all pages backed by frames immediately, like
``mlock``-ed memory), *lazy* (pages become resident on first touch via demand
paging), or *partial* (a given fraction resident, used by the Fig. 8
experiment).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..mem.layout import align_up
from ..vm.pagetable import PageTable, PageTableConfig
from ..vm.types import AccessType, Permissions, Translation
from .frames import FrameAllocator, ReservedAllocator


@dataclass
class VMArea:
    """One contiguous virtual mapping (the analogue of a Linux vm_area_struct)."""

    name: str
    start: int
    size: int
    perms: Permissions = Permissions()
    pinned: bool = False

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, vaddr: int, size: int = 1) -> bool:
        return self.start <= vaddr and vaddr + size <= self.end

    def overlaps(self, other: "VMArea") -> bool:
        return self.start < other.end and other.start < self.end


class AddressSpace:
    """Virtual address space of the host process (shared with HW threads)."""

    #: Default base of the mmap region (matches a typical 32-bit layout with
    #: the heap low and shared mappings high).
    MMAP_BASE = 0x4000_0000
    HEAP_BASE = 0x1000_0000

    def __init__(self, frame_allocator: FrameAllocator,
                 page_table_config: Optional[PageTableConfig] = None,
                 reserved_allocator: Optional[ReservedAllocator] = None,
                 asid: int = 1, seed: int = 1234):
        self.frames = frame_allocator
        config = page_table_config or PageTableConfig(
            page_size=frame_allocator.page_size)
        if config.page_size != frame_allocator.page_size:
            raise ValueError("page table and frame allocator disagree on page size")
        node_alloc = None
        if reserved_allocator is not None:
            node_alloc = lambda: reserved_allocator.allocate(1024)
        self.page_table = PageTable(config, node_allocator=node_alloc, asid=asid)
        self.areas: List[VMArea] = []
        self._heap_cursor = self.HEAP_BASE
        self._mmap_cursor = self.MMAP_BASE
        self._rng = random.Random(seed)
        #: MMUs (or anything with ``invalidate(vpn)``) to notify on unmap.
        self._shootdown_targets: List[object] = []

    # ------------------------------------------------------------- geometry
    @property
    def page_size(self) -> int:
        return self.page_table.config.page_size

    def register_shootdown_target(self, mmu: object) -> None:
        """Register an MMU that must see TLB shootdowns for this space."""
        self._shootdown_targets.append(mmu)

    # ----------------------------------------------------------------- mmap
    def mmap(self, size: int, name: str = "anon", writable: bool = True,
             residency: float = 1.0, pinned: bool = False,
             fixed_addr: Optional[int] = None) -> VMArea:
        """Create an anonymous mapping of ``size`` bytes.

        ``residency`` in [0, 1] controls what fraction of the pages is backed
        by a frame immediately; the rest fault in on first access.
        """
        if size <= 0:
            raise ValueError("mapping size must be positive")
        if not 0.0 <= residency <= 1.0:
            raise ValueError("residency must be within [0, 1]")
        size = align_up(size, self.page_size)
        if fixed_addr is not None:
            start = fixed_addr
            if start % self.page_size:
                raise ValueError("fixed_addr must be page aligned")
        else:
            start = self._mmap_cursor
            self._mmap_cursor = start + size + self.page_size  # guard page gap
        area = VMArea(name=name, start=start, size=size,
                      perms=Permissions(readable=True, writable=writable),
                      pinned=pinned)
        for existing in self.areas:
            if area.overlaps(existing):
                raise ValueError(f"mapping {name} overlaps {existing.name}")
        self.areas.append(area)
        self._populate(area, residency, writable, pinned)
        return area

    def malloc(self, size: int, name: str = "heap",
               writable: bool = True) -> int:
        """Heap-style allocation: returns the start virtual address.

        Heap memory is always eagerly populated (matching glibc first-touch
        after calloc in the paper's software baselines).
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        start = self._heap_cursor
        aligned = align_up(size, self.page_size)
        self._heap_cursor += aligned
        area = VMArea(name=name, start=start, size=aligned,
                      perms=Permissions(readable=True, writable=writable))
        self.areas.append(area)
        self._populate(area, residency=1.0, writable=writable, pinned=False)
        return start

    def _populate(self, area: VMArea, residency: float, writable: bool,
                  pinned: bool) -> None:
        num_pages = area.size // self.page_size
        vpns = [area.start // self.page_size + i for i in range(num_pages)]
        if residency >= 1.0:
            resident = set(vpns)
        elif residency <= 0.0:
            resident = set()
        else:
            count = int(round(residency * num_pages))
            resident = set(self._rng.sample(vpns, count)) if count else set()
        for vpn in vpns:
            if vpn in resident:
                frame = self.frames.allocate()
                self.page_table.map(vpn, frame, writable=writable,
                                    present=True, pinned=pinned)
            else:
                # Mapped but not present: first touch triggers demand paging.
                self.page_table.map(vpn, 0, writable=writable,
                                    present=False, pinned=False)

    def munmap(self, area: VMArea) -> int:
        """Tear down a mapping; returns the number of frames released."""
        if area not in self.areas:
            raise ValueError(f"{area.name} is not mapped in this address space")
        released = 0
        for vpn in self.vpns_of(area):
            entry = self.page_table.entry(vpn)
            if entry is not None and entry.present:
                self.frames.free(entry.frame)
                released += 1
            self.page_table.unmap(vpn)
            # Targeted shootdown: only this space's translations die.  On a
            # TLB shared across processes, another space's entry for the same
            # virtual page must survive its neighbour's munmap.
            for mmu in self._shootdown_targets:
                mmu.invalidate(vpn, asid=self.page_table.asid)  # type: ignore[attr-defined]
        self.areas.remove(area)
        return released

    def protect(self, area: VMArea, writable: bool) -> None:
        """mprotect: change writability of a whole area (with shootdowns)."""
        area.perms = Permissions(readable=True, writable=writable)
        for vpn in self.vpns_of(area):
            entry = self.page_table.entry(vpn)
            if entry is not None:
                self.page_table.protect(vpn, writable)
                for mmu in self._shootdown_targets:
                    mmu.invalidate(vpn, asid=self.page_table.asid)  # type: ignore[attr-defined]

    def pin(self, area: VMArea) -> int:
        """mlock: make every page of the area resident and pinned.

        Returns the number of pages that had to be faulted in.
        """
        faulted = 0
        for vpn in self.vpns_of(area):
            entry = self.page_table.entry(vpn)
            if entry is None:
                continue
            if not entry.present:
                frame = self.frames.allocate()
                self.page_table.set_present(vpn, True, frame=frame)
                faulted += 1
            self.page_table.pin(vpn, True)
        area.pinned = True
        return faulted

    # ---------------------------------------------------------------- lookup
    def area_of(self, vaddr: int) -> Optional[VMArea]:
        for area in self.areas:
            if area.contains(vaddr):
                return area
        return None

    def vpns_of(self, area: VMArea) -> List[int]:
        first = area.start // self.page_size
        return [first + i for i in range(area.size // self.page_size)]

    def translate(self, vaddr: int,
                  access: AccessType = AccessType.READ) -> Translation:
        """Functional translation used by the software baseline and tests."""
        result = self.page_table.probe(vaddr, access)
        if isinstance(result, Translation):
            return result
        raise KeyError(f"{result.fault_type.value} at {vaddr:#x}")

    # ------------------------------------------------------------------ info
    def resident_pages(self, area: Optional[VMArea] = None) -> int:
        vpns: Iterable[int]
        if area is None:
            vpns = self.page_table.mapped_vpns()
        else:
            vpns = self.vpns_of(area)
        count = 0
        for vpn in vpns:
            entry = self.page_table.entry(vpn)
            if entry is not None and entry.present:
                count += 1
        return count

    def footprint_bytes(self) -> int:
        return sum(area.size for area in self.areas)
