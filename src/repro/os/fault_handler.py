"""Demand-paging fault handler running on the host CPU.

When a hardware thread's MMU faults, the real platform raises an interrupt;
the OS driver's *delegate* thread wakes up, resolves the fault in software
(allocates a frame, updates the PTE, possibly zeroes the page) and signals
the MMU to retry.  The handler below models that path with three costs:

* ``interrupt_latency`` — fabric-to-host interrupt delivery + context switch,
* ``service_cycles`` — the software page-fault path (get_user_pages et al.),
* ``zero_fill_cycles`` — clearing a fresh anonymous page.

Faults are serviced serially (a single delegate per process, as in the
paper's driver), so concurrent faults from multiple hardware threads queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

from ..sim.component import Component
from ..sim.engine import Simulator
from ..vm.faults import FaultResumeCallback
from ..vm.types import FaultType, PageFault
from .address_space import AddressSpace
from .frames import OutOfMemoryError


@dataclass(frozen=True)
class FaultHandlerConfig:
    """Host-side fault servicing costs, in fabric clock cycles."""

    interrupt_latency: int = 400
    service_cycles: int = 1200
    zero_fill_cycles: int = 600
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if min(self.interrupt_latency, self.service_cycles,
               self.zero_fill_cycles) < 0:
            raise ValueError("fault costs must be non-negative")
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")


class DemandPagingHandler(Component):
    """OS page-fault handler shared by all hardware threads of a process."""

    def __init__(self, sim: Simulator, address_space: AddressSpace,
                 config: FaultHandlerConfig | None = None,
                 name: str = "os.fault_handler",
                 host: object = None):
        super().__init__(sim, name)
        self.config = config or FaultHandlerConfig()
        self.space = address_space
        #: The host kernel (anything with ``host_touch``).  When the host CPU
        #: shares the fabric TLB, fault service's page touches (zero-fill)
        #: probe it and their cost rides on the service latency.
        self.host = host
        self._queue: Deque[Tuple[PageFault, FaultResumeCallback]] = deque()
        self._busy = False
        self.fault_log: List[PageFault] = []

    # -------------------------------------------------------------- protocol
    def handle_fault(self, fault: PageFault, resume: FaultResumeCallback) -> None:
        """Entry point used by MMUs (implements the FaultHandler protocol)."""
        self.count("faults_received")
        self.fault_log.append(fault)
        if len(self._queue) >= self.config.max_queue_depth:
            # Back-pressure: the driver would stall the fabric; model as a
            # fatal error so misconfigured systems fail loudly.
            self.count("faults_dropped")
            resume(False)
            return
        self._queue.append((fault, resume))
        if not self._busy:
            self._busy = True
            self.schedule(self.config.interrupt_latency, self._service_next)

    # --------------------------------------------------------------- service
    def _service_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        fault, resume = self._queue.popleft()
        started = self.now

        resolved, extra_cycles = self._resolve(fault)
        total = self.config.service_cycles + extra_cycles

        def finish() -> None:
            self.sample("service_latency", self.now - started)
            if resolved:
                self.count("faults_resolved")
            else:
                self.count("faults_fatal")
            resume(resolved)
            # Service the next queued fault (interrupt already taken).
            self.schedule(0, self._service_next)

        self.schedule(total, finish)

    def _resolve(self, fault: PageFault) -> Tuple[bool, int]:
        """Fix up the page table; returns (resolved, extra service cycles)."""
        page_size = self.space.page_size
        vpn = fault.vaddr // page_size

        if fault.fault_type is FaultType.NOT_MAPPED:
            # Segfault as seen from a hardware thread.
            return False, 0

        if fault.fault_type is FaultType.PROTECTION:
            area = self.space.area_of(fault.vaddr)
            if area is None or not area.perms.writable:
                return False, 0
            # Copy-on-write style upgrade: the area allows writes, the PTE
            # was read-only; upgrade it.  A *minor* fault in OS terms: no
            # frame is allocated, only the PTE changes.
            self.space.page_table.protect(vpn, writable=True)
            self.count("minor_faults")
            return True, 0

        # NOT_PRESENT: demand paging of an anonymous page.
        entry = self.space.page_table.entry(vpn)
        if entry is None:
            return False, 0
        try:
            frame = self.space.frames.allocate()
        except OutOfMemoryError:
            self.count("oom")
            return False, 0
        self.space.page_table.set_present(vpn, True, frame=frame)
        self.count("pages_faulted_in")
        # A *major* fault: a fresh frame was allocated and zero-filled.  The
        # per-epoch telemetry bus attributes these to the process whose
        # handler this is (handlers are per-process components).
        self.count("major_faults")
        extra = self.config.zero_fill_cycles
        if self.host is not None:
            # Zero-filling the fresh page is a host-CPU write: when the host
            # shares the fabric TLB it probes (and warms) the very entry the
            # faulting hardware thread is about to retry.
            extra += self.host.host_touch(self.space, vpn,  # type: ignore[attr-defined]
                                          writable=True)
        return True, extra

    # ------------------------------------------------------------------ info
    @property
    def pending(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    @property
    def faults_resolved(self) -> int:
        return self.stats.counter("faults_resolved").value
