"""Operating-system substrate: frames, address spaces, kernel, fault handling."""

from .address_space import AddressSpace, VMArea
from .delegate import DelegateThread, ThreadArguments, ThreadCompletion
from .fault_handler import DemandPagingHandler, FaultHandlerConfig
from .frames import (
    FrameAllocator,
    OutOfMemoryError,
    ReservedAllocator,
    make_default_allocators,
)
from .kernel import HostKernel, KernelConfig
from .scheduler import RoundRobinScheduler, ScheduledThread, SchedulerConfig
from .telemetry import EpochStats, ProcessEpoch, TelemetryBus, TelemetryTrace

__all__ = [
    "AddressSpace",
    "EpochStats",
    "ProcessEpoch",
    "TelemetryBus",
    "TelemetryTrace",
    "DelegateThread",
    "DemandPagingHandler",
    "FaultHandlerConfig",
    "FrameAllocator",
    "HostKernel",
    "KernelConfig",
    "OutOfMemoryError",
    "ReservedAllocator",
    "RoundRobinScheduler",
    "ScheduledThread",
    "SchedulerConfig",
    "ThreadArguments",
    "ThreadCompletion",
    "VMArea",
    "make_default_allocators",
]
