"""OS scheduling: quantum-based time slicing with pluggable policies.

Two consumers share this module:

* the **software baseline** runs kernels as POSIX threads on the host cores —
  :class:`RoundRobinScheduler` models ``num_cores`` cores with round-robin
  time slicing of per-thread *demand* (remaining execution cycles), and
* the **multi-process contention subsystem**
  (:mod:`repro.workloads.multiprocess`) time-slices N process address spaces
  onto one accelerator.  Which process runs when — and for how long — is a
  *policy* decision, so policies are pluggable: they register under a name
  (:func:`register_policy`) and :func:`get_policy` resolves them for
  :func:`~repro.workloads.multiprocess.slice_plan`, mirroring the
  execution-model registry.

All of it is an analytic model — it consumes per-thread total demand values
(:class:`ThreadDemand`) rather than simulating instruction streams — which is
all the consumers need: the software baseline reports end-to-end cycles, and
the multi-process planner maps the cycle timeline back onto operation lists.

Built-in policies:

* ``round-robin`` — equal quanta, cyclic order (the classic time slicer).
* ``weighted-fair`` — quanta scaled by each thread's ``weight`` relative to
  the mean, approximating weighted fair queueing: per rotation every thread
  receives CPU proportional to its weight.
* ``fault-aware`` — miss-driven: quanta shrink with a thread's translation
  ``pressure`` (distinct pages per kilocycle of demand).  A process that
  sweeps many pages thrashes a shared fabric TLB and faults more; bounding
  its slice bounds the damage to its neighbours' resident translations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class SchedulerConfig:
    num_cores: int = 2
    quantum: int = 100_000
    context_switch_cycles: int = 1_200

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.context_switch_cycles < 0:
            raise ValueError("context_switch_cycles must be non-negative")


@dataclass(frozen=True)
class ThreadDemand:
    """What a policy knows about one schedulable thread/process.

    ``demand_cycles`` is the total execution demand; ``weight`` the relative
    CPU share a weighted policy should grant; ``pressure`` the estimated
    translation pressure (distinct pages touched per kilocycle of demand),
    which miss-driven policies use to shorten the slices of TLB-thrashing
    threads.
    """

    name: str
    demand_cycles: int
    weight: float = 1.0
    pressure: float = 0.0

    def __post_init__(self) -> None:
        if self.demand_cycles < 0:
            raise ValueError("demand must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.pressure < 0:
            raise ValueError("pressure must be non-negative")


#: Schedulers accept bare ``(name, demand_cycles)`` pairs or full demands.
DemandLike = Union[ThreadDemand, Tuple[str, int]]


def _as_demand(item: DemandLike) -> ThreadDemand:
    if isinstance(item, ThreadDemand):
        return item
    name, cycles = item
    return ThreadDemand(name=name, demand_cycles=cycles)


@dataclass
class ScheduledThread:
    name: str
    demand_cycles: int
    remaining: int = field(init=False)
    finish_time: Optional[int] = field(init=False, default=None)
    context_switches: int = field(init=False, default=0)
    #: Earliest time this thread may run again (it cannot occupy two cores or
    #: start its next quantum before the previous one ended).
    available_at: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.demand_cycles < 0:
            raise ValueError("demand must be non-negative")
        self.remaining = self.demand_cycles


@dataclass(frozen=True)
class TimeSlice:
    """One contiguous interval a thread owns a core (context-switch excluded)."""

    thread: str
    core: int
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


# ---------------------------------------------------------------------------
# The quantum-scheduling engine all policies share
# ---------------------------------------------------------------------------
def _quantum_schedule(demands: Sequence[ThreadDemand], config: SchedulerConfig,
                      quantum_for: Callable[[ThreadDemand], int]
                      ) -> Tuple[Dict[str, ScheduledThread], List[TimeSlice]]:
    """Cyclic quantum scheduling with per-thread quanta.

    The engine is the classic multi-core round-robin loop; policies
    differentiate purely through ``quantum_for`` (how long each thread may
    own a core per rotation), which keeps every policy deterministic and
    work-conserving by construction.
    """
    threads = [ScheduledThread(d.name, d.demand_cycles) for d in demands]
    by_name = {d.name: d for d in demands}
    if len(by_name) != len(demands):
        raise ValueError("duplicate thread names in demand list")
    if not threads:
        return {}, []

    cfg = config
    ready: List[ScheduledThread] = [t for t in threads if t.remaining > 0]
    for t in threads:
        if t.remaining == 0:
            t.finish_time = 0
    core_free = [0] * cfg.num_cores
    index = 0
    slices: List[TimeSlice] = []

    while ready:
        # Pick the earliest-free core.
        core = min(range(cfg.num_cores), key=lambda c: core_free[c])
        thread = ready[index % len(ready)]
        start = max(core_free[core], thread.available_at)
        run_for = min(max(1, quantum_for(by_name[thread.name])),
                      thread.remaining)
        end = start + run_for
        slices.append(TimeSlice(thread=thread.name, core=core,
                                start=start, end=end))
        thread.remaining -= run_for
        if thread.remaining == 0:
            thread.finish_time = end
            ready.remove(thread)
            if ready:
                index %= len(ready)
        else:
            thread.context_switches += 1
            end += cfg.context_switch_cycles
            index += 1
        thread.available_at = end
        core_free[core] = end

    return {t.name: t for t in threads}, slices


# ---------------------------------------------------------------------------
# Policy registry
# ---------------------------------------------------------------------------
class UnknownPolicyError(KeyError):
    """Raised when a scheduler-policy name is not in the registry."""


#: Policy name -> policy class.  Like the execution-model registry, anything
#: registered here is immediately usable by ``MultiProcessSpec.policy`` and
#: ``slice_plan`` without touching this package.
SCHEDULER_POLICIES: Dict[str, type] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator adding a scheduling policy to the registry."""

    def decorate(cls: type) -> type:
        if name in SCHEDULER_POLICIES:
            raise ValueError(f"scheduler policy {name!r} is already registered")
        cls.name = name
        SCHEDULER_POLICIES[name] = cls
        return cls

    return decorate


def get_policy(name: str) -> "SchedulingPolicy":
    """Instantiate the policy registered under ``name``."""
    try:
        factory = SCHEDULER_POLICIES[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown scheduler policy {name!r}; "
            f"registered: {', '.join(registered_policies())}") from None
    return factory()


def registered_policies() -> List[str]:
    return sorted(SCHEDULER_POLICIES)


class SchedulingPolicy:
    """Base scheduling policy: equal quanta, cyclic order.

    Subclasses normally override only :meth:`quanta` — the per-rotation cycle
    budget per thread — and inherit the engine.  A policy may instead replace
    :meth:`plan` wholesale (any ``List[TimeSlice]`` covering each thread's
    demand exactly, without overlap per core, is a valid plan).
    """

    name = "policy"

    def quanta(self, demands: Sequence[ThreadDemand],
               config: SchedulerConfig) -> Dict[str, int]:
        """Per-thread quantum for one rotation (>= 1 cycle each)."""
        return {d.name: config.quantum for d in demands}

    # ------------------------------------------------------------- interface
    def schedule(self, demands: Sequence[DemandLike],
                 config: SchedulerConfig) -> Dict[str, ScheduledThread]:
        normalised = [_as_demand(d) for d in demands]
        if not normalised:        # nothing to schedule; skip quanta() so
            return {}             # mean-based policies need no empty guard
        quanta = self.quanta(normalised, config)
        threads, _ = _quantum_schedule(normalised, config,
                                       lambda d: quanta[d.name])
        return threads

    def plan(self, demands: Sequence[DemandLike],
             config: SchedulerConfig) -> List[TimeSlice]:
        """The execution slices, in start order (the OS's time-slicing plan)."""
        normalised = [_as_demand(d) for d in demands]
        if not normalised:
            return []
        quanta = self.quanta(normalised, config)
        _, slices = _quantum_schedule(normalised, config,
                                      lambda d: quanta[d.name])
        return sorted(slices, key=lambda s: (s.start, s.core))


@register_policy("round-robin")
class RoundRobinPolicy(SchedulingPolicy):
    """Equal quanta in cyclic order — the classic time slicer."""


@register_policy("weighted-fair")
class WeightedFairPolicy(SchedulingPolicy):
    """Quanta proportional to thread weight (weighted fair queueing).

    Per rotation a thread of weight ``w`` owns the core for
    ``quantum * w / mean(weights)`` cycles, so relative CPU shares follow the
    weights while the rotation period stays close to ``quantum * n``.
    """

    def quanta(self, demands: Sequence[ThreadDemand],
               config: SchedulerConfig) -> Dict[str, int]:
        mean = sum(d.weight for d in demands) / len(demands)
        return {d.name: max(1, round(config.quantum * d.weight / mean))
                for d in demands}


@register_policy("fault-aware")
class FaultAwarePolicy(SchedulingPolicy):
    """Miss-driven slicing: TLB-thrashing threads get shorter quanta.

    A thread's quantum is scaled by ``(1 + mean_pressure) / (1 + pressure)``:
    threads sweeping many distinct pages per cycle (high translation
    pressure — they miss and fault the most) are rotated out sooner, so their
    working sets displace less of their neighbours' shared-TLB residency.
    With uniform pressure this degenerates to round-robin.
    """

    def quanta(self, demands: Sequence[ThreadDemand],
               config: SchedulerConfig) -> Dict[str, int]:
        mean = sum(d.pressure for d in demands) / len(demands)
        return {d.name: max(1, round(config.quantum * (1.0 + mean)
                                     / (1.0 + d.pressure)))
                for d in demands}


# ---------------------------------------------------------------------------
# The software baseline's scheduler (round-robin, tuple-based API)
# ---------------------------------------------------------------------------
class RoundRobinScheduler:
    """Analytic multi-core round-robin scheduler.

    Thin façade over :class:`RoundRobinPolicy` kept for the software CPU
    baseline and everything else that predates the policy registry.
    """

    def __init__(self, config: SchedulerConfig | None = None):
        self.config = config or SchedulerConfig()
        self._policy = RoundRobinPolicy()

    def run(self, demands: Sequence[DemandLike]) -> Dict[str, ScheduledThread]:
        """Schedule threads with the given (name, demand_cycles) pairs.

        Returns per-thread records including finish times; the makespan is
        ``max(t.finish_time)``.
        """
        return self._policy.schedule(demands, self.config)

    def timeline(self, demands: Sequence[DemandLike]) -> List[TimeSlice]:
        """The execution slices, in start order.

        This is the OS's time-slicing *plan*: who owns which core when.  The
        multi-process workload family replays the single-accelerator
        (``num_cores=1``) plan against the simulated fabric, switching the
        MMU's active address space at every slice boundary.
        """
        return self._policy.plan(demands, self.config)

    def makespan(self, demands: Sequence[DemandLike]) -> int:
        """Total cycles until every thread completes."""
        result = self.run(demands)
        if not result:
            return 0
        return max(t.finish_time or 0 for t in result.values())
