"""OS scheduling: quantum-based time slicing with pluggable policies.

Two consumers share this module:

* the **software baseline** runs kernels as POSIX threads on the host cores —
  :class:`RoundRobinScheduler` models ``num_cores`` cores with round-robin
  time slicing of per-thread *demand* (remaining execution cycles), and
* the **multi-process contention subsystem**
  (:mod:`repro.workloads.multiprocess`) time-slices N process address spaces
  onto one accelerator.  Which process runs when — and for how long — is a
  *policy* decision, so policies are pluggable: they register under a name
  (:func:`register_policy`) and :func:`get_policy` resolves them for
  :func:`~repro.workloads.multiprocess.slice_plan`, mirroring the
  execution-model registry.

All of it is an analytic model — it consumes per-thread total demand values
(:class:`ThreadDemand`) rather than simulating instruction streams — which is
all the consumers need: the software baseline reports end-to-end cycles, and
the multi-process planner maps the cycle timeline back onto operation lists.

Built-in policies:

* ``round-robin`` — equal quanta, cyclic order (the classic time slicer).
* ``weighted-fair`` — quanta scaled by each thread's ``weight`` relative to
  the mean, approximating weighted fair queueing: per rotation every thread
  receives CPU proportional to its weight.
* ``fault-aware`` — miss-driven: quanta shrink with a thread's translation
  ``pressure`` (distinct pages per kilocycle of demand).  A process that
  sweeps many pages thrashes a shared fabric TLB and faults more; bounding
  its slice bounds the damage to its neighbours' resident translations.

**Adaptive (online) policies** additionally implement the
:meth:`SchedulingPolicy.observe` feedback hook: the multi-process harness
runs them epoch by epoch, feeding each closed epoch's measured telemetry
(:class:`~repro.os.telemetry.EpochStats`) back in, and the returned quanta
replace the static plan for the next epoch.  Built-ins:

* ``adaptive-fault`` — the online counterpart of ``fault-aware``: quanta
  shrink for processes whose *measured* (smoothed) TLB miss rate is high or
  rising, instead of trusting a static distinct-pages estimate.
* ``miss-fair`` — equalises measured misses-per-quantum: each process's next
  quantum is scaled so every slice suffers roughly the same number of misses,
  bounding how much TLB damage any one slice can do.
* ``host-aware`` — host-priority arbitration: while host-CPU fabric-TLB
  refill traffic is hot, the accelerator processes responsible for it (those
  driving fault-service host touches) are deprioritised so the host's
  refills stop being evicted before they are used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from .telemetry import EpochStats


@dataclass(frozen=True)
class SchedulerConfig:
    num_cores: int = 2
    quantum: int = 100_000
    context_switch_cycles: int = 1_200

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.context_switch_cycles < 0:
            raise ValueError("context_switch_cycles must be non-negative")


@dataclass(frozen=True)
class ThreadDemand:
    """What a policy knows about one schedulable thread/process.

    ``demand_cycles`` is the total execution demand; ``weight`` the relative
    CPU share a weighted policy should grant; ``pressure`` the estimated
    translation pressure (distinct pages touched per kilocycle of demand),
    which miss-driven policies use to shorten the slices of TLB-thrashing
    threads.
    """

    name: str
    demand_cycles: int
    weight: float = 1.0
    pressure: float = 0.0

    def __post_init__(self) -> None:
        if self.demand_cycles < 0:
            raise ValueError("demand must be non-negative")
        if self.weight <= 0 or not math.isfinite(self.weight):
            raise ValueError("weight must be positive and finite")
        if self.pressure < 0 or not math.isfinite(self.pressure):
            raise ValueError("pressure must be non-negative and finite")


#: Schedulers accept bare ``(name, demand_cycles)`` pairs or full demands.
DemandLike = Union[ThreadDemand, Tuple[str, int]]


def _as_demand(item: DemandLike) -> ThreadDemand:
    if isinstance(item, ThreadDemand):
        return item
    name, cycles = item
    return ThreadDemand(name=name, demand_cycles=cycles)


@dataclass
class ScheduledThread:
    name: str
    demand_cycles: int
    remaining: int = field(init=False)
    finish_time: Optional[int] = field(init=False, default=None)
    context_switches: int = field(init=False, default=0)
    #: Earliest time this thread may run again (it cannot occupy two cores or
    #: start its next quantum before the previous one ended).
    available_at: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.demand_cycles < 0:
            raise ValueError("demand must be non-negative")
        self.remaining = self.demand_cycles


@dataclass(frozen=True)
class TimeSlice:
    """One contiguous interval a thread owns a core (context-switch excluded)."""

    thread: str
    core: int
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


# ---------------------------------------------------------------------------
# The quantum-scheduling engine all policies share
# ---------------------------------------------------------------------------
def _quantum_schedule(demands: Sequence[ThreadDemand], config: SchedulerConfig,
                      quantum_for: Callable[[ThreadDemand], int]
                      ) -> Tuple[Dict[str, ScheduledThread], List[TimeSlice]]:
    """Cyclic quantum scheduling with per-thread quanta.

    The engine is the classic multi-core round-robin loop; policies
    differentiate purely through ``quantum_for`` (how long each thread may
    own a core per rotation), which keeps every policy deterministic and
    work-conserving by construction.
    """
    threads = [ScheduledThread(d.name, d.demand_cycles) for d in demands]
    by_name = {d.name: d for d in demands}
    if len(by_name) != len(demands):
        raise ValueError("duplicate thread names in demand list")
    if not threads:
        return {}, []

    cfg = config
    ready: List[ScheduledThread] = [t for t in threads if t.remaining > 0]
    for t in threads:
        if t.remaining == 0:
            t.finish_time = 0
    core_free = [0] * cfg.num_cores
    index = 0
    slices: List[TimeSlice] = []

    while ready:
        # Pick the earliest-free core.
        core = min(range(cfg.num_cores), key=lambda c: core_free[c])
        thread = ready[index % len(ready)]
        start = max(core_free[core], thread.available_at)
        run_for = min(max(1, quantum_for(by_name[thread.name])),
                      thread.remaining)
        end = start + run_for
        slices.append(TimeSlice(thread=thread.name, core=core,
                                start=start, end=end))
        thread.remaining -= run_for
        if thread.remaining == 0:
            thread.finish_time = end
            ready.remove(thread)
            if ready:
                index %= len(ready)
        else:
            thread.context_switches += 1
            end += cfg.context_switch_cycles
            index += 1
        thread.available_at = end
        core_free[core] = end

    return {t.name: t for t in threads}, slices


# ---------------------------------------------------------------------------
# Policy registry
# ---------------------------------------------------------------------------
class UnknownPolicyError(KeyError):
    """Raised when a scheduler-policy name is not in the registry."""


#: Policy name -> policy class.  Like the execution-model registry, anything
#: registered here is immediately usable by ``MultiProcessSpec.policy`` and
#: ``slice_plan`` without touching this package.
SCHEDULER_POLICIES: Dict[str, type] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator adding a scheduling policy to the registry."""

    def decorate(cls: type) -> type:
        if name in SCHEDULER_POLICIES:
            raise ValueError(f"scheduler policy {name!r} is already registered")
        cls.name = name
        SCHEDULER_POLICIES[name] = cls
        return cls

    return decorate


def get_policy(name: str) -> "SchedulingPolicy":
    """Instantiate the policy registered under ``name``."""
    try:
        factory = SCHEDULER_POLICIES[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown scheduler policy {name!r}; "
            f"registered: {', '.join(registered_policies())}") from None
    return factory()


def registered_policies() -> List[str]:
    return sorted(SCHEDULER_POLICIES)


class SchedulingPolicy:
    """Base scheduling policy: equal quanta, cyclic order.

    Subclasses normally override only :meth:`quanta` — the per-rotation cycle
    budget per thread — and inherit the engine.  A policy may instead replace
    :meth:`plan` wholesale (any ``List[TimeSlice]`` covering each thread's
    demand exactly, without overlap per core, is a valid plan).

    **Online feedback.**  Policies with ``adaptive = True`` are executed
    epoch by epoch instead of from a precomputed plan: after every epoch the
    multi-process harness calls :meth:`observe` with the epoch's measured
    telemetry, and the returned ``{thread name: quantum}`` mapping replaces
    the quanta for the next epoch (``None`` keeps the current ones).  The
    initial epoch always uses :meth:`quanta` — adaptive policies start from
    the same static estimates a non-adaptive policy would use, then steer by
    measurement.
    """

    name = "policy"
    #: True -> the multi-process harness runs this policy epoch-wise and
    #: feeds measured telemetry back through :meth:`observe`.
    adaptive = False

    def quanta(self, demands: Sequence[ThreadDemand],
               config: SchedulerConfig) -> Dict[str, int]:
        """Per-thread quantum for one rotation (>= 1 cycle each)."""
        return {d.name: config.quantum for d in demands}

    def observe(self, epoch: "EpochStats") -> Optional[Dict[str, int]]:
        """Feedback hook: measured epoch telemetry in, next quanta out.

        Static policies ignore feedback (return ``None`` = keep quanta).
        Adaptive subclasses override this; returned values are clamped to be
        positive by the caller, so policies may compute freely.
        """
        return None

    # ------------------------------------------------------------- interface
    def schedule(self, demands: Sequence[DemandLike],
                 config: SchedulerConfig) -> Dict[str, ScheduledThread]:
        normalised = [_as_demand(d) for d in demands]
        if not normalised:        # nothing to schedule; skip quanta() so
            return {}             # mean-based policies need no empty guard
        quanta = self.quanta(normalised, config)
        threads, _ = _quantum_schedule(normalised, config,
                                       lambda d: quanta[d.name])
        return threads

    def plan(self, demands: Sequence[DemandLike],
             config: SchedulerConfig) -> List[TimeSlice]:
        """The execution slices, in start order (the OS's time-slicing plan)."""
        normalised = [_as_demand(d) for d in demands]
        if not normalised:
            return []
        quanta = self.quanta(normalised, config)
        _, slices = _quantum_schedule(normalised, config,
                                      lambda d: quanta[d.name])
        return sorted(slices, key=lambda s: (s.start, s.core))


@register_policy("round-robin")
class RoundRobinPolicy(SchedulingPolicy):
    """Equal quanta in cyclic order — the classic time slicer."""


@register_policy("weighted-fair")
class WeightedFairPolicy(SchedulingPolicy):
    """Quanta proportional to thread weight (weighted fair queueing).

    Per rotation a thread of weight ``w`` owns the core for
    ``quantum * w / mean(weights)`` cycles, so relative CPU shares follow the
    weights while the rotation period stays close to ``quantum * n``.
    """

    def quanta(self, demands: Sequence[ThreadDemand],
               config: SchedulerConfig) -> Dict[str, int]:
        if not demands:
            return {}
        mean = sum(d.weight for d in demands) / len(demands)
        return {d.name: max(1, round(config.quantum * d.weight / mean))
                for d in demands}


@register_policy("fault-aware")
class FaultAwarePolicy(SchedulingPolicy):
    """Miss-driven slicing: TLB-thrashing threads get shorter quanta.

    A thread's quantum is scaled by ``(1 + mean_pressure) / (1 + pressure)``:
    threads sweeping many distinct pages per cycle (high translation
    pressure — they miss and fault the most) are rotated out sooner, so their
    working sets displace less of their neighbours' shared-TLB residency.
    With uniform pressure this degenerates to round-robin.
    """

    def quanta(self, demands: Sequence[ThreadDemand],
               config: SchedulerConfig) -> Dict[str, int]:
        if not demands:
            return {}
        mean = sum(d.pressure for d in demands) / len(demands)
        return {d.name: max(1, round(config.quantum * (1.0 + mean)
                                     / (1.0 + d.pressure)))
                for d in demands}


# ---------------------------------------------------------------------------
# Adaptive (online feedback) policies
# ---------------------------------------------------------------------------
class AdaptiveSchedulingPolicy(SchedulingPolicy):
    """Base for policies replanned every epoch from measured telemetry.

    Subclasses implement :meth:`observe` in terms of the epoch's
    :class:`~repro.os.telemetry.ProcessEpoch` samples and use :meth:`clamp`
    so quanta stay within ``[base/MIN_DIVISOR, base*MAX_FACTOR]``: the floor
    guarantees forward progress (and bounds the context-switch overhead a
    policy can self-inflict), the ceiling stops any process monopolising the
    accelerator on one epoch's evidence.
    """

    adaptive = True
    MIN_DIVISOR = 8
    MAX_FACTOR = 4

    def clamp(self, base_quantum: int, value: float) -> int:
        floor = max(1, base_quantum // self.MIN_DIVISOR)
        ceiling = max(floor, base_quantum * self.MAX_FACTOR)
        return int(min(ceiling, max(floor, round(value))))

    @staticmethod
    def runnable(epoch: "EpochStats"):
        """The processes the next epoch will actually schedule.

        Finished processes still appear in the epoch sample (their counters
        must total correctly) but with zero rates; folding them into a
        fairness mean would throttle the survivors against phantom
        competitors — e.g. the last runnable process of a run dragged to the
        clamp floor by its finished neighbours' zero miss rates.
        """
        return [p for p in epoch.processes if p.remaining_ops > 0]


@register_policy("adaptive-fault")
class AdaptiveFaultPolicy(AdaptiveSchedulingPolicy):
    """Online fault-aware: shrink quanta where *measured* miss rates rise.

    Keeps an exponentially-smoothed miss rate (misses per kilocycle of
    measured runtime) per process and scales each next quantum by
    ``(1 + mean_rate) / (1 + rate)`` — the same shape as the static
    ``fault-aware`` policy, but driven by the TLB's actual behaviour: a
    process that starts thrashing mid-run is throttled within an epoch or
    two, and one whose phase ends gets its slice back.
    """

    #: Weight of the newest epoch in the smoothed rate (rest is history).
    SMOOTHING = 0.5

    def __init__(self) -> None:
        self._rates: Dict[str, float] = {}

    def observe(self, epoch: "EpochStats") -> Optional[Dict[str, int]]:
        runnable = self.runnable(epoch)
        if not runnable:
            return None
        for sample in runnable:
            previous = self._rates.get(sample.process)
            rate = sample.miss_rate
            self._rates[sample.process] = (
                rate if previous is None
                else self.SMOOTHING * rate + (1.0 - self.SMOOTHING) * previous)
        mean = sum(self._rates[p.process] for p in runnable) / len(runnable)
        return {p.process: self.clamp(
                    epoch.base_quantum,
                    epoch.base_quantum * (1.0 + mean)
                    / (1.0 + self._rates[p.process]))
                for p in runnable}


@register_policy("miss-fair")
class MissFairPolicy(AdaptiveSchedulingPolicy):
    """Equalise measured misses-per-quantum across processes.

    Each process's miss *density* (misses per granted quantum cycle) is
    measured; the next quantum is ``base * mean_density / density``, so a
    process missing twice as densely as the mean runs half as long per
    rotation — every slice then does a comparable amount of TLB damage,
    which is fairness in the currency that actually matters for a shared
    fabric TLB.  Epochs with no misses anywhere leave the plan untouched.
    """

    def observe(self, epoch: "EpochStats") -> Optional[Dict[str, int]]:
        runnable = self.runnable(epoch)
        if not runnable:
            return None
        densities = {p.process: p.misses_per_quantum for p in runnable}
        mean = sum(densities.values()) / len(densities)
        if mean <= 0.0:
            return None
        return {p.process: self.clamp(
                    epoch.base_quantum,
                    epoch.base_quantum * mean
                    / max(densities[p.process], mean / self.MAX_FACTOR))
                for p in runnable}


@register_policy("host-aware")
class HostAwarePolicy(AdaptiveSchedulingPolicy):
    """Deprioritise accelerator processes while host refill traffic is hot.

    When the host CPU shares the fabric TLB, its pinning/fault-service
    refills contend with the accelerator's translations.  While the measured
    host refill rate is above ``HOT_REFILLS_PER_KILOCYCLE``, processes are
    penalised in proportion to the host refill traffic their slices caused
    (fault-heavy processes drive host fault service): their quanta shrink by
    up to ``1 + PENALTY``.  When the host goes quiet the policy returns to
    equal quanta — host-priority arbitration, expressed as scheduling.
    """

    HOT_REFILLS_PER_KILOCYCLE = 0.05
    PENALTY = 3.0

    def observe(self, epoch: "EpochStats") -> Optional[Dict[str, int]]:
        runnable = self.runnable(epoch)
        if not runnable:
            return None
        if epoch.host_refill_rate <= self.HOT_REFILLS_PER_KILOCYCLE:
            return {p.process: epoch.base_quantum for p in runnable}
        total = epoch.host_tlb_refills
        return {p.process: self.clamp(
                    epoch.base_quantum,
                    epoch.base_quantum
                    / (1.0 + self.PENALTY * p.host_tlb_refills / total))
                for p in runnable}


#: Names of the built-in adaptive policies (telemetry-driven, epoch-wise).
ADAPTIVE_POLICIES: Tuple[str, ...] = ("adaptive-fault", "miss-fair",
                                      "host-aware")


# ---------------------------------------------------------------------------
# The software baseline's scheduler (round-robin, tuple-based API)
# ---------------------------------------------------------------------------
class RoundRobinScheduler:
    """Analytic multi-core round-robin scheduler.

    Thin façade over :class:`RoundRobinPolicy` kept for the software CPU
    baseline and everything else that predates the policy registry.
    """

    def __init__(self, config: SchedulerConfig | None = None):
        self.config = config or SchedulerConfig()
        self._policy = RoundRobinPolicy()

    def run(self, demands: Sequence[DemandLike]) -> Dict[str, ScheduledThread]:
        """Schedule threads with the given (name, demand_cycles) pairs.

        Returns per-thread records including finish times; the makespan is
        ``max(t.finish_time)``.
        """
        return self._policy.schedule(demands, self.config)

    def timeline(self, demands: Sequence[DemandLike]) -> List[TimeSlice]:
        """The execution slices, in start order.

        This is the OS's time-slicing *plan*: who owns which core when.  The
        multi-process workload family replays the single-accelerator
        (``num_cores=1``) plan against the simulated fabric, switching the
        MMU's active address space at every slice boundary.
        """
        return self._policy.plan(demands, self.config)

    def makespan(self, demands: Sequence[DemandLike]) -> int:
        """Total cycles until every thread completes."""
        result = self.run(demands)
        if not result:
            return 0
        return max(t.finish_time or 0 for t in result.values())
