"""Software-thread scheduler for the host CPU baseline.

The software baseline runs the same kernels as POSIX threads on the host
cores.  The scheduler models ``num_cores`` cores with round-robin time
slicing: each runnable thread owns a core for up to ``quantum`` cycles of
*demand* (its remaining execution cycles), then rotates.  This is an analytic
model — it consumes per-thread total demand values rather than simulating
instruction streams — which is all the software baseline needs to report
end-to-end cycles for single- and multi-threaded runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SchedulerConfig:
    num_cores: int = 2
    quantum: int = 100_000
    context_switch_cycles: int = 1_200

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.context_switch_cycles < 0:
            raise ValueError("context_switch_cycles must be non-negative")


@dataclass
class ScheduledThread:
    name: str
    demand_cycles: int
    remaining: int = field(init=False)
    finish_time: Optional[int] = field(init=False, default=None)
    context_switches: int = field(init=False, default=0)
    #: Earliest time this thread may run again (it cannot occupy two cores or
    #: start its next quantum before the previous one ended).
    available_at: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.demand_cycles < 0:
            raise ValueError("demand must be non-negative")
        self.remaining = self.demand_cycles


@dataclass(frozen=True)
class TimeSlice:
    """One contiguous interval a thread owns a core (context-switch excluded)."""

    thread: str
    core: int
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start


class RoundRobinScheduler:
    """Analytic multi-core round-robin scheduler."""

    def __init__(self, config: SchedulerConfig | None = None):
        self.config = config or SchedulerConfig()

    def run(self, demands: Sequence[Tuple[str, int]]) -> Dict[str, ScheduledThread]:
        """Schedule threads with the given (name, demand_cycles) pairs.

        Returns per-thread records including finish times; the makespan is
        ``max(t.finish_time)``.
        """
        threads, _ = self._schedule(demands)
        return threads

    def timeline(self, demands: Sequence[Tuple[str, int]]) -> List[TimeSlice]:
        """The execution slices, in start order.

        This is the OS's time-slicing *plan*: who owns which core when.  The
        multi-process workload family replays the single-accelerator
        (``num_cores=1``) plan against the simulated fabric, switching the
        MMU's active address space at every slice boundary.
        """
        _, slices = self._schedule(demands)
        return sorted(slices, key=lambda s: (s.start, s.core))

    def _schedule(self, demands: Sequence[Tuple[str, int]]
                  ) -> Tuple[Dict[str, ScheduledThread], List[TimeSlice]]:
        threads = [ScheduledThread(name, demand) for name, demand in demands]
        if not threads:
            return {}, []

        cfg = self.config
        ready: List[ScheduledThread] = [t for t in threads if t.remaining > 0]
        for t in threads:
            if t.remaining == 0:
                t.finish_time = 0
        core_free = [0] * cfg.num_cores
        index = 0
        slices: List[TimeSlice] = []

        while ready:
            # Pick the earliest-free core.
            core = min(range(cfg.num_cores), key=lambda c: core_free[c])
            thread = ready[index % len(ready)]
            start = max(core_free[core], thread.available_at)
            run_for = min(cfg.quantum, thread.remaining)
            end = start + run_for
            slices.append(TimeSlice(thread=thread.name, core=core,
                                    start=start, end=end))
            thread.remaining -= run_for
            if thread.remaining == 0:
                thread.finish_time = end
                ready.remove(thread)
                if ready:
                    index %= len(ready)
            else:
                thread.context_switches += 1
                end += cfg.context_switch_cycles
                index += 1
            thread.available_at = end
            core_free[core] = end

        return {t.name: t for t in threads}, slices

    def makespan(self, demands: Sequence[Tuple[str, int]]) -> int:
        """Total cycles until every thread completes."""
        result = self.run(demands)
        if not result:
            return 0
        return max(t.finish_time or 0 for t in result.values())
