"""Delegate threads: the OS-side proxy of each hardware thread.

In the paper's runtime every hardware thread is represented inside the host
process by a *delegate* software thread.  The delegate performs the POSIX-like
lifecycle on the hardware thread's behalf (create, pass arguments, start,
join) and is the software endpoint of the fault-delegation path.  The model
charges the corresponding driver costs before/after the fabric execution so
the end-to-end numbers include software overhead, as the paper's do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.component import Component
from ..sim.engine import Simulator
from .address_space import AddressSpace, VMArea
from .kernel import HostKernel


@dataclass
class ThreadArguments:
    """Argument block passed to a hardware thread (plain virtual pointers)."""

    pointers: Dict[str, int] = field(default_factory=dict)
    scalars: Dict[str, int] = field(default_factory=dict)

    def pointer(self, name: str) -> int:
        return self.pointers[name]

    def scalar(self, name: str) -> int:
        return self.scalars[name]


@dataclass
class ThreadCompletion:
    """Record of a hardware thread's lifecycle as seen by its delegate."""

    name: str
    created_at: int
    started_at: int
    finished_at: Optional[int] = None
    joined_at: Optional[int] = None

    @property
    def fabric_cycles(self) -> Optional[int]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def wall_cycles(self) -> Optional[int]:
        if self.joined_at is None:
            return None
        return self.joined_at - self.created_at


class DelegateThread(Component):
    """Software proxy that owns one hardware thread's lifecycle."""

    def __init__(self, sim: Simulator, kernel: HostKernel, space: AddressSpace,
                 thread_name: str, name: Optional[str] = None):
        super().__init__(sim, name or f"delegate.{thread_name}")
        self.kernel = kernel
        self.space = space
        self.thread_name = thread_name
        self.completion: Optional[ThreadCompletion] = None
        self._on_joined: List[Callable[[ThreadCompletion], None]] = []

    # -------------------------------------------------------------- lifecycle
    def create_and_start(self, start_fabric: Callable[[Callable[[], None]], None],
                         pinned_areas: Optional[List[VMArea]] = None,
                         prefetch_pages: int = 0) -> ThreadCompletion:
        """Run the create → (pin/prefetch) → start → completion sequence.

        ``start_fabric(done)`` must start the fabric-side hardware thread and
        call ``done()`` when it finishes.  The returned record is filled in
        as the lifecycle progresses.
        """
        created_at = self.now
        setup = self.kernel.cost_hw_thread_create()
        if pinned_areas:
            for area in pinned_areas:
                self.space.pin(area)
                setup += self.kernel.cost_pin(area, self.space)
        if prefetch_pages:
            setup += self.kernel.cost_prefetch(prefetch_pages)

        completion = ThreadCompletion(name=self.thread_name,
                                      created_at=created_at,
                                      started_at=created_at + setup)
        self.completion = completion
        self.count("threads_started")

        def launch() -> None:
            start_fabric(lambda: self._on_fabric_done(completion))

        self.schedule(setup, launch)
        return completion

    def _on_fabric_done(self, completion: ThreadCompletion) -> None:
        completion.finished_at = self.now
        join_cost = self.kernel.cost_hw_thread_join()

        def joined() -> None:
            completion.joined_at = self.now
            self.count("threads_joined")
            self.sample("wall_cycles", completion.wall_cycles or 0)
            for hook in self._on_joined:
                hook(completion)

        self.schedule(join_cost, joined)

    def on_joined(self, hook: Callable[[ThreadCompletion], None]) -> None:
        self._on_joined.append(hook)

    # ------------------------------------------------------------------ info
    @property
    def joined(self) -> bool:
        return self.completion is not None and self.completion.joined_at is not None
