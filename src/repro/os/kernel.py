"""Host OS kernel model.

The kernel owns the physical memory map and the frame/reserved allocators,
creates process address spaces, instantiates the shared demand-paging fault
handler, and charges the software costs of the driver API the paper's runtime
exposes to applications (hardware-thread create/join, buffer pinning,
explicit prefetch of translations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mem.layout import PhysicalMemoryMap
from ..sim.component import Component
from ..sim.engine import Simulator
from ..vm.pagetable import PageTableConfig
from .address_space import AddressSpace, VMArea
from .fault_handler import DemandPagingHandler, FaultHandlerConfig
from .frames import FrameAllocator, ReservedAllocator


@dataclass(frozen=True)
class KernelConfig:
    """Software cost model of the driver / runtime, in fabric cycles."""

    page_size: int = 4096
    page_table_levels: int = 2
    syscall_overhead: int = 300
    hw_thread_create_cycles: int = 2500
    hw_thread_join_cycles: int = 800
    pin_page_cycles: int = 350          # per page, get_user_pages-style
    prefetch_translation_cycles: int = 120   # per page, software TLB preload
    dma_buffer_alloc_cycles: int = 1500
    #: Switching the accelerator between process address spaces (save/restore
    #: of the thread context; no TLB flush — entries are ASID-tagged).
    context_switch_cycles: int = 1000
    #: Host-side cost of a fabric-TLB probe when the host CPU shares the
    #: fabric TLB (``SystemSpec.host_shares_tlb``): a hit rides the existing
    #: coherence path, a miss walks the host's page tables and refills the
    #: fabric TLB over the slave port.  Fabric cycles per touched page.
    host_tlb_hit_cycles: int = 2
    host_tlb_miss_cycles: int = 60
    fault_handler: FaultHandlerConfig = field(default_factory=FaultHandlerConfig)

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if self.page_table_levels <= 0:
            raise ValueError("page_table_levels must be positive")


class HostKernel(Component):
    """The OS side of the platform."""

    def __init__(self, sim: Simulator, config: KernelConfig | None = None,
                 memory_map: Optional[PhysicalMemoryMap] = None,
                 name: str = "os.kernel"):
        super().__init__(sim, name)
        self.config = config or KernelConfig()
        self.memory_map = memory_map or PhysicalMemoryMap()
        self.frames = FrameAllocator(self.memory_map.usable,
                                     page_size=self.config.page_size)
        self.reserved = ReservedAllocator(self.memory_map.reserved)
        self._spaces: Dict[str, AddressSpace] = {}
        self._fault_handlers: Dict[str, DemandPagingHandler] = {}
        self._next_asid = 1
        #: MMUs that must observe cross-process TLB shootdowns (e.g. a fabric
        #: TLB shared by several address spaces).
        self._shootdown_targets: List[object] = []
        #: The fabric TLB the host CPU shares (``SystemSpec.host_shares_tlb``);
        #: None means host translations stay in the host MMU (out of model).
        self._fabric_tlb: Optional[object] = None
        #: Cycles of host CPU time spent inside the kernel on behalf of
        #: hardware threads (reported in Table 3 as software overhead).
        self.software_overhead_cycles = 0

    # -------------------------------------------------------------- processes
    def create_process(self, name: str = "proc") -> AddressSpace:
        """Create a process address space (and its fault handler)."""
        if name in self._spaces:
            raise ValueError(f"process {name!r} already exists")
        pt_config = PageTableConfig(page_size=self.config.page_size,
                                    levels=self.config.page_table_levels)
        space = AddressSpace(self.frames, page_table_config=pt_config,
                             reserved_allocator=self.reserved,
                             asid=self._next_asid)
        self._next_asid += 1
        self._spaces[name] = space
        handler = DemandPagingHandler(self.sim, space,
                                      config=self.config.fault_handler,
                                      name=f"{self.name}.faults.{name}",
                                      host=self)
        self._fault_handlers[name] = handler
        self.count("processes_created")
        return space

    def address_space(self, name: str) -> AddressSpace:
        return self._spaces[name]

    def fault_handler(self, name: str) -> DemandPagingHandler:
        return self._fault_handlers[name]

    # ----------------------------------------------------- host TLB sharing
    def attach_fabric_tlb(self, tlb: object) -> None:
        """Make the host CPU a first-class sharer of the fabric TLB.

        Once attached, host-side page touches (:meth:`host_touch`) probe and
        refill the same ASID-tagged TLB the hardware threads translate
        through: host pinning and fault service contend for fabric-TLB
        capacity instead of being free, and host-warmed translations are
        fabric hits.  Shootdowns need no extra wiring — host entries live in
        the same TLB instance the registered MMUs invalidate.
        """
        self._fabric_tlb = tlb

    @property
    def host_shares_fabric_tlb(self) -> bool:
        return self._fabric_tlb is not None

    def host_touch(self, space: AddressSpace, vpn: int,
                   writable: bool = False) -> int:
        """One host-CPU access to a user page, through the shared fabric TLB.

        Looks ``vpn`` up under the owning space's ASID; a miss walks the
        (host) page tables and — when the PTE is present with sufficient
        permissions — refills the fabric TLB, exactly as a hardware thread's
        miss would.  Returns the host cycles charged (0 when the host does
        not share the fabric TLB).
        """
        if self._fabric_tlb is None:
            return 0
        asid = space.page_table.asid
        entry = self._fabric_tlb.lookup(vpn, asid=asid)  # type: ignore[attr-defined]
        if entry is not None and (not writable or entry.writable):
            self.count("host_tlb_hits")
            cycles = self.config.host_tlb_hit_cycles
        else:
            self.count("host_tlb_misses")
            cycles = self.config.host_tlb_miss_cycles
            pte = space.page_table.entry(vpn)
            if pte is not None and pte.present and (not writable or pte.writable):
                self._fabric_tlb.insert(  # type: ignore[attr-defined]
                    vpn, pte.frame, pte.writable, asid=asid)
                # A host walk actually displacing a fabric-TLB entry: the
                # "host refill traffic" signal host-aware scheduling reads.
                self.count("host_tlb_refills")
        self.charge(cycles, "host_tlb")
        return cycles

    def host_touch_area(self, space: AddressSpace, area: VMArea,
                        writable: bool = False) -> int:
        """Host-touch every page of ``area``; returns the cycles charged."""
        if self._fabric_tlb is None:
            return 0
        page_size = self.config.page_size
        first = area.start // page_size
        last = (area.end - 1) // page_size
        return sum(self.host_touch(space, vpn, writable=writable)
                   for vpn in range(first, last + 1))

    # ------------------------------------------------- cross-process shootdowns
    def register_shootdown_target(self, mmu: object) -> None:
        """Register an MMU for kernel-initiated (cross-process) shootdowns.

        Per-space shootdowns (``munmap``/``mprotect`` inside one process) go
        through :meth:`AddressSpace.register_shootdown_target`; this registry
        is for TLBs that may hold translations of *several* address spaces —
        the shared-TLB execution model — where one process's unmap must reach
        hardware another process is currently driving.
        """
        if mmu not in self._shootdown_targets:
            self._shootdown_targets.append(mmu)

    def shootdown(self, vpn: int, asid: Optional[int] = None) -> int:
        """Invalidate ``vpn`` in every registered MMU; returns hits dropped.

        ``asid=None`` is the conservative wildcard (all address spaces);
        passing a space's ASID makes it a targeted single-space shootdown
        that leaves other processes' translations of the same virtual page
        resident.  The IPI + invalidate cost is charged to the requesting
        process as driver overhead.
        """
        dropped = 0
        for mmu in self._shootdown_targets:
            if mmu.invalidate(vpn, asid=asid):  # type: ignore[attr-defined]
                dropped += 1
        self.count("shootdowns")
        self.charge(self.config.syscall_overhead, "shootdown")
        return dropped

    # ------------------------------------------------------------ driver API
    def charge(self, cycles: int, what: str) -> None:
        """Account host CPU cycles spent in the driver."""
        self.software_overhead_cycles += cycles
        self.count(f"cycles.{what}", cycles)

    def cost_hw_thread_create(self) -> int:
        cycles = self.config.syscall_overhead + self.config.hw_thread_create_cycles
        self.charge(cycles, "hw_thread_create")
        return cycles

    def cost_hw_thread_join(self) -> int:
        cycles = self.config.syscall_overhead + self.config.hw_thread_join_cycles
        self.charge(cycles, "hw_thread_join")
        return cycles

    def cost_pin(self, area: VMArea,
                 space: Optional[AddressSpace] = None) -> int:
        pages = area.size // self.config.page_size
        cycles = self.config.syscall_overhead + pages * self.config.pin_page_cycles
        self.charge(cycles, "pin")
        if space is not None:
            # get_user_pages touches every page on the host CPU; when the
            # host shares the fabric TLB those touches probe (and warm) it.
            cycles += self.host_touch_area(space, area,
                                           writable=area.perms.writable)
        return cycles

    def cost_prefetch(self, num_pages: int) -> int:
        cycles = (self.config.syscall_overhead
                  + num_pages * self.config.prefetch_translation_cycles)
        self.charge(cycles, "prefetch")
        return cycles

    def cost_context_switch(self) -> int:
        """Switch the accelerator to another process's address space."""
        cycles = self.config.syscall_overhead + self.config.context_switch_cycles
        self.charge(cycles, "context_switch")
        return cycles

    def cost_dma_alloc(self, size_bytes: int) -> int:
        pages = max(1, size_bytes // self.config.page_size)
        cycles = (self.config.syscall_overhead + self.config.dma_buffer_alloc_cycles
                  + pages * 20)
        self.charge(cycles, "dma_alloc")
        return cycles

    # ------------------------------------------------------------------ info
    @property
    def processes(self) -> List[str]:
        return list(self._spaces)
