"""Scheduling telemetry: per-epoch, per-process counters from a live run.

Static scheduling policies plan the whole timeline from *estimates*
(:func:`repro.workloads.multiprocess.estimate_pressure`).  Online policies
instead replan every epoch from what the machine actually did — and this
module is the measurement path that makes that possible:

* :class:`TelemetryBus` — attached to one simulation's
  :class:`~repro.sim.stats.StatsRegistry` by the multi-process harness.  The
  epoch-driven kernel generator brackets every scheduling slice with
  :meth:`TelemetryBus.begin_slice` / :meth:`TelemetryBus.end_slice` (called
  at fence-drained instants, so every in-flight operation of the slice has
  retired), and the bus attributes the counter deltas — TLB hits/misses/
  refills, walker cycles, major/minor faults, context-switch stall cycles,
  host fabric-TLB refills — to the process that owned the accelerator.
* :class:`EpochStats` / :class:`ProcessEpoch` — one closed epoch's view,
  handed to :meth:`repro.os.scheduler.SchedulingPolicy.observe` so adaptive
  policies can replan the next epoch's quanta from measured contention.
* :class:`TelemetryTrace` — the full per-run epoch list, surfaced on
  :class:`~repro.eval.harness.SVMResult` for tests and reporting.  Summing a
  counter over every epoch reproduces the run's final statistic exactly
  (pinned by ``tests/test_telemetry.py``).

Attribution is exact because the multi-process scenario runs one accelerator:
between two drain points exactly one process issues work, so a registry-wide
delta belongs to it.  Per-process fault handlers are distinct components, so
major/minor fault attribution additionally never relies on slicing at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..sim.stats import diff_snapshots, sum_matching


@dataclass(frozen=True)
class ProcessInfo:
    """Identity of one scheduled process: plan name + address-space ASID."""

    name: str
    asid: int
    #: Component name of the process's demand-paging fault handler.  When
    #: every process names one (the harness always does), the bus attributes
    #: major/minor faults from each process's *own* handler counters instead
    #: of the slice delta — attribution by ownership, not by timing.  With
    #: any name missing, fault deltas fall back to slice attribution.
    fault_handler: str = ""


#: The counters one slice/epoch sample carries, in reading order.
COUNTER_FIELDS: Tuple[str, ...] = (
    "tlb_hits", "tlb_misses", "tlb_refills", "walker_cycles",
    "major_faults", "minor_faults", "context_switch_stalls",
    "host_tlb_refills")


@dataclass(frozen=True)
class ProcessEpoch:
    """What one process measurably did during one scheduling epoch."""

    process: str
    asid: int
    #: Quantum the scheduler granted this epoch (cycles per slice).
    quantum: int
    #: Cycles the process owned the accelerator (drain point to drain point,
    #: context-switch stalls included).
    run_cycles: int
    #: Operations of its program executed this epoch / still outstanding.
    ops_executed: int
    remaining_ops: int
    tlb_hits: int = 0
    tlb_misses: int = 0
    tlb_refills: int = 0
    walker_cycles: int = 0
    major_faults: int = 0
    minor_faults: int = 0
    context_switch_stalls: int = 0
    host_tlb_refills: int = 0

    @property
    def miss_rate(self) -> float:
        """Demand TLB misses per kilocycle of measured runtime (0 if idle)."""
        if self.run_cycles <= 0:
            return 0.0
        return 1000.0 * self.tlb_misses / self.run_cycles

    @property
    def misses_per_quantum(self) -> float:
        """Demand TLB misses normalised to the granted quantum."""
        if self.quantum <= 0:
            return 0.0
        return self.tlb_misses / self.quantum

    @property
    def fault_rate(self) -> float:
        """Major faults per kilocycle of measured runtime (0 if idle)."""
        if self.run_cycles <= 0:
            return 0.0
        return 1000.0 * self.major_faults / self.run_cycles


@dataclass(frozen=True)
class EpochStats:
    """One closed scheduling epoch: per-process samples plus epoch context."""

    epoch: int
    start_cycle: int
    end_cycle: int
    #: The scheduler's base quantum (``SchedulerConfig.quantum``): the
    #: reference point adaptive policies scale from.
    base_quantum: int
    processes: Tuple[ProcessEpoch, ...]

    @property
    def duration_cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def host_tlb_refills(self) -> int:
        """Host-CPU fabric-TLB refills observed this epoch (all processes)."""
        return sum(p.host_tlb_refills for p in self.processes)

    @property
    def host_refill_rate(self) -> float:
        """Host fabric-TLB refills per kilocycle of epoch time."""
        if self.duration_cycles <= 0:
            return 0.0
        return 1000.0 * self.host_tlb_refills / self.duration_cycles

    def process(self, name: str) -> ProcessEpoch:
        for sample in self.processes:
            if sample.process == name:
                return sample
        raise KeyError(f"no process {name!r} in epoch {self.epoch}")

    def total(self, counter: str) -> int:
        """Sum one :data:`COUNTER_FIELDS` counter over every process."""
        return sum(getattr(p, counter) for p in self.processes)


@dataclass
class TelemetryTrace:
    """Every epoch of one multi-process run, in order (picklable)."""

    processes: Tuple[ProcessInfo, ...]
    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def totals(self) -> Dict[str, int]:
        """Per-counter sums over all epochs and processes."""
        return {counter: sum(epoch.total(counter) for epoch in self.epochs)
                for counter in COUNTER_FIELDS}

    def process_totals(self, name: str) -> Dict[str, int]:
        """Per-counter sums over all epochs for one process."""
        samples = [epoch.process(name) for epoch in self.epochs]
        out = {counter: sum(getattr(s, counter) for s in samples)
               for counter in COUNTER_FIELDS}
        out["ops_executed"] = sum(s.ops_executed for s in samples)
        out["run_cycles"] = sum(s.run_cycles for s in samples)
        return out

    def quanta_history(self, name: str) -> List[int]:
        """The quantum each epoch granted ``name`` (the policy's decisions)."""
        return [epoch.process(name).quantum for epoch in self.epochs]


def epoch_fairness(trace: TelemetryTrace) -> float:
    """Mean per-epoch Jain fairness of run-cycle allocation.

    For each epoch with any run time, Jain's index over the per-process
    ``run_cycles`` shares — 1.0 when every process ran equally long, 1/n
    when one process monopolized the epoch — averaged over those epochs.
    An idle trace (no epochs, or only zero-run epochs) scores a neutral
    1.0: nothing ran, so nothing was treated unfairly.
    """
    indices: List[float] = []
    for epoch in trace.epochs:
        shares = [p.run_cycles for p in epoch.processes]
        total = sum(shares)
        if total <= 0 or not shares:
            continue
        squared = sum(s * s for s in shares)
        indices.append((total * total) / (len(shares) * squared))
    if not indices:
        return 1.0
    return sum(indices) / len(indices)


class TelemetryBus:
    """Collects per-slice counter deltas and closes them into epochs.

    The bus is deliberately passive: it never schedules events and costs the
    simulated system nothing.  The epoch-driven kernel generator calls it at
    instants where the fabric is drained, which is what makes registry-wide
    deltas attributable to the single active process.
    """

    def __init__(self, sim, processes: Sequence[ProcessInfo],
                 base_quantum: int):
        self.sim = sim
        self.processes = tuple(processes)
        self.base_quantum = base_quantum
        self.trace = TelemetryTrace(processes=self.processes)
        #: Fault counters come from each process's own handler component
        #: when every process names one; else from slice attribution.
        self._per_handler = all(info.fault_handler for info in self.processes)
        self._epoch_index = 0
        self._epoch_start = sim.now
        self._active: Optional[str] = None
        self._accumulated: Dict[str, Dict[str, int]] = {}
        self._granted: Dict[str, int] = {}
        self._ops: Dict[str, int] = {}
        self._last = self._read()
        self._last_now = sim.now

    # ------------------------------------------------------------- sampling
    def _read(self) -> Dict[str, float]:
        """Aggregate the registry into the bus's counter namespace."""
        snap = self.sim.stats.snapshot()
        out = {
            "tlb_hits": sum_matching(snap, "mmu.", "tlb_hits"),
            "tlb_misses": sum_matching(snap, "mmu.", "tlb_misses"),
            "tlb_refills": sum_matching(snap, "mmu.", "tlb_refills"),
            "walker_cycles": sum_matching(snap, "ptw.", "walk_cycles"),
            "major_faults": sum_matching(snap, "os.", "major_faults"),
            "minor_faults": sum_matching(snap, "os.", "minor_faults"),
            "context_switch_stalls": snap.get(
                "os.kernel.cycles.context_switch", 0.0),
            "host_tlb_refills": snap.get("os.kernel.host_tlb_refills", 0.0),
        }
        if self._per_handler:
            for info in self.processes:
                for counter in ("major_faults", "minor_faults"):
                    out[f"{counter}::{info.name}"] = snap.get(
                        f"{info.fault_handler}.{counter}", 0.0)
        return out

    def begin_slice(self, process: str, quantum: int, ops: int) -> None:
        """Open a slice for ``process``; must follow a drained instant.

        Anything charged between the previous slice's end and this slice's
        first operation (the context-switch cost in particular) is attributed
        to the incoming process: it is the price of scheduling it.
        """
        if self._active is not None:
            raise RuntimeError("begin_slice while a slice is open")
        self._active = process
        self._granted[process] = quantum
        self._ops[process] = self._ops.get(process, 0) + ops

    def end_slice(self) -> None:
        """Close the open slice at a drained instant and attribute deltas.

        Registry-wide deltas go to the active process (it is the only one
        that ran); major/minor faults are instead taken from each process's
        *own* fault-handler counters when handler names are known — the two
        attributions agree on a single accelerator, but ownership is the
        stronger claim and stays correct even if fault service outlives a
        slice.
        """
        if self._active is None:
            raise RuntimeError("end_slice without begin_slice")
        now_read = self._read()
        delta = diff_snapshots(now_read, self._last)
        slice_counters = tuple(
            counter for counter in COUNTER_FIELDS
            if not (self._per_handler
                    and counter in ("major_faults", "minor_faults")))
        bucket = self._accumulated.setdefault(
            self._active, {counter: 0 for counter in COUNTER_FIELDS})
        for counter in slice_counters:
            bucket[counter] += int(delta.get(counter, 0))
        bucket["run_cycles"] = (bucket.get("run_cycles", 0)
                                + self.sim.now - self._last_now)
        if self._per_handler:
            for info in self.processes:
                for counter in ("major_faults", "minor_faults"):
                    faults = int(delta.get(f"{counter}::{info.name}", 0))
                    if faults:
                        owner = self._accumulated.setdefault(
                            info.name,
                            {field: 0 for field in COUNTER_FIELDS})
                        owner[counter] += faults
        self._last = now_read
        self._last_now = self.sim.now
        self._active = None

    def close_epoch(self, remaining: Mapping[str, int]) -> EpochStats:
        """Seal the current epoch into an :class:`EpochStats` and reset."""
        if self._active is not None:
            raise RuntimeError("close_epoch with a slice still open")
        samples = []
        for info in self.processes:
            bucket = self._accumulated.get(info.name, {})
            samples.append(ProcessEpoch(
                process=info.name, asid=info.asid,
                quantum=self._granted.get(info.name, 0),
                run_cycles=bucket.get("run_cycles", 0),
                ops_executed=self._ops.get(info.name, 0),
                remaining_ops=int(remaining.get(info.name, 0)),
                **{counter: bucket.get(counter, 0)
                   for counter in COUNTER_FIELDS}))
        stats = EpochStats(epoch=self._epoch_index,
                           start_cycle=self._epoch_start,
                           end_cycle=self.sim.now,
                           base_quantum=self.base_quantum,
                           processes=tuple(samples))
        self.trace.epochs.append(stats)
        self._epoch_index += 1
        self._epoch_start = self.sim.now
        self._accumulated = {}
        self._granted = {}
        self._ops = {}
        return stats
