"""Physical frame allocator.

The host OS owns all physical DRAM above the reserved region and hands out
page frames on demand — to back freshly touched pages (demand paging), to the
page-table node allocator, and to the DMA buffer allocator of the copy-based
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..mem.layout import PhysicalMemoryMap, Region, align_up


class OutOfMemoryError(RuntimeError):
    """Raised when no physical frame is available."""


class FrameAllocator:
    """Bitmap-free frame allocator over a physical region.

    Frames are handed out from a free list (lowest address first) so that
    allocation is deterministic run-to-run; freed frames are recycled in LIFO
    order which mimics a Linux-style per-CPU page cache.
    """

    def __init__(self, region: Region, page_size: int = 4096):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        self.page_size = page_size
        self.region = region
        base = align_up(region.base, page_size)
        self._first_frame = base // page_size
        self._num_frames = (region.end - base) // page_size
        if self._num_frames <= 0:
            raise ValueError("region too small for a single frame")
        self._next_fresh = 0
        self._free_list: List[int] = []
        self._allocated: Set[int] = set()

    # ------------------------------------------------------------ allocation
    def allocate(self) -> int:
        """Allocate one frame; returns the frame *number* (paddr / page_size)."""
        if self._free_list:
            frame = self._free_list.pop()
        elif self._next_fresh < self._num_frames:
            frame = self._first_frame + self._next_fresh
            self._next_fresh += 1
        else:
            # Frame counts shrink with the page size (a 2 MB hugepage system
            # has 512x fewer frames than a 4 KB one), so say which ran out.
            raise OutOfMemoryError(
                f"out of physical frames ({self._num_frames} total "
                f"of {self.page_size} bytes)")
        self._allocated.add(frame)
        return frame

    def allocate_contiguous(self, count: int) -> int:
        """Allocate ``count`` physically contiguous frames (for DMA buffers).

        Returns the first frame number.  Only fresh (never-freed) frames are
        used so contiguity is guaranteed.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if self._next_fresh + count > self._num_frames:
            raise OutOfMemoryError(
                f"cannot allocate {count} contiguous frames")
        first = self._first_frame + self._next_fresh
        self._next_fresh += count
        for frame in range(first, first + count):
            self._allocated.add(frame)
        return first

    def free(self, frame: int) -> None:
        if frame not in self._allocated:
            raise ValueError(f"frame {frame:#x} was not allocated")
        self._allocated.remove(frame)
        self._free_list.append(frame)

    # ------------------------------------------------------------------ info
    @property
    def frames_total(self) -> int:
        return self._num_frames

    @property
    def frames_allocated(self) -> int:
        return len(self._allocated)

    @property
    def frames_free(self) -> int:
        return self._num_frames - len(self._allocated)

    @property
    def bytes_free(self) -> int:
        """Unallocated physical memory — page-size-independent capacity."""
        return self.frames_free * self.page_size

    def frame_address(self, frame: int) -> int:
        """Physical byte address of a frame number."""
        return frame * self.page_size

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated


@dataclass
class ReservedAllocator:
    """Bump allocator over the OS-reserved region (page-table nodes, kernel
    structures).  Never frees — matches how the real driver carves its
    translation tables out of a CMA region at boot."""

    region: Region
    alignment: int = 64

    def __post_init__(self) -> None:
        self._cursor = align_up(self.region.base, self.alignment)

    def allocate(self, size: int) -> int:
        if size <= 0:
            raise ValueError("size must be positive")
        addr = align_up(self._cursor, self.alignment)
        if addr + size > self.region.end:
            raise OutOfMemoryError("reserved region exhausted")
        self._cursor = addr + size
        return addr

    @property
    def bytes_used(self) -> int:
        return self._cursor - self.region.base


def make_default_allocators(page_size: int = 4096,
                            memory_map: Optional[PhysicalMemoryMap] = None
                            ) -> tuple[FrameAllocator, ReservedAllocator, PhysicalMemoryMap]:
    """Convenience factory used by the OS kernel and by tests."""
    memory_map = memory_map or PhysicalMemoryMap()
    frames = FrameAllocator(memory_map.usable, page_size=page_size)
    reserved = ReservedAllocator(memory_map.reserved)
    return frames, reserved, memory_map
