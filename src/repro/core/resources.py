"""Analytical FPGA resource model.

The synthesis flow reports an estimate of the fabric resources each generated
system consumes (Table 1).  The model is calibrated against publicly reported
costs of the relevant IP on 7-series-class devices: a fully associative TLB
costs roughly one CAM bit per entry-bit in LUTs, page-table walkers and burst
engines are small FSMs plus FIFOs, interconnect cost grows with the number of
master ports, and the datapath cost comes from the kernel's HLS operator
budget.  Only *relative* trends are claimed (more TLB entries → more LUT/BRAM,
more threads → more of everything), matching how the paper uses the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hwthread.hls import KernelSchedule, OperatorBudget


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT / FF / BRAM / DSP usage estimate."""

    luts: int = 0
    ffs: int = 0
    bram_kb: float = 0.0
    dsps: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            bram_kb=self.bram_kb + other.bram_kb,
            dsps=self.dsps + other.dsps,
        )

    def scaled(self, factor: int) -> "ResourceEstimate":
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return ResourceEstimate(self.luts * factor, self.ffs * factor,
                                self.bram_kb * factor, self.dsps * factor)

    def as_dict(self) -> Dict[str, float]:
        return {"luts": self.luts, "ffs": self.ffs,
                "bram_kb": self.bram_kb, "dsps": self.dsps}


@dataclass(frozen=True)
class DeviceBudget:
    """Capacity of the target device (defaults: a mid-size Zynq-7045)."""

    luts: int = 218_600
    ffs: int = 437_200
    bram_kb: float = 2_180.0
    dsps: int = 900

    def utilisation(self, estimate: ResourceEstimate) -> Dict[str, float]:
        return {
            "luts": estimate.luts / self.luts,
            "ffs": estimate.ffs / self.ffs,
            "bram_kb": estimate.bram_kb / self.bram_kb,
            "dsps": estimate.dsps / self.dsps,
        }

    def fits(self, estimate: ResourceEstimate) -> bool:
        return all(value <= 1.0 for value in self.utilisation(estimate).values())


@dataclass(frozen=True)
class ResourceModelConfig:
    """Per-structure cost coefficients."""

    # TLB: content-addressable match logic per entry (tag + flags) plus the
    # translation store.  Set-associative TLBs trade CAM LUTs for BRAM.
    tlb_lut_per_entry_fa: int = 62
    tlb_ff_per_entry: int = 70
    tlb_lut_per_entry_sa: int = 18
    tlb_bram_kb_per_entry_sa: float = 0.0625
    # Page-table walker FSM (per instance).
    walker_luts: int = 720
    walker_ffs: int = 650
    # Memory interface / burst engine (per thread), plus FIFO BRAM.
    memif_luts: int = 950
    memif_ffs: int = 1_100
    memif_fifo_bram_kb: float = 2.0
    # Interconnect: per master port.
    bus_luts_per_port: int = 620
    bus_ffs_per_port: int = 700
    # Datapath operator costs (single-precision on 7-series).
    adder_luts: int = 380
    adder_dsps: int = 2
    multiplier_luts: int = 120
    multiplier_dsps: int = 3
    divider_luts: int = 800
    divider_dsps: int = 0
    comparator_luts: int = 60
    bram_kb_per_kword: float = 4.0
    # Translation prefetcher: stream table + stride detector FSM, plus one
    # in-flight tracker per prefetch slot.
    prefetch_luts: int = 180
    prefetch_ffs: int = 240
    prefetch_luts_per_depth: int = 40
    prefetch_ffs_per_depth: int = 60
    # Fixed control overhead per hardware thread (AXI-lite regs, start/stop).
    thread_control_luts: int = 400
    thread_control_ffs: int = 500


class ResourceModel:
    """Estimates fabric resources for synthesized systems."""

    def __init__(self, config: ResourceModelConfig | None = None,
                 device: DeviceBudget | None = None):
        self.config = config or ResourceModelConfig()
        self.device = device or DeviceBudget()

    # ----------------------------------------------------------- structures
    def tlb(self, entries: int, associativity: Optional[int] = None) -> ResourceEstimate:
        if entries <= 0:
            raise ValueError("entries must be positive")
        cfg = self.config
        if associativity is None:
            return ResourceEstimate(
                luts=entries * cfg.tlb_lut_per_entry_fa,
                ffs=entries * cfg.tlb_ff_per_entry,
            )
        return ResourceEstimate(
            luts=entries * cfg.tlb_lut_per_entry_sa,
            ffs=entries * cfg.tlb_ff_per_entry // 2,
            bram_kb=entries * cfg.tlb_bram_kb_per_entry_sa,
        )

    def walker(self) -> ResourceEstimate:
        return ResourceEstimate(luts=self.config.walker_luts,
                                ffs=self.config.walker_ffs)

    def prefetcher(self, depth: int) -> ResourceEstimate:
        """Translation prefetcher sized for ``depth`` in-flight prefetches."""
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if depth == 0:
            return ResourceEstimate()
        cfg = self.config
        return ResourceEstimate(
            luts=cfg.prefetch_luts + depth * cfg.prefetch_luts_per_depth,
            ffs=cfg.prefetch_ffs + depth * cfg.prefetch_ffs_per_depth)

    def memory_interface(self, max_burst_bytes: int) -> ResourceEstimate:
        cfg = self.config
        # Wider bursts need deeper FIFOs.
        fifo_kb = cfg.memif_fifo_bram_kb * max(1, max_burst_bytes // 256)
        return ResourceEstimate(luts=cfg.memif_luts, ffs=cfg.memif_ffs,
                                bram_kb=fifo_kb)

    def interconnect(self, num_ports: int) -> ResourceEstimate:
        if num_ports <= 0:
            raise ValueError("num_ports must be positive")
        cfg = self.config
        return ResourceEstimate(luts=num_ports * cfg.bus_luts_per_port,
                                ffs=num_ports * cfg.bus_ffs_per_port)

    def datapath(self, schedule: KernelSchedule) -> ResourceEstimate:
        cfg = self.config
        ops: OperatorBudget = schedule.operators
        return ResourceEstimate(
            luts=(ops.adders * cfg.adder_luts
                  + ops.multipliers * cfg.multiplier_luts
                  + ops.dividers * cfg.divider_luts
                  + ops.comparators * cfg.comparator_luts
                  + cfg.thread_control_luts),
            ffs=(ops.adders + ops.multipliers + ops.dividers) * 200
                + cfg.thread_control_ffs,
            bram_kb=(ops.bram_words / 1024.0) * cfg.bram_kb_per_kword,
            dsps=ops.adders * cfg.adder_dsps + ops.multipliers * cfg.multiplier_dsps,
        )

    # --------------------------------------------------------------- systems
    def hardware_thread(self, schedule: KernelSchedule, tlb_entries: int,
                        tlb_associativity: Optional[int],
                        max_burst_bytes: int,
                        private_walker: bool,
                        private_tlb: bool = True,
                        prefetch_depth: int = 0) -> ResourceEstimate:
        total = (self.datapath(schedule)
                 + self.memory_interface(max_burst_bytes)
                 + self.prefetcher(prefetch_depth))
        if private_tlb:
            total = total + self.tlb(tlb_entries, tlb_associativity)
        if private_walker:
            total = total + self.walker()
        return total
