"""Design-space exploration over synthesized-system parameters.

The synthesis flow exposes a handful of dimensioning knobs per hardware
thread (TLB entries, burst length, outstanding window, unroll factor) and
system-wide choices (shared walker, number of threads).  The explorer sweeps
a configurable grid of these knobs, evaluates each candidate with a
user-supplied evaluation function (normally "synthesize + simulate the
workload"), and reports every point plus the runtime-vs-area Pareto front
(Fig. 10).

Candidate evaluation goes through the ``runner=`` seam
(:class:`~repro.exec.runner.SweepRunner`), so an exploration parallelizes,
memoizes, or distributes (pass a
:class:`~repro.dist.runner.DistributedRunner`) without this module knowing
which executor is behind it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from .resources import ResourceEstimate
from .spec import SystemSpec

if TYPE_CHECKING:   # the runner seam stays an optional, untyped dependency
    from ..exec.runner import SweepRunner


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    parameters: Tuple[Tuple[str, object], ...]
    runtime_cycles: int
    resources: ResourceEstimate

    @property
    def params(self) -> Dict[str, object]:
        return dict(self.parameters)

    @property
    def luts(self) -> int:
        return self.resources.luts

    @property
    def bram_kb(self) -> float:
        return self.resources.bram_kb

    def dominates(self, other: "DesignPoint") -> bool:
        """True if this point is no worse in both objectives and better in one."""
        no_worse = (self.runtime_cycles <= other.runtime_cycles
                    and self.luts <= other.luts)
        better = (self.runtime_cycles < other.runtime_cycles
                  or self.luts < other.luts)
        return no_worse and better


def pareto_front(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by runtime.

    Sort-then-scan in O(n log n): walk points in (runtime, luts) order and
    keep each group of runtime-ties whose minimum LUT count strictly improves
    on everything faster.  Within a group, only the minimum-LUT points
    survive (higher-LUT ties are dominated at equal runtime); exact
    duplicates are all kept, since neither dominates the other.  Ties on
    both objectives break on the points' parameters, so the returned list —
    order included — is a pure function of the point *set*, independent of
    input order (front-equality comparisons rely on this).
    """
    ordered = sorted(points, key=lambda p: (p.runtime_cycles, p.luts,
                                            repr(p.parameters)))
    front: List[DesignPoint] = []
    best_luts: Optional[int] = None   # min LUTs over strictly faster points
    i = 0
    while i < len(ordered):
        j = i
        runtime = ordered[i].runtime_cycles
        while j < len(ordered) and ordered[j].runtime_cycles == runtime:
            j += 1
        group_min = ordered[i].luts
        if best_luts is None or group_min < best_luts:
            front.extend(p for p in ordered[i:j] if p.luts == group_min)
            best_luts = group_min
        i = j
    return front


#: Evaluation callback: given a candidate spec, return (runtime, resources).
Evaluator = Callable[[SystemSpec], Tuple[int, ResourceEstimate]]


@dataclass(frozen=True)
class SweepAxes:
    """The knob grid to explore (None keeps the base spec's value)."""

    tlb_entries: Sequence[int] = (8, 16, 32, 64)
    max_burst_bytes: Sequence[int] = (128, 256)
    max_outstanding: Sequence[int] = (4,)
    shared_walker: Sequence[bool] = (False,)
    #: Per-thread translation-prefetch depth (0 = no prefetcher).  Deeper
    #: prefetch trades walker traffic (and prefetcher area) for fewer demand
    #: TLB misses on strided kernels.
    tlb_prefetch: Sequence[int] = (0,)
    #: OS scheduling policy for multi-process workloads (``None`` = leave to
    #: the workload spec).  Policy choice interacts with the translation
    #: hardware — a larger TLB tolerates longer thrasher quanta, prefetch
    #: changes what "miss pressure" even means — so it is explorable on the
    #: same grid as the hardware knobs; adaptive (telemetry-driven) policies
    #: sweep exactly like static ones.
    policy: Sequence[Optional[str]] = (None,)

    def size(self) -> int:
        return (len(self.tlb_entries) * len(self.max_burst_bytes)
                * len(self.max_outstanding) * len(self.shared_walker)
                * len(self.tlb_prefetch) * len(self.policy))


class DesignSpaceExplorer:
    """Grid sweep over system parameters with Pareto extraction."""

    def __init__(self, evaluator: Evaluator):
        self.evaluator = evaluator

    def candidates(self, base: SystemSpec, axes: SweepAxes) -> List[SystemSpec]:
        """Enumerate candidate specs over the axis grid.

        The per-thread knobs are applied uniformly to every thread of the
        base spec (per-thread heterogeneous sweeps explode combinatorially
        and are not what the paper's flow explores).
        """
        specs: List[SystemSpec] = []
        grid = itertools.product(axes.tlb_entries, axes.max_burst_bytes,
                                 axes.max_outstanding, axes.shared_walker,
                                 axes.tlb_prefetch, axes.policy)
        for tlb, burst, outstanding, shared, prefetch, policy in grid:
            threads = [replace(t, tlb_entries=tlb, max_burst_bytes=burst,
                               max_outstanding=outstanding,
                               tlb_prefetch=prefetch)
                       for t in base.threads]
            specs.append(replace(base, threads=threads, shared_walker=shared,
                                 scheduling_policy=(base.scheduling_policy
                                                    if policy is None
                                                    else policy)))
        return specs

    @staticmethod
    def _params_for(spec: SystemSpec) -> Tuple[Tuple[str, object], ...]:
        """The reported knob assignment of one candidate spec."""
        thread0 = spec.threads[0]
        params = (
            ("tlb_entries", thread0.tlb_entries),
            ("max_burst_bytes", thread0.max_burst_bytes),
            ("max_outstanding", thread0.max_outstanding),
            ("shared_walker", spec.shared_walker),
            ("tlb_prefetch", thread0.tlb_prefetch),
            ("num_threads", spec.num_threads),
        )
        if spec.scheduling_policy is not None:
            params = params + (("policy", spec.scheduling_policy),)
        return params

    def explore(self, base: SystemSpec, axes: Optional[SweepAxes] = None,
                runner: Optional["SweepRunner"] = None, *,
                explorer: Optional[object] = None,
                objectives: Optional[object] = None,
                budget: Optional[int] = None,
                results: Optional[object] = None,
                seed: int = 0):
        """Evaluate the grid and return design points.

        With only the classic arguments this is the exhaustive grid sweep:
        every candidate evaluated in order, returned as a
        ``List[DesignPoint]``.  ``runner`` (a :class:`repro.exec.SweepRunner`)
        evaluates in parallel and/or with memoization; candidate order — and
        therefore the returned point order — is identical to the serial path
        either way.

        Passing any of the adaptive keywords switches to the
        :mod:`repro.dse` explorer protocol and returns an
        :class:`~repro.dse.Exploration` instead: ``explorer`` names a
        backend (``"exhaustive"``/``"successive-halving"`` or an instance),
        ``objectives`` a :class:`~repro.dse.DseObjectives`, ``budget`` a
        hard evaluation cap, ``results`` a
        :class:`~repro.store.results.ResultsStore` for warm-starting (the
        runner's attached store is used when present), and ``seed`` drives
        the subsampling of budget-constrained backends.
        """
        axes = axes or SweepAxes()
        specs = self.candidates(base, axes)
        adaptive = (explorer is not None or objectives is not None
                    or budget is not None or results is not None)
        if adaptive:
            from ..dse import (DesignSpace, DseObjectives, FidelityRung,
                               get_explorer)
            space = DesignSpace(
                candidates=tuple(specs),
                coords=tuple(tuple(sorted(self._params_for(s)))
                             for s in specs),
                ladder=(FidelityRung("full", self.evaluator),))
            if results is None:
                results = getattr(runner, "results", None)
            backend = get_explorer(explorer if explorer is not None
                                   else "exhaustive")
            return backend.explore(space,
                                   objectives=objectives or DseObjectives(),
                                   runner=runner, budget=budget,
                                   results=results, seed=seed)
        if runner is not None:
            evaluations = runner.map(self.evaluator, specs, label="dse")
        else:
            evaluations = [self.evaluator(spec) for spec in specs]
        points: List[DesignPoint] = []
        for spec, (runtime, resources) in zip(specs, evaluations):
            points.append(DesignPoint(parameters=self._params_for(spec),
                                      runtime_cycles=runtime,
                                      resources=resources))
        return points

    def explore_pareto(self, base: SystemSpec,
                       axes: Optional[SweepAxes] = None,
                       runner: Optional["SweepRunner"] = None
                       ) -> Tuple[List[DesignPoint], List[DesignPoint]]:
        """Evaluate the grid; returns (all points, Pareto-optimal points)."""
        points = self.explore(base, axes, runner=runner)
        return points, pareto_front(points)
