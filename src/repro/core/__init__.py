"""System-level synthesis of virtual-memory-enabled hardware threads.

This package is the paper's primary contribution: it consumes a system
specification (which kernels run as hardware threads and how their MMUs and
memory interfaces are dimensioned), instantiates the simulatable system on
top of the shared platform substrate, and reports an FPGA resource estimate.
"""

from .dse import DesignPoint, DesignSpaceExplorer, SweepAxes, pareto_front
from .platform import ClockConfig, Platform, PlatformConfig
from .resources import (
    DeviceBudget,
    ResourceEstimate,
    ResourceModel,
    ResourceModelConfig,
)
from .spec import SystemSpec, ThreadSpec, size_tlb_for_footprint
from .synthesis import (
    SynthesizedSystem,
    SynthesizedThread,
    SystemRunResult,
    SystemSynthesizer,
)

__all__ = [
    "ClockConfig",
    "DesignPoint",
    "DesignSpaceExplorer",
    "DeviceBudget",
    "Platform",
    "PlatformConfig",
    "ResourceEstimate",
    "ResourceModel",
    "ResourceModelConfig",
    "SweepAxes",
    "SynthesizedSystem",
    "SynthesizedThread",
    "SystemRunResult",
    "SystemSpec",
    "SystemSynthesizer",
    "ThreadSpec",
    "pareto_front",
    "size_tlb_for_footprint",
]
