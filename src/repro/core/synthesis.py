"""System-level synthesis: from a :class:`SystemSpec` to a runnable system.

This is the reproduction of the paper's primary contribution.  Given a system
specification the synthesizer:

1. instantiates the platform (DRAM, bus, host OS, process address space),
2. creates one MMU (TLB + fault-delegation link) per hardware thread, with
   private or shared page-table walkers as specified,
3. attaches each thread's memory interface and the walkers to the system bus
   (generating the interconnect topology),
4. creates the OS-side delegate threads, and
5. produces an FPGA resource estimate for the generated system (Table 1).

The synthesized system can then execute application runs: the caller binds
each thread to a kernel generator (normally produced by
:mod:`repro.workloads`) and calls :meth:`SynthesizedSystem.run`, obtaining
per-thread and end-to-end cycle counts plus the full statistics snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..hwthread.memif import MemoryInterface
from ..hwthread.thread import HardwareThread
from ..os.delegate import DelegateThread, ThreadCompletion
from ..sim.process import KernelGenerator
from ..vm.mmu import MMU
from ..vm.tlb import TLB
from ..vm.walker import PageTableWalker, WalkerConfig
from .platform import Platform
from .resources import DeviceBudget, ResourceEstimate, ResourceModel
from .spec import SystemSpec, ThreadSpec


@dataclass
class SynthesizedThread:
    """One hardware thread instantiated by the synthesizer."""

    spec: ThreadSpec
    mmu: MMU
    walker: PageTableWalker
    memif: MemoryInterface
    delegate: DelegateThread
    thread: Optional[HardwareThread] = None
    completion: Optional[ThreadCompletion] = None
    resources: ResourceEstimate = field(default_factory=ResourceEstimate)


@dataclass
class SystemRunResult:
    """Outcome of executing a synthesized system."""

    total_cycles: int
    per_thread_fabric_cycles: Dict[str, int]
    per_thread_wall_cycles: Dict[str, int]
    aborted_threads: List[str]
    software_overhead_cycles: int
    stats: Dict[str, float]

    @property
    def ok(self) -> bool:
        return not self.aborted_threads

    def tlb_hit_rate(self, thread: str) -> float:
        hits = self.stats.get(f"mmu.{thread}.tlb_hits", 0.0)
        misses = self.stats.get(f"mmu.{thread}.tlb_misses", 0.0)
        total = hits + misses
        return hits / total if total else 0.0


class SystemSynthesizer:
    """Builds runnable systems (and their resource estimates) from specs."""

    def __init__(self, resource_model: Optional[ResourceModel] = None):
        self.resource_model = resource_model or ResourceModel()

    # ------------------------------------------------------------ synthesis
    def synthesize(self, spec: SystemSpec,
                   platform: Optional[Platform] = None,
                   spaces: Optional[Mapping[str, str]] = None) -> "SynthesizedSystem":
        """Instantiate the system described by ``spec``.

        A fresh :class:`Platform` is created from ``spec.platform`` unless an
        existing one is supplied (used when the caller has already allocated
        workload buffers in the process address space).

        ``spaces`` maps thread names to *process* names previously created on
        the platform's kernel (:meth:`HostKernel.create_process`); unmapped
        threads run in the platform's default process.  Together with
        ``spec.shared_tlb`` this builds multi-process systems: threads of
        different address spaces contending for one ASID-tagged fabric TLB.
        """
        platform = platform or Platform(spec.platform)
        page_size = platform.page_size

        if spaces:
            unknown = set(spaces) - {t.name for t in spec.threads}
            if unknown:
                raise ValueError(
                    f"spaces maps unknown threads {sorted(unknown)}; "
                    f"system threads: {[t.name for t in spec.threads]}")

        shared_walker: Optional[PageTableWalker] = None
        if spec.shared_walker:
            shared_walker = PageTableWalker(
                platform.sim, port=platform.bus.attach_master("ptw.shared"),
                config=WalkerConfig(), name="ptw.shared")

        shared_tlb: Optional[TLB] = None
        if spec.shared_tlb:
            # One fabric TLB for every hardware thread, dimensioned by the
            # first thread's spec (specs are uniform in practice).
            shared_tlb = TLB(spec.threads[0].tlb_config(page_size),
                             name="tlb.shared")
            if spec.host_shares_tlb:
                # The host CPU probes/refills the same ASID-tagged TLB:
                # pinning and fault service contend for its capacity.
                platform.kernel.attach_fabric_tlb(shared_tlb)

        threads: Dict[str, SynthesizedThread] = {}
        for thread_spec in spec.threads:
            process = (spaces or {}).get(thread_spec.name,
                                         platform.process_name)
            space = platform.kernel.address_space(process)
            fault_handler = platform.kernel.fault_handler(process)

            walker = shared_walker
            if walker is None or thread_spec.private_walker and not spec.shared_walker:
                walker = PageTableWalker(
                    platform.sim,
                    port=platform.bus.attach_master(f"ptw.{thread_spec.name}"),
                    config=WalkerConfig(), name=f"ptw.{thread_spec.name}")

            mmu = MMU(platform.sim, space.page_table, walker,
                      fault_handler=fault_handler,
                      config=thread_spec.mmu_config(page_size),
                      name=f"mmu.{thread_spec.name}",
                      tlb=shared_tlb)
            space.register_shootdown_target(mmu)
            if spec.shared_tlb:
                # A shared TLB can cache any process's translations, so the
                # kernel must be able to shoot pages down across spaces.
                platform.kernel.register_shootdown_target(mmu)

            port = platform.bus.attach_master(thread_spec.name)
            memif = MemoryInterface(platform.sim, port, mmu=mmu,
                                    config=thread_spec.memif_config(),
                                    name=f"{thread_spec.name}.memif")
            delegate = DelegateThread(platform.sim, platform.kernel,
                                      space, thread_spec.name)
            resources = self.resource_model.hardware_thread(
                thread_spec.schedule(), thread_spec.tlb_entries,
                thread_spec.tlb_associativity, thread_spec.max_burst_bytes,
                private_walker=not spec.shared_walker,
                private_tlb=not spec.shared_tlb,
                prefetch_depth=thread_spec.tlb_prefetch)
            threads[thread_spec.name] = SynthesizedThread(
                spec=thread_spec, mmu=mmu, walker=walker, memif=memif,
                delegate=delegate, resources=resources)

        return SynthesizedSystem(spec, platform, threads,
                                 shared_walker=shared_walker,
                                 shared_tlb=shared_tlb,
                                 resource_model=self.resource_model)


class SynthesizedSystem:
    """A fully instantiated system ready to execute kernels."""

    def __init__(self, spec: SystemSpec, platform: Platform,
                 threads: Dict[str, SynthesizedThread],
                 shared_walker: Optional[PageTableWalker],
                 resource_model: ResourceModel,
                 shared_tlb: Optional[TLB] = None):
        self.spec = spec
        self.platform = platform
        self.threads = threads
        self.shared_walker = shared_walker
        self.shared_tlb = shared_tlb
        self.resource_model = resource_model

    # -------------------------------------------------------------- resources
    def resource_estimate(self) -> ResourceEstimate:
        """Total fabric resources of the generated system (excl. the host PS)."""
        total = ResourceEstimate()
        for synth in self.threads.values():
            total = total + synth.resources
        if self.shared_walker is not None:
            total = total + self.resource_model.walker()
        if self.shared_tlb is not None:
            total = total + self.resource_model.tlb(
                self.shared_tlb.config.entries,
                self.shared_tlb.config.associativity)
        # Interconnect: one port per thread memif, plus walker ports.
        num_ports = self.platform.bus.num_masters
        total = total + self.resource_model.interconnect(max(1, num_ports))
        return total

    def fits(self, device: Optional[DeviceBudget] = None) -> bool:
        device = device or self.resource_model.device
        return device.fits(self.resource_estimate())

    # -------------------------------------------------------------------- run
    def run(self, kernels: Dict[str, KernelGenerator],
            pin_all: bool = False,
            prefetch_pages: int = 0) -> SystemRunResult:
        """Execute the system: one kernel generator per hardware thread.

        ``kernels`` maps thread names to generators.  Every thread is created
        through its OS delegate (so driver overheads are charged), started,
        and the simulation runs until all threads complete.
        """
        unknown = set(kernels) - set(self.threads)
        if unknown:
            raise KeyError(f"kernels bound to unknown threads: {sorted(unknown)}")
        missing = set(self.threads) - set(kernels)
        if missing:
            raise KeyError(f"no kernel bound to threads: {sorted(missing)}")

        sim = self.platform.sim
        start_cycle = sim.now
        aborted: List[str] = []

        for name, generator in kernels.items():
            synth = self.threads[name]
            hw_thread = HardwareThread(sim, generator, synth.memif,
                                       config=synth.spec.thread_config(),
                                       name=name)
            synth.thread = hw_thread

            # Pin the areas of the thread's *own* address space: threads may
            # live in different processes (synthesize's ``spaces=`` mapping).
            pinned_areas = list(synth.delegate.space.areas) if pin_all else None

            def start_fabric(done: Callable[[], None],
                             thread: HardwareThread = hw_thread,
                             thread_name: str = name) -> None:
                def on_done(ok: bool) -> None:
                    if not ok:
                        aborted.append(thread_name)
                    done()
                thread.start(on_done)

            synth.completion = synth.delegate.create_and_start(
                start_fabric, pinned_areas=pinned_areas,
                prefetch_pages=prefetch_pages)

        end_cycle = self.platform.run()

        for synth in self.threads.values():
            synth.mmu.export_stats()

        per_thread_fabric: Dict[str, int] = {}
        per_thread_wall: Dict[str, int] = {}
        for name, synth in self.threads.items():
            completion = synth.completion
            per_thread_fabric[name] = completion.fabric_cycles or 0 if completion else 0
            per_thread_wall[name] = completion.wall_cycles or 0 if completion else 0

        host_overhead = self.platform.clocks.host_to_fabric(0)
        return SystemRunResult(
            total_cycles=end_cycle - start_cycle,
            per_thread_fabric_cycles=per_thread_fabric,
            per_thread_wall_cycles=per_thread_wall,
            aborted_threads=aborted,
            software_overhead_cycles=self.platform.kernel.software_overhead_cycles,
            stats=self.platform.snapshot(),
        )
