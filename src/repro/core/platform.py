"""Platform assembly: the simulated SoC every execution model runs on.

A :class:`Platform` bundles the simulator, DRAM, system bus, host kernel and
one process address space — the fixed substrate.  The system-level synthesis
flow (:mod:`repro.core.synthesis`) instantiates hardware threads, MMUs and
walkers *on top of* a platform according to a system specification; the
baselines reuse the same platform so all execution models see identical
memory timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..mem.arbiter import make_arbiter
from ..mem.bus import BusConfig, SystemBus
from ..mem.dram import DRAMConfig, DRAMModel
from ..mem.layout import PhysicalMemoryMap
from ..os.address_space import AddressSpace
from ..os.fault_handler import FaultHandlerConfig
from ..os.kernel import HostKernel, KernelConfig
from ..sim.engine import Simulator


@dataclass(frozen=True)
class ClockConfig:
    """Clock domains of the platform (frequencies in MHz).

    All simulation timing is expressed in *fabric* cycles; host CPU cycles
    are converted with :meth:`host_to_fabric`.
    """

    fabric_mhz: float = 100.0
    host_mhz: float = 667.0

    def __post_init__(self) -> None:
        if self.fabric_mhz <= 0 or self.host_mhz <= 0:
            raise ValueError("clock frequencies must be positive")

    @property
    def host_per_fabric(self) -> float:
        """Host cycles elapsing per fabric cycle."""
        return self.host_mhz / self.fabric_mhz

    def host_to_fabric(self, host_cycles: float) -> int:
        """Convert a host-CPU cycle count into fabric cycles (ceiling)."""
        if host_cycles < 0:
            raise ValueError("cycle counts must be non-negative")
        fabric = host_cycles / self.host_per_fabric
        return int(fabric) + (0 if fabric == int(fabric) else 1)


@dataclass(frozen=True)
class PlatformConfig:
    """Everything fixed about the SoC, independent of the synthesized system."""

    clocks: ClockConfig = field(default_factory=ClockConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    arbiter: str = "round_robin"
    page_size: int = 4096
    page_table_levels: int = 2
    fault_handler: FaultHandlerConfig = field(default_factory=FaultHandlerConfig)
    dram_size_bytes: int = 512 * 1024 * 1024
    max_cycles: Optional[int] = 2_000_000_000

    def kernel_config(self) -> KernelConfig:
        return KernelConfig(page_size=self.page_size,
                            page_table_levels=self.page_table_levels,
                            fault_handler=self.fault_handler)


class Platform:
    """One instantiated simulation platform (fresh per experiment run)."""

    def __init__(self, config: PlatformConfig | None = None,
                 process_name: str = "app"):
        self.config = config or PlatformConfig()
        self.sim = Simulator(max_cycles=self.config.max_cycles)
        self.memory_map = PhysicalMemoryMap(dram_size=self.config.dram_size_bytes)
        self.dram = DRAMModel(self.sim, self.config.dram)
        self.bus = SystemBus(self.sim, self.dram, self.config.bus,
                             arbiter=make_arbiter(self.config.arbiter, 16))
        self.kernel = HostKernel(self.sim, self.config.kernel_config(),
                                 memory_map=self.memory_map)
        self.process_name = process_name
        self.space: AddressSpace = self.kernel.create_process(process_name)

    # ------------------------------------------------------------------ API
    @property
    def clocks(self) -> ClockConfig:
        return self.config.clocks

    @property
    def page_size(self) -> int:
        return self.config.page_size

    def fault_handler(self):
        return self.kernel.fault_handler(self.process_name)

    def run(self, until: Optional[int] = None) -> int:
        """Run the simulation to quiescence; returns the final cycle."""
        return self.sim.run(until=until)

    def snapshot(self) -> dict:
        """Flat snapshot of every component statistic on this platform."""
        return self.sim.stats.snapshot()
