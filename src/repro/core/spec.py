"""System specification: the input to the system-level synthesis flow.

An application is described as a set of hardware-thread specifications (which
kernel each runs, how its memory interface and MMU should be dimensioned)
plus system-wide choices (shared vs private page-table walkers, interconnect
arbitration, page size).  The synthesis flow consumes a
:class:`SystemSpec` and produces a simulatable system plus a resource
estimate — this mirrors the paper's flow, which consumes a thread-annotated
program and produces the FPGA system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..hwthread.hls import KernelSchedule, scale_schedule, schedule_for
from ..hwthread.memif import MemoryInterfaceConfig
from ..hwthread.thread import HardwareThreadConfig
from ..vm.mmu import MMUConfig
from ..vm.tlb import TLBConfig
from .platform import PlatformConfig


@dataclass(frozen=True)
class ThreadSpec:
    """Specification of one hardware thread."""

    name: str
    kernel: str                                  # library kernel name
    tlb_entries: int = 16
    tlb_associativity: Optional[int] = None      # None = fully associative
    tlb_replacement: str = "lru"
    max_outstanding: int = 4
    max_burst_bytes: int = 256
    unroll: Optional[int] = None                 # None = library default
    private_walker: bool = True
    #: Translation-prefetch depth of this thread's MMU (0 = no prefetcher).
    tlb_prefetch: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("thread name must not be empty")
        if self.tlb_entries <= 0:
            raise ValueError("tlb_entries must be positive")
        if self.max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        if self.max_burst_bytes <= 0:
            raise ValueError("max_burst_bytes must be positive")
        if self.tlb_prefetch < 0:
            raise ValueError("tlb_prefetch must be non-negative")

    # ------------------------------------------------------------- derived
    def schedule(self) -> KernelSchedule:
        base = schedule_for(self.kernel)
        if self.unroll is None or self.unroll == base.unroll:
            return base
        return scale_schedule(base, self.unroll)

    def tlb_config(self, page_size: int) -> TLBConfig:
        return TLBConfig(entries=self.tlb_entries,
                         associativity=self.tlb_associativity,
                         replacement=self.tlb_replacement,
                         page_size=page_size)

    def mmu_config(self, page_size: int) -> MMUConfig:
        return MMUConfig(tlb=self.tlb_config(page_size),
                         prefetch_depth=self.tlb_prefetch)

    def thread_config(self) -> HardwareThreadConfig:
        return HardwareThreadConfig(max_outstanding=self.max_outstanding)

    def memif_config(self) -> MemoryInterfaceConfig:
        return MemoryInterfaceConfig(max_burst_bytes=self.max_burst_bytes)

    def with_tlb_entries(self, entries: int) -> "ThreadSpec":
        return replace(self, tlb_entries=entries)


@dataclass(frozen=True)
class SystemSpec:
    """Specification of the whole synthesized system."""

    name: str
    threads: List[ThreadSpec] = field(default_factory=list)
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    shared_walker: bool = False        # one PTW shared by all threads
    shared_tlb: bool = False           # one ASID-tagged TLB shared by all MMUs
    #: The host CPU is a first-class sharer of the fabric TLB: host-side page
    #: touches (pinning, fault service) look up / refill the same ASID-tagged
    #: TLB the hardware threads translate through, contending for its
    #: capacity.  Requires ``shared_tlb`` (there must be one fabric TLB for
    #: the host to share).
    host_shares_tlb: bool = False
    host_priority_port: bool = False   # give the host a fixed-priority port
    #: OS scheduling policy multi-process workloads on this system should be
    #: time-sliced with (``repro.os.scheduler`` registry name).  ``None``
    #: leaves the choice to the workload spec.  This makes the policy a
    #: first-class synthesis parameter: the DSE sweeps it
    #: (:attr:`repro.core.dse.SweepAxes.policy`) next to TLB size and
    #: prefetch depth, since the best static/adaptive policy shifts with the
    #: translation hardware it is compensating for.
    scheduling_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.threads:
            raise ValueError("a system needs at least one hardware thread")
        names = [t.name for t in self.threads]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate thread names in {names}")
        if self.host_shares_tlb and not self.shared_tlb:
            raise ValueError("host_shares_tlb requires shared_tlb "
                             "(the host shares the one fabric TLB)")
        if self.scheduling_policy is not None:
            from ..os.scheduler import SCHEDULER_POLICIES
            if self.scheduling_policy not in SCHEDULER_POLICIES:
                raise ValueError(
                    f"unknown scheduling policy {self.scheduling_policy!r}; "
                    f"registered: {', '.join(sorted(SCHEDULER_POLICIES))}")

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def thread(self, name: str) -> ThreadSpec:
        for spec in self.threads:
            if spec.name == name:
                return spec
        raise KeyError(f"no thread named {name!r} in system {self.name!r}")

    def kernels_used(self) -> List[str]:
        return sorted({t.kernel for t in self.threads})


def size_tlb_for_footprint(footprint_bytes: int, page_size: int,
                           coverage: float = 1.0,
                           min_entries: int = 8, max_entries: int = 128) -> int:
    """Synthesis heuristic: pick a TLB size covering ``coverage`` of the
    workload's page footprint, clamped to a power of two in [min, max].

    This is the automated sizing rule the flow applies when the programmer
    does not dimension the TLB explicitly; the Fig. 10 DSE benchmark shows
    the runtime/area trade-off around the chosen point.
    """
    if footprint_bytes <= 0:
        raise ValueError("footprint must be positive")
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    pages = max(1, footprint_bytes // page_size)
    target = max(1, int(pages * coverage))
    entries = 1
    while entries < target:
        entries <<= 1
    return max(min_entries, min(max_entries, entries))
