"""Plain-text report formatting for experiment results.

The benchmark harness and the examples print the same tables the paper
reports; these helpers render lists of row dictionaries and x/series mappings
as aligned text so results are readable in a terminal and in the committed
EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

#: The output formats every row-rendering surface understands.
OUTPUT_FORMATS = ("table", "csv", "json")


def format_output(rows: Sequence[Mapping[str, object]],
                  columns: Optional[Sequence[str]] = None,
                  fmt: str = "table", title: str = "") -> str:
    """Render row dicts as an aligned table, CSV, or JSON — one switch.

    The single rendering backend behind ``repro run --csv``, ``repro
    compare``, ``repro query`` and :meth:`SweepOutcomes.to_table`, so every
    surface agrees on column inference (first-seen order across all rows)
    and on what each format looks like.  ``columns`` restricts and orders
    the output; missing cells render empty.  ``title`` applies to the table
    form only.  The returned string ends with a newline except for JSON.
    """
    if fmt not in OUTPUT_FORMATS:
        raise ValueError(f"unknown output format {fmt!r}; "
                         f"expected one of {', '.join(OUTPUT_FORMATS)}")
    rows = [dict(row) for row in rows]
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if str(key) not in columns:
                    columns.append(str(key))
    else:
        columns = [str(column) for column in columns]
        rows = [{column: row.get(column, "") for column in columns}
                for row in rows]
    if fmt == "json":
        return json.dumps(rows, indent=2, default=str)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, restval="",
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({str(key): value for key, value in row.items()})
        return buffer.getvalue()
    return format_table(
        [{column: row.get(column, "") for column in columns} for row in rows],
        title=title)


def format_table(rows: Sequence[Mapping[str, object]],
                 title: str = "", max_width: int = 24) -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"

    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            text = f"{value:.3f}"
        else:
            text = str(value)
        return text[:max_width]

    widths = {c: len(c) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(fmt(row.get(column, ""))))

    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(fmt(row.get(c, "")).ljust(widths[c])
                               for c in columns))
    return "\n".join(lines) + "\n"


def format_series(series: Mapping[str, Sequence[object]],
                  title: str = "", x_key: str | None = None) -> str:
    """Render an {name: [values...]} mapping as a table with one row per index."""
    if not series:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    keys = list(series)
    if x_key and x_key in keys:
        keys.remove(x_key)
        keys.insert(0, x_key)
    length = max(len(v) for v in series.values())
    rows = []
    for i in range(length):
        row = {}
        for key in keys:
            values = series[key]
            row[key] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)


def format_nested_series(nested: Mapping[str, Mapping[str, Sequence[object]]],
                         title: str = "") -> str:
    """Render {group: {name: [values...]}} (e.g. per-kernel sweeps)."""
    parts = [title] if title else []
    for group, series in nested.items():
        parts.append(format_series(series, title=f"[{group}]"))
    return "\n".join(parts)


def speedup_summary(rows: Sequence[Mapping[str, object]]) -> Dict[str, float]:
    """Geometric means of the speedup columns of a Table-3 style result."""
    import math

    def geomean(values: Iterable[float]) -> float:
        values = [v for v in values if v and v > 0]
        if not values:
            return 0.0
        return math.exp(sum(math.log(v) for v in values) / len(values))

    return {
        "geomean_speedup_vs_software": geomean(
            float(r["speedup_sw"]) for r in rows if "speedup_sw" in r),
        "geomean_speedup_vs_copydma": geomean(
            float(r["speedup_dma"]) for r in rows if "speedup_dma" in r),
        "geomean_vm_overhead": geomean(
            float(r["vm_overhead"]) for r in rows if "vm_overhead" in r),
    }
