"""Execution harness: run one workload under every execution model.

Each run builds a *fresh* platform (so statistics and DRAM/bus state never
leak between models), binds the workload's buffers into the process address
space, and executes:

* ``svm``      — the paper's system: hardware thread + MMU (TLB/walker/faults),
* ``ideal``    — same datapath, zero-cost translation (VM overhead reference),
* ``copydma``  — conventional copy-in / compute / copy-out accelerator,
* ``software`` — the kernel running on the host CPU.

Results are returned as plain dataclasses holding cycle counts and the
derived metrics the evaluation section reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..baselines.copydma import CopyDMAAccelerator, CopyDMARunResult
from ..baselines.ideal import IdealAccelerator
from ..baselines.software import SoftwareCPU, SoftwareCPUConfig
from ..core.platform import Platform, PlatformConfig
from ..core.spec import SystemSpec, ThreadSpec, size_tlb_for_footprint
from ..core.synthesis import SystemRunResult, SystemSynthesizer
from ..models import CANONICAL_MODELS, RunOutcome
from ..os.scheduler import SchedulerConfig, get_policy
from ..os.telemetry import (ProcessInfo, TelemetryBus, TelemetryTrace,
                            epoch_fairness)
from ..sim.process import run_functional
from ..sim.stats import sum_matching
from ..sim.trace import GLOBAL_TRACER
from ..workloads.multiprocess import (MultiProcessSpec,
                                      adaptive_time_sliced_kernel, slice_plan,
                                      time_sliced_kernel)
from ..workloads.specs import BoundWorkload, WorkloadSpec

if TYPE_CHECKING:
    from ..exec.runner import SweepRunner


@dataclass(frozen=True)
class HarnessConfig:
    """Knobs shared by all harness entry points."""

    platform: PlatformConfig = field(default_factory=PlatformConfig)
    tlb_entries: int = 16
    tlb_associativity: Optional[int] = None
    tlb_replacement: str = "lru"
    max_outstanding: int = 4
    max_burst_bytes: int = 256
    shared_walker: bool = False
    #: One ASID-tagged fabric TLB shared by every hardware thread.
    shared_tlb: bool = False
    #: The host CPU probes/refills that fabric TLB too (implies one shared
    #: TLB): pinning and fault service contend for its capacity.
    host_shares_tlb: bool = False
    #: MMU translation-prefetch depth (0 = no prefetcher).
    tlb_prefetch: int = 0
    auto_size_tlb: bool = False
    pin_all: bool = False
    prefetch_pages: int = 0
    software: SoftwareCPUConfig = field(default_factory=SoftwareCPUConfig)

    def thread_spec(self, name: str, kernel: str,
                    footprint_bytes: Optional[int] = None) -> ThreadSpec:
        entries = self.tlb_entries
        if self.auto_size_tlb and footprint_bytes:
            entries = size_tlb_for_footprint(footprint_bytes,
                                             self.platform.page_size)
        return ThreadSpec(name=name, kernel=kernel, tlb_entries=entries,
                          tlb_associativity=self.tlb_associativity,
                          tlb_replacement=self.tlb_replacement,
                          max_outstanding=self.max_outstanding,
                          max_burst_bytes=self.max_burst_bytes,
                          tlb_prefetch=self.tlb_prefetch)


@dataclass
class SVMResult:
    """Result of running a workload on the SVM hardware-thread system."""

    total_cycles: int
    fabric_cycles: int
    tlb_hit_rate: float
    tlb_misses: int
    faults: int
    software_overhead_cycles: int
    system_result: SystemRunResult
    # Translation-machinery detail (aggregated over threads/walkers); the
    # SVM-family execution models surface these through RunOutcome.breakdown.
    walks: int = 0
    walker_levels: int = 0
    walker_cycles: int = 0
    miss_stall_cycles: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    context_switches: int = 0
    #: Per-epoch scheduling telemetry (adaptive multi-process runs only).
    telemetry: Optional[TelemetryTrace] = None
    #: Which execution tier produced this result ("event" or "replay").
    tier: str = "event"
    #: Why the replay tier was not used (set when ``tier="auto"`` fell back).
    tier_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.system_result.ok

    def translation_breakdown(self) -> Dict[str, object]:
        """The walker/prefetch detail as a plain mapping (for ``breakdown``)."""
        out = {"walks": self.walks,
               "walker_levels": self.walker_levels,
               "walker_cycles": self.walker_cycles,
               "miss_stall_cycles": self.miss_stall_cycles,
               "prefetches_issued": self.prefetches_issued,
               "prefetch_hits": self.prefetch_hits,
               "context_switches": self.context_switches}
        if self.telemetry is not None:
            out["epochs"] = self.telemetry.num_epochs
            # Telemetry-derived DSE objectives: total host-CPU fabric-TLB
            # refills and per-epoch scheduling fairness travel with the
            # outcome so DseObjectives can read them off any RunOutcome.
            out["host_tlb_refills"] = self.telemetry.totals()[
                "host_tlb_refills"]
            out["epoch_fairness"] = epoch_fairness(self.telemetry)
        return out


#: Back-compat alias: the snapshot aggregation now lives in ``sim.stats`` so
#: the telemetry bus and the harness cannot disagree on counter semantics.
_sum_stat = sum_matching


#: Row-column names for the canonical models (kept stable for golden data).
_MODEL_COLUMNS = {"software": "software", "copydma": "copy_dma",
                  "svm": "svm_thread", "ideal": "ideal"}


@dataclass
class ComparisonResult:
    """Execution models on one workload, plus derived speedups.

    ``outcomes`` maps model name to its :class:`~repro.models.RunOutcome`;
    any registered model can appear.  The derived speedup/overhead metrics
    are defined whenever the canonical models they relate are present.
    """

    workload: str
    outcomes: Dict[str, RunOutcome]

    def __getitem__(self, model: str) -> RunOutcome:
        return self.outcomes[model]

    def __contains__(self, model: str) -> bool:
        return model in self.outcomes

    @property
    def models(self) -> List[str]:
        return list(self.outcomes)

    # ------------------------------------------------- canonical shorthands
    @property
    def svm(self) -> RunOutcome:
        return self.outcomes["svm"]

    @property
    def software_cycles(self) -> int:
        return self.outcomes["software"].total_cycles

    @property
    def copydma_cycles(self) -> int:
        return self.outcomes["copydma"].total_cycles

    @property
    def svm_cycles(self) -> int:
        return self.outcomes["svm"].total_cycles

    @property
    def ideal_cycles(self) -> int:
        return self.outcomes["ideal"].total_cycles

    # --------------------------------------------------------- derived
    @property
    def speedup_vs_software(self) -> float:
        return self.software_cycles / self.svm_cycles if self.svm_cycles else 0.0

    @property
    def speedup_vs_copydma(self) -> float:
        return self.copydma_cycles / self.svm_cycles if self.svm_cycles else 0.0

    @property
    def vm_overhead(self) -> float:
        """SVM fabric runtime normalised to the ideal accelerator (>= 1.0).

        Uses the fabric portion only (thread create/join software costs are
        excluded) so the ratio isolates the cost of address translation.
        """
        if not self.ideal_cycles:
            return 0.0
        return self.svm.fabric_cycles / self.ideal_cycles

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"workload": self.workload}
        for model, column in _MODEL_COLUMNS.items():
            if model in self.outcomes:
                row[column] = self.outcomes[model].total_cycles
        if "software" in self.outcomes and "svm" in self.outcomes:
            row["speedup_sw"] = round(self.speedup_vs_software, 2)
        if "copydma" in self.outcomes and "svm" in self.outcomes:
            row["speedup_dma"] = round(self.speedup_vs_copydma, 2)
        if "ideal" in self.outcomes and "svm" in self.outcomes:
            row["vm_overhead"] = round(self.vm_overhead, 3)
        if "svm" in self.outcomes:
            row["tlb_hit_rate"] = round(self.svm.tlb_hit_rate, 4)
        for model, outcome in self.outcomes.items():
            if model not in _MODEL_COLUMNS:
                row[model] = outcome.total_cycles
        return row


# ---------------------------------------------------------------------------
# Individual execution models
# ---------------------------------------------------------------------------
#: Valid values of the harness/experiment ``tier`` knob.
TIERS = ("auto", "event", "replay")


def _check_tier(tier: str) -> None:
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")


def _build_svm_system(spec: WorkloadSpec, config: HarnessConfig,
                      num_threads: int):
    """Build the platform + synthesized system for a single-process run.

    Shared by the event tier (:func:`run_svm`) and the replay tier
    (:func:`repro.fastpath.replay.replay_svm`), so both execute on an
    identically constructed system.
    """
    platform = Platform(config.platform)

    bound: List[BoundWorkload] = []
    thread_specs: List[ThreadSpec] = []
    for i in range(num_threads):
        instance = replace(spec, name=f"{spec.name}{i}" if num_threads > 1 else spec.name)
        workload = instance.bind(platform.space)
        bound.append(workload)
        thread_specs.append(config.thread_spec(
            name=f"hwt{i}", kernel=spec.kernel,
            footprint_bytes=workload.footprint_bytes))

    system_spec = SystemSpec(name=f"{spec.name}-x{num_threads}",
                             threads=thread_specs,
                             platform=config.platform,
                             shared_walker=config.shared_walker,
                             shared_tlb=(config.shared_tlb
                                         or config.host_shares_tlb),
                             host_shares_tlb=config.host_shares_tlb)
    system = SystemSynthesizer().synthesize(system_spec, platform=platform)
    return platform, system, bound


def run_svm(spec: WorkloadSpec, config: HarnessConfig | None = None,
            num_threads: int = 1, tier: str = "event") -> SVMResult:
    """Run the workload on the synthesized SVM hardware-thread system.

    With ``num_threads`` > 1 the workload is instantiated once per thread
    (weak scaling: each thread works on its own buffers).

    ``tier`` selects the execution engine: ``"event"`` (the default) runs the
    full event-driven simulation, ``"replay"`` demands the vectorized
    record/replay fast path (raising
    :class:`~repro.fastpath.replay.TierUnavailable` when the run is not
    eligible), and ``"auto"`` uses replay when eligible, falling back to the
    event tier otherwise (the reason lands on ``SVMResult.tier_reason``).
    Both tiers produce identical results — the differential suite pins this.
    """
    config = config or HarnessConfig()
    _check_tier(tier)
    tier_reason: Optional[str] = None
    if tier != "event":
        from ..fastpath.engine import ReplayFault
        from ..fastpath.replay import TierUnavailable, replay_svm
        try:
            return replay_svm(spec, config, num_threads)
        except (TierUnavailable, ReplayFault) as reason:
            if tier == "replay":
                raise
            tier_reason = str(reason)
            GLOBAL_TRACER.log(0, "harness", "tier_fallback", tier_reason)

    platform, system, bound = _build_svm_system(spec, config, num_threads)
    kernels = {f"hwt{i}": bound[i].make_kernel() for i in range(num_threads)}
    result = system.run(kernels, pin_all=config.pin_all,
                        prefetch_pages=config.prefetch_pages)

    fabric = max(result.per_thread_fabric_cycles.values()) if result.per_thread_fabric_cycles else 0
    svm = _svm_result(result, fabric)
    svm.tier_reason = tier_reason
    return svm


def _svm_result(result: SystemRunResult, fabric_cycles: int,
                telemetry: Optional[TelemetryTrace] = None) -> SVMResult:
    """Aggregate a system run's statistics into an :class:`SVMResult`."""
    stats = result.stats
    hits = _sum_stat(stats, "mmu.", "tlb_hits")
    misses = _sum_stat(stats, "mmu.", "tlb_misses")
    faults = _sum_stat(stats, "mmu.", "faults")
    hit_rate = hits / (hits + misses) if (hits + misses) else 0.0
    return SVMResult(total_cycles=result.total_cycles,
                     fabric_cycles=fabric_cycles,
                     tlb_hit_rate=hit_rate,
                     tlb_misses=misses,
                     faults=faults,
                     software_overhead_cycles=result.software_overhead_cycles,
                     system_result=result,
                     walks=_sum_stat(stats, "ptw.", "walks_completed"),
                     walker_levels=_sum_stat(stats, "ptw.", "levels_fetched"),
                     walker_cycles=_sum_stat(stats, "ptw.", "walk_cycles"),
                     miss_stall_cycles=_sum_stat(stats, "mmu.",
                                                 "miss_latency.total"),
                     prefetches_issued=_sum_stat(stats, "mmu.",
                                                 "prefetches_issued"),
                     prefetch_hits=_sum_stat(stats, "mmu.", "prefetch_hits"),
                     context_switches=_sum_stat(stats, "mmu.",
                                                "context_switches"),
                     telemetry=telemetry)


def _build_mp_system(mp: MultiProcessSpec, config: HarnessConfig):
    """Build the platform + system + per-process state for an N-process run.

    Shared by the event tier (:func:`run_multiprocess`) and the replay tier
    (:func:`repro.fastpath.replay.replay_multiprocess`).
    """
    platform = Platform(config.platform)

    process_names = [platform.process_name] + [
        f"{platform.process_name}{index}"
        for index in range(1, mp.num_processes)]
    spaces = [platform.space]
    for name in process_names[1:]:
        spaces.append(platform.kernel.create_process(name))
    handlers = [platform.kernel.fault_handler(name) for name in process_names]
    bound = [spec.bind(spaces[index]) for index, spec in enumerate(mp.specs)]

    thread_spec = config.thread_spec(
        "hwt0", mp.kernel,
        footprint_bytes=max(b.footprint_bytes for b in bound))
    system_spec = SystemSpec(name=f"{mp.name}-mp", threads=[thread_spec],
                             platform=config.platform,
                             shared_walker=config.shared_walker,
                             shared_tlb=True,
                             host_shares_tlb=config.host_shares_tlb)
    system = SystemSynthesizer().synthesize(system_spec, platform=platform)
    synth = system.threads["hwt0"]
    for space in spaces[1:]:
        # The MMU serves every process, so every space's unmaps must reach it.
        space.register_shootdown_target(synth.mmu)

    if config.pin_all:
        # The delegate pins its own (first) process; the thread serves every
        # process, so the other spaces pin up front too, costs charged alike.
        for space in spaces[1:]:
            for area in list(space.areas):
                space.pin(area)
                platform.kernel.cost_pin(area, space)

    op_lists = [run_functional(b.make_kernel()) for b in bound]
    return platform, system, spaces, handlers, op_lists


def run_multiprocess(mp: MultiProcessSpec,
                     config: HarnessConfig | None = None,
                     flush_on_switch: bool = False,
                     tier: str = "event") -> SVMResult:
    """Run an N-process workload on one SVM thread with a shared fabric TLB.

    Each process gets its own address space (and demand-paging fault
    handler); the OS time-slices the single accelerator between them per the
    plan ``mp.policy`` produces through
    :func:`repro.workloads.multiprocess.slice_plan` (round-robin,
    weighted-fair, fault-aware, or any registered policy — weighted by
    ``mp.weights``).  At every slice boundary outstanding traffic is fenced,
    the context-switch cost is charged and the MMU is re-pointed at the next
    process's page table.  By default the shared fabric TLB is *not* flushed,
    so every space's ASID-tagged translations contend for (and survive in)
    the same entries; ``flush_on_switch=True`` models a TLB without ASID
    isolation, which must flush at every switch to stay correct (the
    canonical ``svm`` model's semantics).  With
    ``config.host_shares_tlb`` the host CPU's pinning and fault-service page
    touches probe and refill the same TLB.

    ``tier`` selects the execution engine exactly as in :func:`run_svm`;
    adaptive policies always fall back to the event tier (the telemetry bus
    needs live slices) and ``SVMResult.tier_reason`` says so explicitly.

    **Static vs adaptive scheduling.**  Policies without an online feedback
    hook (``adaptive = False``) are planned exactly as before: the whole
    timeline is computed up front from static estimates and replayed — this
    path is bit-identical to previous releases.  Adaptive policies
    (``adaptive = True``, e.g. ``adaptive-fault``/``miss-fair``/
    ``host-aware``) instead run epoch by epoch: a :class:`TelemetryBus`
    samples live per-process counters at every fence-drained slice boundary,
    and ``policy.observe(epoch_stats)`` replans the next epoch's quanta from
    measured contention.  The resulting per-epoch trace is returned on
    ``SVMResult.telemetry``.
    """
    config = config or HarnessConfig()
    _check_tier(tier)
    tier_reason: Optional[str] = None
    if tier != "event":
        from ..fastpath.engine import ReplayFault
        from ..fastpath.replay import TierUnavailable, replay_multiprocess
        try:
            return replay_multiprocess(mp, config,
                                       flush_on_switch=flush_on_switch)
        except (TierUnavailable, ReplayFault) as reason:
            if tier == "replay":
                raise
            tier_reason = str(reason)
            GLOBAL_TRACER.log(0, "harness", "tier_fallback", tier_reason)

    platform, system, spaces, handlers, op_lists = _build_mp_system(mp, config)
    synth = system.threads["hwt0"]

    def on_switch(process: int) -> int:
        if flush_on_switch:
            synth.mmu.flush()
        synth.mmu.activate(spaces[process].page_table, handlers[process])
        return platform.kernel.cost_context_switch()

    policy = get_policy(mp.policy)
    bus: Optional[TelemetryBus] = None
    if policy.adaptive:
        bus = TelemetryBus(
            platform.sim,
            processes=[ProcessInfo(name=str(index),
                                   asid=spaces[index].page_table.asid,
                                   fault_handler=handlers[index].name)
                       for index in range(mp.num_processes)],
            base_quantum=mp.quantum)
        kernel = adaptive_time_sliced_kernel(
            op_lists, policy,
            SchedulerConfig(num_cores=1, quantum=mp.quantum,
                            context_switch_cycles=0),
            bus=bus, on_switch=on_switch, weights=mp.weights,
            page_size=config.platform.page_size)
    else:
        plan = slice_plan(op_lists, quantum=mp.quantum, policy=mp.policy,
                          weights=mp.weights,
                          page_size=config.platform.page_size)
        kernel = time_sliced_kernel(plan, on_switch, initial_process=0)

    result = system.run({"hwt0": kernel}, pin_all=config.pin_all,
                        prefetch_pages=config.prefetch_pages)
    fabric = max(result.per_thread_fabric_cycles.values(), default=0)
    svm = _svm_result(result, fabric,
                      telemetry=bus.trace if bus is not None else None)
    svm.tier_reason = tier_reason
    return svm


def run_ideal(spec: WorkloadSpec, config: HarnessConfig | None = None) -> int:
    """Run on the ideal physically-addressed accelerator; returns cycles."""
    config = config or HarnessConfig()
    platform = Platform(config.platform)
    resident = replace(spec, residency=1.0)   # no MMU -> everything resident
    workload = resident.bind(platform.space)
    accel = IdealAccelerator()
    result = accel.run(platform, workload.make_kernel())
    return result.fabric_cycles


def run_copydma(spec: WorkloadSpec,
                config: HarnessConfig | None = None) -> CopyDMARunResult:
    """Run the conventional copy-based accelerator baseline."""
    config = config or HarnessConfig()
    platform = Platform(config.platform)
    resident = replace(spec, residency=1.0)
    workload = resident.bind(platform.space)
    accel = CopyDMAAccelerator()
    return accel.run(platform, workload.make_kernel(),
                     copy_in_bytes=workload.copy_in_bytes,
                     copy_out_bytes=workload.copy_out_bytes,
                     marshal_items=workload.marshal_items)


def run_software(spec: WorkloadSpec, config: HarnessConfig | None = None,
                 num_threads: int = 1) -> int:
    """Run the software baseline; returns fabric-equivalent cycles."""
    config = config or HarnessConfig()
    platform = Platform(config.platform)
    cpu = SoftwareCPU(config.software, clocks=config.platform.clocks)
    resident = replace(spec, residency=1.0)

    streams = []
    schedule = None
    for i in range(num_threads):
        instance = replace(resident, name=f"{resident.name}{i}"
                           if num_threads > 1 else resident.name)
        workload = instance.bind(platform.space)
        schedule = workload.schedule
        streams.append(run_functional(workload.make_kernel()))
    if num_threads == 1:
        return cpu.run_ops(streams[0], schedule=schedule).fabric_cycles
    return cpu.run_threads(streams, schedule=schedule).fabric_cycles


# ---------------------------------------------------------------------------
# Full comparison
# ---------------------------------------------------------------------------
def compare(spec: WorkloadSpec, config: HarnessConfig | None = None,
            runner: Optional["SweepRunner"] = None,
            models: Optional[Sequence[str]] = None) -> ComparisonResult:
    """Run execution models on one workload (Table 3 / Fig. 4 rows).

    ``models`` defaults to the paper's four; any name registered with
    :func:`repro.models.register_model` is accepted.  Each model builds a
    fresh platform, so the runs are independent; with a
    :class:`repro.exec.SweepRunner` they are dispatched as concurrent (and
    memoizable) jobs, with identical results.
    """
    from ..exec.jobs import ExperimentJob
    from .sweep import Sweep

    config = config or HarnessConfig()
    names = (tuple(dict.fromkeys(models)) if models is not None
             else CANONICAL_MODELS)
    sweep = Sweep(label="compare")
    for name in names:
        sweep.add(ExperimentJob(name, spec, config), model=name)
    outcomes = sweep.run(runner)
    return ComparisonResult(workload=spec.name,
                            outcomes={name: outcomes.get(model=name)
                                      for name in names})
