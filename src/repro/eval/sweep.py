"""Declarative sweeps: named axes in, coordinate-keyed outcomes out.

The evaluation is a grid of (execution model × workload × configuration)
points.  Historically every figure flattened its grid into a positional job
list and reassembled the results with an order-coupled ``iter``/``next``
dance; this module replaces that with three small pieces:

* :class:`Point` — one labeled experiment point: ``coords`` (a mapping of
  axis name to value, e.g. ``kernel="vecadd", tlb_entries=16``) plus the
  :class:`~repro.exec.jobs.ExperimentJob` that evaluates it,
* :class:`Sweep` — an ordered collection of points.  ``run()`` dispatches
  every job through a :class:`~repro.exec.runner.SweepRunner` (parallel,
  memoized) or a plain serial loop, and returns the outcomes keyed by
  coordinates,
* :class:`Grid` — a cartesian-product builder: declare the axes once and a
  factory turning one coordinate assignment into a job.

Results come back as a :class:`SweepOutcomes`, addressed by coordinates
(``outcomes.get(kernel="vecadd", tlb_entries=16)``) or extracted as ordered
series along one axis (``outcomes.series("tlb_entries", "tlb_hit_rate",
kernel="vecadd")``) — no positional regrouping anywhere.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Hashable, Iterable, Iterator, List,
                    Mapping, Optional, Sequence, Tuple, Union)

from ..exec.jobs import ExperimentJob, run_job
from ..exec.runner import SweepRunner

#: Canonical coordinate form: axis items sorted by axis name, hashable.
Coords = Tuple[Tuple[str, Hashable], ...]


def make_coords(axes: Union[Mapping[str, Hashable],
                            Iterable[Tuple[str, Hashable]]]) -> Coords:
    """Normalise axis->value pairs into the canonical tuple form.

    Accepts a mapping or any iterable of ``(axis, value)`` pairs (e.g. the
    coordinate tuples :mod:`repro.dse` candidates carry), so callers can
    re-canonicalise coordinates without caring how they were built.
    """
    items = axes.items() if isinstance(axes, Mapping) else list(axes)
    if not items:
        raise ValueError("a sweep point needs at least one coordinate")
    return tuple(sorted(items))


@dataclass(frozen=True)
class Point:
    """One labeled experiment point of a sweep."""

    coords: Coords
    job: ExperimentJob

    def coord(self, name: str) -> Hashable:
        for axis, value in self.coords:
            if axis == name:
                return value
        raise KeyError(f"point has no axis {name!r}; "
                       f"axes: {[axis for axis, _ in self.coords]}")


class Sweep:
    """An ordered, duplicate-free collection of labeled points."""

    def __init__(self, label: Optional[str] = None):
        self.label = label
        self._points: List[Point] = []
        self._seen: Dict[Coords, int] = {}

    def add(self, job: ExperimentJob, **coords: Hashable) -> Point:
        """Append one point; coordinates must be unique within the sweep."""
        key = make_coords(coords)
        if key in self._seen:
            raise ValueError(f"duplicate sweep point {dict(key)!r}")
        point = Point(coords=key, job=job)
        self._seen[key] = len(self._points)
        self._points.append(point)
        return point

    @property
    def points(self) -> Tuple[Point, ...]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def _coords_kwargs(self, method: Callable[..., Any]) -> Dict[str, Any]:
        """``coords=`` for runner methods that accept it (results-store
        labeling); older or custom runners without the parameter get none."""
        try:
            parameters = inspect.signature(method).parameters
        except (TypeError, ValueError):
            return {}
        if "coords" not in parameters:
            return {}
        return {"coords": [dict(p.coords) for p in self._points]}

    def run(self, runner: Optional[SweepRunner] = None) -> "SweepOutcomes":
        """Evaluate every point; serial and runner-backed results are identical."""
        runner = runner if runner is not None else SweepRunner(jobs=1, cache=None)
        results = runner.map(run_job, [p.job for p in self._points],
                             label=self.label or "sweep",
                             **self._coords_kwargs(runner.map))
        return SweepOutcomes(self._points, results)

    def run_stream(self, runner: Optional[SweepRunner] = None
                   ) -> Iterator[Tuple[Point, Any]]:
        """Evaluate every point, yielding ``(point, outcome)`` incrementally.

        With a streaming runner (one providing ``map_stream``, e.g. the
        distributed runner) pairs arrive in completion order as the fleet
        reports them; otherwise the whole sweep is evaluated first and then
        yielded in declaration order.  Either way every point is yielded
        exactly once, with the same outcomes ``run()`` would return —
        ``SweepOutcomes(points, results)`` rebuilt from the collected pairs
        equals ``run()``'s.
        """
        runner = runner if runner is not None else SweepRunner(jobs=1, cache=None)
        label = self.label or "sweep"
        jobs = [p.job for p in self._points]
        stream = getattr(runner, "map_stream", None)
        if stream is None:
            for point, result in zip(
                    self._points,
                    runner.map(run_job, jobs, label=label,
                               **self._coords_kwargs(runner.map))):
                yield point, result
            return
        for position, result in stream(run_job, jobs, label=label,
                                       **self._coords_kwargs(stream)):
            yield self._points[position], result


class Grid:
    """Cartesian axes plus a job factory — the declarative sweep builder.

    >>> grid = Grid(kernel=("vecadd", "matmul"), tlb_entries=(8, 16))
    >>> sweep = grid.sweep(lambda kernel, tlb_entries: ExperimentJob(
    ...     "svm", specs[kernel], HarnessConfig(tlb_entries=tlb_entries)))

    The factory receives one keyword argument per axis and returns the job
    for that point, or ``None`` to skip it (sparse grids).
    """

    def __init__(self, **axes: Sequence[Hashable]):
        if not axes:
            raise ValueError("a grid needs at least one axis")
        # Materialise exactly once: one-shot iterables must not be consumed
        # by validation and then re-listed into an empty axis.
        self._axes: Dict[str, List[Hashable]] = {name: list(values)
                                                 for name, values in axes.items()}
        for name, values in self._axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    @property
    def axes(self) -> Dict[str, List[Hashable]]:
        return {name: list(values) for name, values in self._axes.items()}

    def size(self) -> int:
        total = 1
        for values in self._axes.values():
            total *= len(values)
        return total

    def sweep(self, build: Callable[..., Optional[ExperimentJob]],
              label: Optional[str] = None) -> Sweep:
        """Expand the grid into a :class:`Sweep` via the job factory."""
        sweep = Sweep(label=label)
        names = list(self._axes)
        for combo in itertools.product(*self._axes.values()):
            coords = dict(zip(names, combo))
            job = build(**coords)
            if job is not None:
                sweep.add(job, **coords)
        return sweep


class SweepOutcomes:
    """Outcomes of a sweep, addressed by coordinates instead of position."""

    def __init__(self, points: Sequence[Point], results: Sequence[Any]):
        if len(points) != len(results):
            raise ValueError("one result per point required")
        self._points = list(points)
        self._data: Dict[Coords, Any] = {p.coords: r
                                         for p, r in zip(points, results)}
        # Axis values in first-seen order, so series() preserves the order
        # the sweep was declared with.
        self._axes: Dict[str, List[Hashable]] = {}
        for point in self._points:
            for axis, value in point.coords:
                values = self._axes.setdefault(axis, [])
                if value not in values:
                    values.append(value)

    # -------------------------------------------------------------- lookup
    def get(self, **coords: Hashable) -> Any:
        """The outcome at exactly these coordinates."""
        key = make_coords(coords)
        try:
            return self._data[key]
        except KeyError:
            raise KeyError(f"no sweep point at {dict(key)!r}; "
                           f"axes: {self.axes()}") from None

    def __getitem__(self, coords: Coords) -> Any:
        return self._data[coords]

    def __contains__(self, coords: Coords) -> bool:
        return coords in self._data

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Coords]:
        return (p.coords for p in self._points)

    def items(self) -> Iterator[Tuple[Dict[str, Hashable], Any]]:
        """(coords dict, outcome) pairs in sweep order."""
        return ((dict(p.coords), self._data[p.coords]) for p in self._points)

    def outcomes(self) -> List[Any]:
        """All outcomes in sweep order."""
        return [self._data[p.coords] for p in self._points]

    # -------------------------------------------------------------- records
    def to_records(self) -> List[Dict[str, Any]]:
        """One tidy row dict per point: coordinate columns + outcome record.

        Outcomes providing ``to_record`` (every
        :class:`~repro.models.RunOutcome`) expand into the canonical flat
        schema; anything else (scalar metrics, custom objects) lands under
        a ``value`` column.  This is the same per-point row the results
        store persists, so in-process tables and ``repro query`` output
        line up column-for-column.
        """
        rows: List[Dict[str, Any]] = []
        for point in self._points:
            outcome = self._data[point.coords]
            coords = dict(point.coords)
            to_record = getattr(outcome, "to_record", None)
            if callable(to_record):
                rows.append(to_record(coords))
            else:
                rows.append({**coords, "value": outcome})
        return rows

    def to_table(self, title: str = "", fmt: str = "table",
                 columns: Optional[Sequence[str]] = None) -> str:
        """The per-point rows rendered via :func:`~repro.eval.report.format_output`."""
        from .report import format_output
        return format_output(self.to_records(), columns=columns, fmt=fmt,
                             title=title)

    # --------------------------------------------------------------- slices
    def axes(self) -> Dict[str, List[Hashable]]:
        """Axis name -> values in first-seen order."""
        return {name: list(values) for name, values in self._axes.items()}

    def axis(self, name: str) -> List[Hashable]:
        if name not in self._axes:
            raise KeyError(f"unknown axis {name!r}; axes: {list(self._axes)}")
        return list(self._axes[name])

    def select(self, **fixed: Hashable) -> "SweepOutcomes":
        """The sub-sweep matching the fixed coordinates."""
        fixed_items = set(fixed.items())
        points = [p for p in self._points if fixed_items <= set(p.coords)]
        return SweepOutcomes(points, [self._data[p.coords] for p in points])

    def series(self, over: str, value: Any = None,
               **fixed: Hashable) -> List[Any]:
        """Outcomes (or one extracted metric) along axis ``over``.

        All other axes must be pinned by ``fixed``.  ``value`` selects what
        to extract: ``None`` returns the outcomes themselves, a string reads
        that attribute, a callable is applied to each outcome.
        """
        out = []
        for axis_value in self.axis(over):
            outcome = self.get(**{over: axis_value, **fixed})
            if value is None:
                out.append(outcome)
            elif callable(value):
                out.append(value(outcome))
            else:
                out.append(getattr(outcome, value))
        return out
