"""Benchmark suite + regression gate (``repro bench``).

A small, serial, deterministic slice of the benchmark surface: each entry
runs one experiment at tiny scale and reports

* ``wall_seconds`` — how long producing it took on this machine, and
* ``metrics`` — cycle counts extracted from the result.  These are exact
  simulator outputs: any drift at all is a code change, and growth beyond
  the threshold is a performance regression of the *modelled* system.

``repro bench`` writes the records to ``BENCH_<sha>.json`` (the CI bench job
uploads it as an artifact) and, given ``--baseline benchmarks/baseline.json``,
fails when wall time or any cycle metric regresses more than the threshold
(default 20%) — the same check, locally and in CI.  ``--write-baseline``
refreshes the committed baseline; CI wall baselines should be refreshed from
a downloaded CI artifact, not a laptop (see README, "Benchmark CI").
"""

from __future__ import annotations

import json
import os
import platform as platform_mod
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .harness import HarnessConfig

#: Relative growth tolerated before a metric counts as regressed.
DEFAULT_THRESHOLD = 0.20

#: Baseline wall entries are *budgets*, not machine-exact timings: measured
#: wall seconds are padded by this factor (with a floor) when a baseline is
#: written, so routine cross-machine variance cannot trip the gate while
#: order-of-magnitude slowdowns still do.  Cycle metrics stay exact.
WALL_BUDGET_FACTOR = 5.0
WALL_BUDGET_MIN_SECONDS = 2.0


# ---------------------------------------------------------------------------
# Suite definition
# ---------------------------------------------------------------------------
def _bench_table3(scale: str = "tiny") -> Dict[str, int]:
    from .experiments import table3_speedups
    rows = table3_speedups(scale=scale,
                           kernels=("vecadd", "matmul", "linked_list"))
    return {"svm_cycles": sum(r["svm_thread"] for r in rows),
            "software_cycles": sum(r["software"] for r in rows),
            "copydma_cycles": sum(r["copy_dma"] for r in rows)}


def _bench_fig5(scale: str = "tiny") -> Dict[str, int]:
    from .experiments import fig5_tlb_sweep
    # Pinned to the event tier: this entry times the event-driven simulator
    # itself (the ``fig5_replay`` entry runs the identical sweep through the
    # fastpath replay tier, so the two entries' wall clocks measure the
    # two-tier speedup and their metrics must be identical).
    series = fig5_tlb_sweep(kernels=("vecadd", "random_access"),
                            tlb_sizes=(8, 32), scale=scale, tier="event")
    return {"fabric_cycles": sum(sum(s["fabric_cycles"])
                                 for s in series.values())}


def _bench_fig5_replay(scale: str = "tiny") -> Dict[str, int]:
    from ..fastpath.record import clear_program_cache
    from .experiments import fig5_tlb_sweep
    # Identical sweep to ``fig5_tlb_sweep`` through the replay tier.  The
    # program cache is cleared first so the entry times a cold record plus
    # the replays (streams are shared across TLB sizes within the sweep —
    # the record-once amortization the two-tier seam exists for).
    clear_program_cache()
    series = fig5_tlb_sweep(kernels=("vecadd", "random_access"),
                            tlb_sizes=(8, 32), scale=scale, tier="replay")
    return {"fabric_cycles": sum(sum(s["fabric_cycles"])
                                 for s in series.values())}


def _bench_fig7(scale: str = "tiny") -> Dict[str, int]:
    from .experiments import fig7_scaling
    series = fig7_scaling(kernels=("vecadd",), thread_counts=(1, 2),
                          scale=scale)
    return {"total_cycles": sum(sum(s["total_cycles"])
                                for s in series.values())}


def _bench_fig11(scale: str = "tiny") -> Dict[str, int]:
    from ..models import ALL_MODELS
    from .experiments import fig11_model_ablation
    # Pinned to the event tier (see ``_bench_fig5``).
    rows = fig11_model_ablation(scale=scale, kernels=("vecadd",),
                                tier="event")
    return {f"{model}_cycles".replace("-", "_"): rows[0][model]
            for model in ALL_MODELS}


def _bench_fig11_replay(scale: str = "tiny") -> Dict[str, int]:
    from ..fastpath.record import clear_program_cache
    from ..models import ALL_MODELS
    from .experiments import fig11_model_ablation
    # Identical ablation to ``fig11_models`` through the replay tier.  The
    # single-tier models (ideal/copydma/software) run the event simulator in
    # both entries; the SVM family replays recorded streams here.
    clear_program_cache()
    rows = fig11_model_ablation(scale=scale, kernels=("vecadd",),
                                tier="replay")
    return {f"{model}_cycles".replace("-", "_"): rows[0][model]
            for model in ALL_MODELS}


def _bench_multiprocess(scale: str = "tiny") -> Dict[str, int]:
    from ..workloads import duet
    from .harness import run_multiprocess
    result = run_multiprocess(duet("vecadd", "linked_list", scale=scale,
                                   quantum=5000),
                              HarnessConfig(tlb_entries=16))
    return {"total_cycles": result.total_cycles,
            "tlb_misses": result.tlb_misses,
            "context_switches": result.context_switches}


def _bench_fig12(scale: str = "tiny") -> Dict[str, int]:
    from .experiments import fig12_contention
    rows = fig12_contention(scale=scale, process_counts=(4,),
                            policies=("round-robin", "weighted-fair"),
                            host_shared=(False, True),
                            models=("svm", "svm-shared-tlb"))
    return {
        "svm_cycles": sum(r["svm"] for r in rows),
        "svm_shared_tlb_cycles": sum(r["svm-shared-tlb"] for r in rows),
        "tlb_misses": sum(r["tlb_misses[svm]"]
                          + r["tlb_misses[svm-shared-tlb]"] for r in rows),
        "context_switches": sum(r["context_switches[svm]"] for r in rows),
    }


def _bench_fig13(scale: str = "tiny") -> Dict[str, int]:
    from .experiments import fig13_adaptive_scheduling
    rows = fig13_adaptive_scheduling(scale=scale, process_counts=(4,),
                                     policies=("round-robin",
                                               "adaptive-fault",
                                               "miss-fair", "host-aware"),
                                     models=("svm-shared-tlb",))
    return {
        "shared_tlb_cycles": sum(r["svm-shared-tlb"] for r in rows),
        "tlb_misses": sum(r["tlb_misses[svm-shared-tlb]"] for r in rows),
        "adaptive_epochs": sum(r["epochs[svm-shared-tlb]"] for r in rows),
    }


def _bench_fig14(scale: str = "tiny") -> Dict[str, int]:
    # A budgeted sample of the full 10^5-point fig14 space: the seeded
    # sampler makes the cohort — and therefore every metric — exactly
    # reproducible, so the freshness gate pins the recovered front.
    from .experiments import fig14_adaptive_dse
    out = fig14_adaptive_dse(scale=scale, budget=24, seed=0)
    return {
        "evaluations": out["evaluations"],
        "front_points": len(out["front"]),
        "front_cycles": sum(p["cycles"] for p in out["front"]),
        "front_miss_stall": sum(p["miss_stall_cycles"] for p in out["front"]),
    }


#: name -> metric producer (each takes the workload scale).  Serial and tiny
#: on purpose for the per-push gate: cheap enough to run on every commit.
#: The scheduled default-scale job reruns the contention entries with
#: ``scale="default"`` (no baseline gate — artifacts only).
BENCH_SUITE: Dict[str, Callable[[str], Dict[str, int]]] = {
    "table3_tiny": _bench_table3,
    "fig5_tlb_sweep": _bench_fig5,
    "fig5_replay": _bench_fig5_replay,
    "fig7_scaling": _bench_fig7,
    "fig11_models": _bench_fig11,
    "fig11_replay": _bench_fig11_replay,
    "multiprocess_shared_tlb": _bench_multiprocess,
    "fig12_contention": _bench_fig12,
    "fig13_adaptive": _bench_fig13,
    "fig14_dse": _bench_fig14,
}


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------
@dataclass
class BenchReport:
    """One ``repro bench`` invocation's records plus provenance."""

    sha: str
    records: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"sha": self.sha,
                "python": platform_mod.python_version(),
                "machine": platform_mod.machine(),
                "records": self.records}


def git_sha() -> str:
    """Commit identity for the output filename (CI env var, then git)."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha[:12]
    try:
        out = subprocess.run(["git", "rev-parse", "--short=12", "HEAD"],
                             capture_output=True, text=True, timeout=10)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "local"


def run_suite(progress: Optional[Callable[[str], None]] = None,
              scale: str = "tiny",
              only: Optional[List[str]] = None) -> BenchReport:
    """Run suite entries serially; returns the report.

    ``only`` restricts the run to the named entries (unknown names raise);
    ``scale`` selects the workload size class — the committed baseline is
    tiny-scale, so gate comparisons only make sense at ``tiny``, while the
    scheduled CI job runs the contention entries at ``default`` scale purely
    for artifact tracking.
    """
    if only is not None:
        unknown = set(only) - set(BENCH_SUITE)
        if unknown:
            raise KeyError(f"unknown benchmark entries {sorted(unknown)}; "
                           f"suite: {', '.join(BENCH_SUITE)}")
    report = BenchReport(sha=git_sha())
    for name, func in BENCH_SUITE.items():
        if only is not None and name not in only:
            continue
        started = time.perf_counter()
        metrics = func(scale)
        elapsed = time.perf_counter() - started
        report.records[name] = {"wall_seconds": round(elapsed, 4),
                                "metrics": metrics}
        if progress is not None:
            progress(f"  {name:<26s} {elapsed:7.2f}s  "
                     + "  ".join(f"{k}={v}" for k, v in metrics.items()))
    return report


# ---------------------------------------------------------------------------
# Comparing
# ---------------------------------------------------------------------------
def compare(current: Dict[str, object], baseline: Dict[str, object],
            threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    A metric regresses when it *grows* beyond ``baseline * (1 + threshold)``
    — cycle counts and wall seconds are both "lower is better".  Records or
    metrics present in the baseline but missing from the current run are
    regressions too (a silently skipped benchmark must not pass the gate).
    Returns human-readable findings; empty means the gate passes.
    """
    problems: List[str] = []
    current_records = current.get("records", {})
    for name, base_record in baseline.get("records", {}).items():
        record = current_records.get(name)
        if record is None:
            problems.append(f"{name}: benchmark missing from current run")
            continue
        pairs: List[Tuple[str, float, float]] = [
            ("wall_seconds", float(record["wall_seconds"]),
             float(base_record["wall_seconds"]))]
        base_metrics = base_record.get("metrics", {})
        metrics = record.get("metrics", {})
        for metric, base_value in base_metrics.items():
            if metric not in metrics:
                problems.append(f"{name}: metric {metric!r} missing "
                                f"from current run")
                continue
            pairs.append((metric, float(metrics[metric]), float(base_value)))
        for metric, value, base_value in pairs:
            if base_value <= 0:
                continue
            growth = value / base_value - 1.0
            if growth > threshold:
                problems.append(
                    f"{name}: {metric} regressed {growth:+.1%} "
                    f"({base_value:g} -> {value:g}, "
                    f"threshold +{threshold:.0%})")
    return problems


def check_freshness(current: Dict[str, object],
                    baseline: Dict[str, object]) -> List[str]:
    """Exact-drift check: is the committed baseline still what the code does?

    Unlike :func:`compare` (a *regression* gate with a growth threshold,
    direction-sensitive), this flags **any** difference between the
    baseline's cycle metrics and the current run's — improvements included:
    a faster simulator with a stale baseline silently widens the regression
    headroom until the threshold means nothing.  Wall seconds are machine
    budgets, not code outputs, and are ignored.  Returns human-readable
    findings; empty means the baseline is fresh.
    """
    problems: List[str] = []
    current_records = current.get("records", {})
    baseline_records = baseline.get("records", {})
    for name in sorted(set(current_records) | set(baseline_records)):
        record = current_records.get(name)
        base_record = baseline_records.get(name)
        if base_record is None:
            problems.append(f"{name}: benchmark missing from baseline "
                            "(refresh with --write-baseline)")
            continue
        if record is None:
            problems.append(f"{name}: benchmark in baseline but not in "
                            "current suite")
            continue
        metrics = record.get("metrics", {})
        base_metrics = base_record.get("metrics", {})
        for metric in sorted(set(metrics) | set(base_metrics)):
            if metric not in base_metrics:
                problems.append(f"{name}: metric {metric!r} missing from "
                                "baseline")
            elif metric not in metrics:
                problems.append(f"{name}: metric {metric!r} in baseline but "
                                "not in current run")
            elif metrics[metric] != base_metrics[metric]:
                problems.append(
                    f"{name}: {metric} drifted "
                    f"({base_metrics[metric]:g} -> {metrics[metric]:g})")
    return problems


def summarize_drift(current: Dict[str, object],
                    baseline: Optional[Dict[str, object]]) -> str:
    """Markdown drift table for a CI step summary.

    One row per (benchmark, cycle metric) whose value differs from the
    committed baseline — the human-readable face of :func:`check_freshness`,
    rendered for ``$GITHUB_STEP_SUMMARY`` by the ``bench-refresh`` job so a
    maintainer can see at a glance what the ready-to-commit baseline artifact
    would change.  With no baseline (or no drift) it says so instead.
    """
    lines = ["## Benchmark baseline drift", ""]
    if baseline is None:
        lines.append("No committed baseline to compare against; the "
                     "refreshed baseline artifact seeds one.")
        return "\n".join(lines) + "\n"
    current_records = current.get("records", {})
    baseline_records = baseline.get("records", {})
    rows: List[Tuple[str, str, object, object]] = []
    for name in sorted(set(current_records) | set(baseline_records)):
        metrics = current_records.get(name, {}).get("metrics", {})
        base_metrics = baseline_records.get(name, {}).get("metrics", {})
        for metric in sorted(set(metrics) | set(base_metrics)):
            value = metrics.get(metric, "—")
            base = base_metrics.get(metric, "—")
            if value != base:
                rows.append((name, metric, base, value))
    if not rows:
        lines.append("Committed baseline is **fresh**: every cycle metric "
                     "matches this run exactly.")
        return "\n".join(lines) + "\n"
    lines += [f"{len(rows)} metric(s) drifted — the `baseline-refresh` "
              "artifact contains the ready-to-commit refresh.", "",
              "| benchmark | metric | committed | this run | drift |",
              "|---|---|---:|---:|---:|"]
    for name, metric, base, value in rows:
        if isinstance(base, (int, float)) and isinstance(value, (int, float)) \
                and base:
            drift = f"{value / base - 1.0:+.2%}"
        else:
            drift = "n/a"
        lines.append(f"| {name} | {metric} | {base} | {value} | {drift} |")
    return "\n".join(lines) + "\n"


def load_report(path: str) -> Dict[str, object]:
    with open(path) as fh:
        return json.load(fh)


def write_report(report: BenchReport, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report.as_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")


def write_baseline(report: BenchReport, path: str) -> None:
    """Write ``report`` as a regression baseline: exact cycles, wall budgets."""
    data = report.as_dict()
    data["sha"] = "baseline"
    data["records"] = {                      # copy: never mutate the report
        name: {"metrics": dict(record["metrics"]),
               "wall_seconds": round(
                   max(float(record["wall_seconds"]) * WALL_BUDGET_FACTOR,
                       WALL_BUDGET_MIN_SECONDS), 2)}
        for name, record in data["records"].items()}
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")


__all__ = ["BENCH_SUITE", "BenchReport", "DEFAULT_THRESHOLD",
           "check_freshness", "compare", "git_sha", "load_report",
           "run_suite", "summarize_drift", "write_baseline", "write_report"]
