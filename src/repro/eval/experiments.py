"""Experiment definitions: one function per table / figure of the evaluation.

Every function returns plain Python data (lists of row dictionaries or
(x, series) structures) so it can be consumed by the benchmark harness, the
examples, tests, and EXPERIMENTS.md generation alike.  The experiment ids
follow the index in DESIGN.md.

Every sweep accepts an optional ``runner`` (:class:`repro.exec.SweepRunner`):
the per-kernel × per-config grid is flattened into independent
:class:`~repro.exec.jobs.ExperimentJob` points and dispatched in one batch,
so parallel workers and the memo cache see the whole grid at once.  Without
a runner the points evaluate serially in-process; results are identical
either way.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence

from ..core.dse import DesignSpaceExplorer, SweepAxes
from ..core.platform import Platform, PlatformConfig
from ..core.resources import ResourceModel
from ..core.spec import SystemSpec, ThreadSpec
from ..core.synthesis import SystemSynthesizer
from ..exec.jobs import ExperimentJob, run_job
from ..exec.runner import SweepRunner
from ..workloads.characterize import characterise
from ..workloads.specs import WorkloadSpec
from ..workloads.suite import pattern_classes, standard_suite, workload
from .harness import (HarnessConfig, assemble_comparison, comparison_jobs,
                      run_svm)


def _runner(runner: Optional[SweepRunner]) -> SweepRunner:
    """The caller's runner, or a plain serial one (no pool, no cache)."""
    return runner if runner is not None else SweepRunner(jobs=1, cache=None)


# ---------------------------------------------------------------------------
# Table 1 — synthesized system configurations and resource estimates
# ---------------------------------------------------------------------------
def table1_resources(scale: str = "tiny",
                     thread_counts: Sequence[int] = (1, 2, 4),
                     tlb_entries: Sequence[int] = (16, 32)) -> List[Dict[str, object]]:
    """Resource estimates of synthesized systems per kernel and configuration."""
    rows: List[Dict[str, object]] = []
    synthesizer = SystemSynthesizer()
    model = ResourceModel()
    for spec in standard_suite(scale):
        for num_threads in thread_counts:
            for entries in tlb_entries:
                threads = [ThreadSpec(name=f"hwt{i}", kernel=spec.kernel,
                                      tlb_entries=entries)
                           for i in range(num_threads)]
                system_spec = SystemSpec(name=f"{spec.kernel}-{num_threads}t-{entries}e",
                                         threads=threads)
                system = synthesizer.synthesize(system_spec)
                estimate = system.resource_estimate()
                utilisation = model.device.utilisation(estimate)
                rows.append({
                    "kernel": spec.kernel,
                    "threads": num_threads,
                    "tlb_entries": entries,
                    "luts": estimate.luts,
                    "ffs": estimate.ffs,
                    "bram_kb": round(estimate.bram_kb, 1),
                    "dsps": estimate.dsps,
                    "lut_util_pct": round(100 * utilisation["luts"], 1),
                    "fits": system.fits(),
                })
    return rows


# ---------------------------------------------------------------------------
# Table 2 — workload characterisation
# ---------------------------------------------------------------------------
def table2_workloads(scale: str = "default",
                     page_size: int = 4096) -> List[Dict[str, object]]:
    """Footprint, traffic and locality of every workload in the suite."""
    platform = Platform(PlatformConfig(page_size=page_size))
    patterns = {k: cls for cls, kernels in pattern_classes().items() for k in kernels}
    rows = []
    for spec in standard_suite(scale):
        bound = spec.bind(platform.space)
        result = characterise(bound, page_size=page_size,
                              pattern=patterns.get(spec.kernel, "?"))
        rows.append(result.as_row())
    return rows


# ---------------------------------------------------------------------------
# Table 3 / Fig. 4 — end-to-end comparison and speedups
# ---------------------------------------------------------------------------
def table3_speedups(scale: str = "default",
                    kernels: Optional[Sequence[str]] = None,
                    config: Optional[HarnessConfig] = None,
                    runner: Optional[SweepRunner] = None) -> List[Dict[str, object]]:
    """Software vs copy-DMA vs SVM thread vs ideal, for every workload."""
    config = config or HarnessConfig(auto_size_tlb=True)
    specs = [spec for spec in standard_suite(scale)
             if not kernels or spec.kernel in kernels]
    jobs = [job for spec in specs for job in comparison_jobs(spec, config)]
    outcomes = _runner(runner).map(run_job, jobs, label="table3")
    rows = []
    for i, spec in enumerate(specs):
        svm, ideal, copydma, software = outcomes[4 * i:4 * i + 4]
        rows.append(assemble_comparison(spec, svm, ideal, copydma,
                                        software).as_row())
    return rows


def fig4_speedup_bars(scale: str = "default",
                      kernels: Optional[Sequence[str]] = None,
                      config: Optional[HarnessConfig] = None,
                      runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Bar-chart series: speedup of the SVM thread over software and copy-DMA."""
    rows = table3_speedups(scale, kernels, config, runner=runner)
    return {
        "workloads": [r["workload"] for r in rows],
        "speedup_vs_software": [r["speedup_sw"] for r in rows],
        "speedup_vs_copydma": [r["speedup_dma"] for r in rows],
    }


# ---------------------------------------------------------------------------
# Fig. 5 — TLB size sweep
# ---------------------------------------------------------------------------
def fig5_tlb_sweep(kernels: Sequence[str] = ("vecadd", "matmul", "linked_list",
                                             "random_access"),
                   tlb_sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
                   scale: str = "tiny",
                   replacement: str = "lru",
                   runner: Optional[SweepRunner] = None) -> Dict[str, Dict[str, List]]:
    """TLB hit rate and fabric runtime vs TLB entries, per kernel."""
    specs = {kernel: workload(kernel, scale=scale) for kernel in kernels}
    jobs = [ExperimentJob("svm", specs[kernel],
                          HarnessConfig(tlb_entries=entries,
                                        tlb_replacement=replacement))
            for kernel in kernels for entries in tlb_sizes]
    results = iter(_runner(runner).map(run_job, jobs, label="fig5_tlb_sweep"))
    out: Dict[str, Dict[str, List]] = {}
    for kernel in kernels:
        points = [next(results) for _ in tlb_sizes]
        out[kernel] = {"tlb_entries": list(tlb_sizes),
                       "hit_rate": [p.tlb_hit_rate for p in points],
                       "fabric_cycles": [p.fabric_cycles for p in points]}
    return out


def fig5_replacement_ablation(kernel: str = "random_access",
                              tlb_sizes: Sequence[int] = (8, 16, 32, 64),
                              scale: str = "tiny",
                              runner: Optional[SweepRunner] = None
                              ) -> Dict[str, List[float]]:
    """Ablation: TLB hit rate for LRU vs FIFO vs random replacement."""
    policies = ("lru", "fifo", "random")
    spec = workload(kernel, scale=scale)
    jobs = [ExperimentJob("svm", spec,
                          HarnessConfig(tlb_entries=entries,
                                        tlb_replacement=policy))
            for policy in policies for entries in tlb_sizes]
    results = iter(_runner(runner).map(run_job, jobs,
                                       label="fig5_replacement"))
    out: Dict[str, List[float]] = {"tlb_entries": list(tlb_sizes)}
    for policy in policies:
        out[policy] = [next(results).tlb_hit_rate for _ in tlb_sizes]
    return out


# ---------------------------------------------------------------------------
# Fig. 6 — virtual memory overhead vs page size
# ---------------------------------------------------------------------------
def fig6_vm_overhead(kernels: Sequence[str] = ("vecadd", "matmul", "linked_list"),
                     page_sizes: Sequence[int] = (4096, 16384, 65536),
                     scale: str = "tiny",
                     tlb_entries: int = 16,
                     runner: Optional[SweepRunner] = None
                     ) -> Dict[str, Dict[str, List]]:
    """SVM runtime normalised to the ideal accelerator, per page size."""
    jobs = []
    for kernel in kernels:
        spec = workload(kernel, scale=scale)
        for page_size in page_sizes:
            config = HarnessConfig(platform=PlatformConfig(page_size=page_size),
                                   tlb_entries=tlb_entries)
            jobs.append(ExperimentJob("svm", spec, config))
            jobs.append(ExperimentJob("ideal", spec, config))
    results = iter(_runner(runner).map(run_job, jobs, label="fig6_vm_overhead"))
    out: Dict[str, Dict[str, List]] = {}
    for kernel in kernels:
        overheads: List[float] = []
        hit_rates: List[float] = []
        for _ in page_sizes:
            svm = next(results)
            ideal = next(results)
            overheads.append(svm.fabric_cycles / ideal if ideal else 0.0)
            hit_rates.append(svm.tlb_hit_rate)
        out[kernel] = {"page_size": list(page_sizes),
                       "vm_overhead": overheads,
                       "hit_rate": hit_rates}
    return out


# ---------------------------------------------------------------------------
# Fig. 7 — multi-thread scaling
# ---------------------------------------------------------------------------
def fig7_scaling(kernels: Sequence[str] = ("vecadd", "matmul", "histogram"),
                 thread_counts: Sequence[int] = (1, 2, 4, 8),
                 scale: str = "tiny",
                 shared_walker: bool = False,
                 runner: Optional[SweepRunner] = None) -> Dict[str, Dict[str, List]]:
    """Aggregate throughput (items per kilocycle) vs number of HW threads."""
    config = HarnessConfig(shared_walker=shared_walker)
    specs = {kernel: workload(kernel, scale=scale) for kernel in kernels}
    jobs = [ExperimentJob("svm", specs[kernel], config, num_threads=count)
            for kernel in kernels for count in thread_counts]
    results = iter(_runner(runner).map(run_job, jobs, label="fig7_scaling"))
    out: Dict[str, Dict[str, List]] = {}
    for kernel in kernels:
        spec = specs[kernel]
        throughput: List[float] = []
        runtimes: List[int] = []
        for count in thread_counts:
            result = next(results)
            bound_items = spec.params.get("n") or spec.params.get(
                "nodes") or spec.params.get("accesses") or 1
            total_items = bound_items * count
            cycles = result.total_cycles or 1
            throughput.append(1000.0 * total_items / cycles)
            runtimes.append(result.total_cycles)
        out[kernel] = {"threads": list(thread_counts),
                       "items_per_kcycle": throughput,
                       "total_cycles": runtimes}
    return out


def fig7_walker_ablation(kernel: str = "random_access",
                         thread_counts: Sequence[int] = (1, 2, 4),
                         scale: str = "tiny",
                         runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Ablation: shared vs private page-table walkers under thread scaling."""
    spec = workload(kernel, scale=scale)
    jobs = [ExperimentJob("svm", spec, HarnessConfig(shared_walker=shared),
                          num_threads=count)
            for shared in (False, True) for count in thread_counts]
    results = iter(_runner(runner).map(run_job, jobs, label="fig7_walker"))
    out: Dict[str, List] = {"threads": list(thread_counts)}
    for shared in (False, True):
        cycles = [next(results).total_cycles for _ in thread_counts]
        out["shared_walker" if shared else "private_walker"] = cycles
    return out


# ---------------------------------------------------------------------------
# Fig. 8 — demand paging / residency sweep
# ---------------------------------------------------------------------------
def fig8_fault_sweep(kernels: Sequence[str] = ("linked_list", "vecadd"),
                     residencies: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                     scale: str = "tiny",
                     runner: Optional[SweepRunner] = None
                     ) -> Dict[str, Dict[str, List]]:
    """Runtime and fault counts vs fraction of pages resident at start."""
    jobs = [ExperimentJob("svm",
                          workload(kernel, scale=scale, residency=residency),
                          HarnessConfig())
            for kernel in kernels for residency in residencies]
    results = iter(_runner(runner).map(run_job, jobs, label="fig8_faults"))
    out: Dict[str, Dict[str, List]] = {}
    for kernel in kernels:
        points = [next(results) for _ in residencies]
        out[kernel] = {"residency": list(residencies),
                       "total_cycles": [p.total_cycles for p in points],
                       "faults": [p.faults for p in points]}
    return out


def fig8_pinning_ablation(kernel: str = "vecadd", scale: str = "tiny",
                          residency: float = 0.25,
                          runner: Optional[SweepRunner] = None) -> Dict[str, int]:
    """Ablation: demand paging vs pinning everything up front."""
    spec = workload(kernel, scale=scale, residency=residency)
    jobs = [ExperimentJob("svm", spec, HarnessConfig(pin_all=False)),
            ExperimentJob("svm", spec, HarnessConfig(pin_all=True)),
            ExperimentJob("svm", workload(kernel, scale=scale, residency=1.0),
                          HarnessConfig())]
    demand, pinned, resident = _runner(runner).map(run_job, jobs,
                                                   label="fig8_pinning")
    return {
        "demand_paging_cycles": demand.total_cycles,
        "demand_paging_faults": demand.faults,
        "pinned_cycles": pinned.total_cycles,
        "pinned_faults": pinned.faults,
        "fully_resident_cycles": resident.total_cycles,
    }


# ---------------------------------------------------------------------------
# Fig. 9 — crossover vs the copy-based accelerator
# ---------------------------------------------------------------------------
def fig9_crossover(kernel: str = "saxpy",
                   sizes: Sequence[int] = (1024, 4096, 16384, 65536, 262144),
                   scale: str = "tiny",
                   runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Total time of SVM thread vs copy-DMA accelerator across problem sizes."""
    config = HarnessConfig(auto_size_tlb=True)
    jobs = []
    for n in sizes:
        spec = workload(kernel, scale=scale, n=n)
        jobs.append(ExperimentJob("svm", spec, config))
        jobs.append(ExperimentJob("copydma", spec, config))
    results = iter(_runner(runner).map(run_job, jobs, label="fig9_crossover"))
    svm_cycles: List[int] = []
    dma_cycles: List[int] = []
    dma_marshalling: List[int] = []
    for _ in sizes:
        svm = next(results)
        dma = next(results)
        svm_cycles.append(svm.total_cycles)
        dma_cycles.append(dma.total_cycles)
        dma_marshalling.append(dma.marshalling_cycles)
    return {"sizes": list(sizes),
            "svm_total_cycles": svm_cycles,
            "copydma_total_cycles": dma_cycles,
            "copydma_marshalling_cycles": dma_marshalling}


def fig9_sparse_crossover(table_bytes: Sequence[int] = (262144, 1048576, 4194304),
                          accesses: int = 4096,
                          runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Crossover when only a sparse subset of a large table is touched."""
    config = HarnessConfig(auto_size_tlb=True)
    jobs = []
    for size in table_bytes:
        spec = workload("random_access", scale="tiny",
                        table_bytes=size, accesses=accesses)
        jobs.append(ExperimentJob("svm", spec, config))
        jobs.append(ExperimentJob("copydma", spec, config))
    results = iter(_runner(runner).map(run_job, jobs, label="fig9_sparse"))
    svm_cycles: List[int] = []
    dma_cycles: List[int] = []
    for _ in table_bytes:
        svm_cycles.append(next(results).total_cycles)
        dma_cycles.append(next(results).total_cycles)
    return {"table_bytes": list(table_bytes),
            "svm_total_cycles": svm_cycles,
            "copydma_total_cycles": dma_cycles}


# ---------------------------------------------------------------------------
# Fig. 10 — design-space exploration
# ---------------------------------------------------------------------------
def _dse_point(candidate: SystemSpec, workload_spec: WorkloadSpec):
    """Synthesize + simulate one DSE candidate (module-level: picklable)."""
    thread = candidate.threads[0]
    config = HarnessConfig(tlb_entries=thread.tlb_entries,
                           max_burst_bytes=thread.max_burst_bytes,
                           max_outstanding=thread.max_outstanding,
                           shared_walker=candidate.shared_walker)
    result = run_svm(workload_spec, config)
    system = SystemSynthesizer().synthesize(candidate)
    return result.total_cycles, system.resource_estimate()


def fig10_dse(kernel: str = "matmul", scale: str = "tiny",
              axes: Optional[SweepAxes] = None,
              runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Runtime/area design points and the Pareto front for one kernel."""
    axes = axes or SweepAxes(tlb_entries=(8, 16, 32, 64),
                             max_burst_bytes=(128, 256),
                             max_outstanding=(2, 4),
                             shared_walker=(False,))
    base_spec = SystemSpec(name=f"dse-{kernel}",
                           threads=[ThreadSpec(name="hwt0", kernel=kernel)])
    workload_spec = workload(kernel, scale=scale)

    evaluate = functools.partial(_dse_point, workload_spec=workload_spec)
    explorer = DesignSpaceExplorer(evaluate)
    points, front = explorer.explore_pareto(base_spec, axes, runner=runner)
    return {
        "points": [{"params": p.params, "runtime_cycles": p.runtime_cycles,
                    "luts": p.luts, "bram_kb": p.bram_kb} for p in points],
        "pareto": [{"params": p.params, "runtime_cycles": p.runtime_cycles,
                    "luts": p.luts, "bram_kb": p.bram_kb} for p in front],
    }


#: Experiment registry used by EXPERIMENTS.md generation and the benchmarks.
EXPERIMENTS = {
    "table1": table1_resources,
    "table2": table2_workloads,
    "table3": table3_speedups,
    "fig4": fig4_speedup_bars,
    "fig5": fig5_tlb_sweep,
    "fig6": fig6_vm_overhead,
    "fig7": fig7_scaling,
    "fig8": fig8_fault_sweep,
    "fig9": fig9_crossover,
    "fig10": fig10_dse,
}
