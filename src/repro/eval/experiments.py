"""Experiment definitions: one function per table / figure of the evaluation.

Every function returns plain Python data (lists of row dictionaries or
(x, series) structures) so it can be consumed by the benchmark harness, the
examples, tests, and EXPERIMENTS.md generation alike.  The experiment ids
follow the index in DESIGN.md.

Every simulating experiment declares its grid through the sweep API
(:mod:`repro.eval.sweep`): named axes expand into labeled
:class:`~repro.eval.sweep.Point` values, the whole grid dispatches in one
batch (parallel workers and the memo cache see every point at once when a
:class:`repro.exec.SweepRunner` is passed), and results come back keyed by
coordinates — results are identical with and without a runner.

Experiments register themselves in :data:`EXPERIMENTS` via the
:func:`experiment` decorator, which records self-describing metadata (title,
accepted knobs, default parameters) that the CLI and docs are built on.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.dse import DesignSpaceExplorer, SweepAxes
from ..core.platform import Platform, PlatformConfig
from ..core.resources import ResourceModel
from ..core.spec import SystemSpec, ThreadSpec
from ..core.synthesis import SystemSynthesizer
from ..exec.jobs import ExperimentJob
from ..exec.runner import SweepRunner
from ..models import ALL_MODELS, CANONICAL_MODELS
from ..workloads.characterize import characterise
from ..workloads.specs import WorkloadSpec
from ..workloads.suite import pattern_classes, standard_suite, workload
from .harness import ComparisonResult, HarnessConfig, run_svm
from .sweep import Grid, Sweep


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Experiment:
    """A registered experiment plus the metadata the CLI is built on."""

    name: str
    title: str
    func: Callable[..., object]
    description: str = ""
    #: Knob names the function accepts (e.g. ``scale``, ``runner``).
    knobs: Tuple[str, ...] = ()
    #: Default value per knob, for self-description (docs, ``list`` output).
    defaults: Mapping[str, object] = field(default_factory=dict)

    @property
    def scales(self) -> bool:
        return "scale" in self.knobs

    @property
    def sweepable(self) -> bool:
        return "runner" in self.knobs

    def run(self, scale: Optional[str] = None,
            runner: Optional[SweepRunner] = None, **overrides: object):
        """Invoke the experiment, passing only the knobs it declares."""
        kwargs = dict(overrides)
        unknown = set(kwargs) - set(self.knobs)
        if unknown:
            raise TypeError(f"experiment {self.name!r} does not accept "
                            f"{sorted(unknown)}; knobs: {list(self.knobs)}")
        if self.scales and scale is not None:
            kwargs["scale"] = scale
        if self.sweepable and runner is not None:
            kwargs["runner"] = runner
        return self.func(**kwargs)


#: Experiment registry used by the CLI, EXPERIMENTS.md generation and the
#: benchmarks.  Maps experiment id -> :class:`Experiment`.
EXPERIMENTS: Dict[str, Experiment] = {}


def experiment(name: str, title: str) -> Callable:
    """Decorator registering an experiment with self-describing metadata.

    The function's signature is inspected **once, at registration**, to
    record its knobs and defaults; callers (the CLI in particular) then rely
    purely on that metadata.
    """

    def decorate(func: Callable[..., object]) -> Callable[..., object]:
        if name in EXPERIMENTS:
            raise ValueError(f"experiment {name!r} is already registered")
        parameters = inspect.signature(func).parameters
        doc = (func.__doc__ or "").strip().splitlines()
        EXPERIMENTS[name] = Experiment(
            name=name, title=title, func=func,
            description=doc[0] if doc else "",
            knobs=tuple(parameters),
            defaults={p.name: p.default for p in parameters.values()
                      if p.default is not inspect.Parameter.empty})
        return func

    return decorate


# ---------------------------------------------------------------------------
# Table 1 — synthesized system configurations and resource estimates
# ---------------------------------------------------------------------------
@experiment("table1", "Table 1 — synthesized systems and resource estimates")
def table1_resources(scale: str = "tiny",
                     thread_counts: Sequence[int] = (1, 2, 4),
                     tlb_entries: Sequence[int] = (16, 32)) -> List[Dict[str, object]]:
    """Resource estimates of synthesized systems per kernel and configuration."""
    rows: List[Dict[str, object]] = []
    synthesizer = SystemSynthesizer()
    model = ResourceModel()
    for spec in standard_suite(scale):
        for num_threads in thread_counts:
            for entries in tlb_entries:
                threads = [ThreadSpec(name=f"hwt{i}", kernel=spec.kernel,
                                      tlb_entries=entries)
                           for i in range(num_threads)]
                system_spec = SystemSpec(name=f"{spec.kernel}-{num_threads}t-{entries}e",
                                         threads=threads)
                system = synthesizer.synthesize(system_spec)
                estimate = system.resource_estimate()
                utilisation = model.device.utilisation(estimate)
                rows.append({
                    "kernel": spec.kernel,
                    "threads": num_threads,
                    "tlb_entries": entries,
                    "luts": estimate.luts,
                    "ffs": estimate.ffs,
                    "bram_kb": round(estimate.bram_kb, 1),
                    "dsps": estimate.dsps,
                    "lut_util_pct": round(100 * utilisation["luts"], 1),
                    "fits": system.fits(),
                })
    return rows


# ---------------------------------------------------------------------------
# Table 2 — workload characterisation
# ---------------------------------------------------------------------------
@experiment("table2", "Table 2 — workload characterisation")
def table2_workloads(scale: str = "default",
                     page_size: int = 4096) -> List[Dict[str, object]]:
    """Footprint, traffic and locality of every workload in the suite."""
    platform = Platform(PlatformConfig(page_size=page_size))
    patterns = {k: cls for cls, kernels in pattern_classes().items() for k in kernels}
    rows = []
    for spec in standard_suite(scale):
        bound = spec.bind(platform.space)
        result = characterise(bound, page_size=page_size,
                              pattern=patterns.get(spec.kernel, "?"))
        rows.append(result.as_row())
    return rows


# ---------------------------------------------------------------------------
# Table 3 / Fig. 4 — end-to-end comparison and speedups
# ---------------------------------------------------------------------------
@experiment("table3", "Table 3 — end-to-end comparison and speedups")
def table3_speedups(scale: str = "default",
                    kernels: Optional[Sequence[str]] = None,
                    config: Optional[HarnessConfig] = None,
                    runner: Optional[SweepRunner] = None,
                    models: Sequence[str] = CANONICAL_MODELS
                    ) -> List[Dict[str, object]]:
    """Software vs copy-DMA vs SVM thread vs ideal, for every workload."""
    config = config or HarnessConfig(auto_size_tlb=True)
    models = tuple(dict.fromkeys(models))
    specs = [spec for spec in standard_suite(scale)
             if not kernels or spec.kernel in kernels]
    by_name = {spec.name: spec for spec in specs}

    grid = Grid(workload=[spec.name for spec in specs], model=list(models))
    sweep = grid.sweep(
        lambda workload, model: ExperimentJob(model, by_name[workload], config),
        label="table3")
    outcomes = sweep.run(runner)
    return [ComparisonResult(
                workload=spec.name,
                outcomes={m: outcomes.get(workload=spec.name, model=m)
                          for m in models}).as_row()
            for spec in specs]


@experiment("fig4", "Fig. 4 — speedup bars (SVM vs software and copy-DMA)")
def fig4_speedup_bars(scale: str = "default",
                      kernels: Optional[Sequence[str]] = None,
                      config: Optional[HarnessConfig] = None,
                      runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Bar-chart series: speedup of the SVM thread over software and copy-DMA."""
    rows = table3_speedups(scale, kernels, config, runner=runner)
    return {
        "workloads": [r["workload"] for r in rows],
        "speedup_vs_software": [r["speedup_sw"] for r in rows],
        "speedup_vs_copydma": [r["speedup_dma"] for r in rows],
    }


# ---------------------------------------------------------------------------
# Fig. 5 — TLB size sweep
# ---------------------------------------------------------------------------
@experiment("fig5", "Fig. 5 — TLB hit rate and runtime vs TLB size")
def fig5_tlb_sweep(kernels: Sequence[str] = ("vecadd", "matmul", "linked_list",
                                             "random_access"),
                   tlb_sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
                   scale: str = "tiny",
                   replacement: str = "lru",
                   tier: str = "auto",
                   runner: Optional[SweepRunner] = None) -> Dict[str, Dict[str, List]]:
    """TLB hit rate and fabric runtime vs TLB entries, per kernel.

    ``tier`` selects the execution tier per point (``"auto"`` replays
    recorded op streams through the fastpath where eligible; the results are
    identical either way, only wall-clock differs).
    """
    specs = {kernel: workload(kernel, scale=scale) for kernel in kernels}
    grid = Grid(kernel=list(kernels), tlb_entries=list(tlb_sizes))
    sweep = grid.sweep(
        lambda kernel, tlb_entries: ExperimentJob(
            "svm", specs[kernel],
            HarnessConfig(tlb_entries=tlb_entries,
                          tlb_replacement=replacement),
            tier=tier),
        label="fig5_tlb_sweep")
    outcomes = sweep.run(runner)
    return {kernel: {"tlb_entries": list(tlb_sizes),
                     "hit_rate": outcomes.series("tlb_entries", "tlb_hit_rate",
                                                 kernel=kernel),
                     "fabric_cycles": outcomes.series("tlb_entries",
                                                      "fabric_cycles",
                                                      kernel=kernel)}
            for kernel in kernels}


@experiment("fig5_replacement", "Fig. 5b — TLB replacement-policy ablation")
def fig5_replacement_ablation(kernel: str = "random_access",
                              tlb_sizes: Sequence[int] = (8, 16, 32, 64),
                              scale: str = "tiny",
                              runner: Optional[SweepRunner] = None
                              ) -> Dict[str, List[float]]:
    """Ablation: TLB hit rate for LRU vs FIFO vs random replacement."""
    policies = ("lru", "fifo", "random")
    spec = workload(kernel, scale=scale)
    grid = Grid(policy=policies, tlb_entries=list(tlb_sizes))
    sweep = grid.sweep(
        lambda policy, tlb_entries: ExperimentJob(
            "svm", spec, HarnessConfig(tlb_entries=tlb_entries,
                                       tlb_replacement=policy)),
        label="fig5_replacement")
    outcomes = sweep.run(runner)
    out: Dict[str, List[float]] = {"tlb_entries": list(tlb_sizes)}
    for policy in policies:
        out[policy] = outcomes.series("tlb_entries", "tlb_hit_rate",
                                      policy=policy)
    return out


# ---------------------------------------------------------------------------
# Fig. 6 — virtual memory overhead vs page size
# ---------------------------------------------------------------------------
@experiment("fig6", "Fig. 6 — virtual memory overhead vs page size")
def fig6_vm_overhead(kernels: Sequence[str] = ("vecadd", "matmul", "linked_list"),
                     page_sizes: Sequence[int] = (4096, 16384, 65536),
                     scale: str = "tiny",
                     tlb_entries: int = 16,
                     runner: Optional[SweepRunner] = None
                     ) -> Dict[str, Dict[str, List]]:
    """SVM runtime normalised to the ideal accelerator, per page size."""
    specs = {kernel: workload(kernel, scale=scale) for kernel in kernels}
    grid = Grid(kernel=list(kernels), page_size=list(page_sizes),
                model=("svm", "ideal"))
    sweep = grid.sweep(
        lambda kernel, page_size, model: ExperimentJob(
            model, specs[kernel],
            HarnessConfig(platform=PlatformConfig(page_size=page_size),
                          tlb_entries=tlb_entries)),
        label="fig6_vm_overhead")
    outcomes = sweep.run(runner)

    out: Dict[str, Dict[str, List]] = {}
    for kernel in kernels:
        overheads: List[float] = []
        hit_rates: List[float] = []
        for page_size in page_sizes:
            svm = outcomes.get(kernel=kernel, page_size=page_size, model="svm")
            ideal = outcomes.get(kernel=kernel, page_size=page_size,
                                 model="ideal")
            overheads.append(svm.fabric_cycles / ideal.fabric_cycles
                             if ideal.fabric_cycles else 0.0)
            hit_rates.append(svm.tlb_hit_rate)
        out[kernel] = {"page_size": list(page_sizes),
                       "vm_overhead": overheads,
                       "hit_rate": hit_rates}
    return out


# ---------------------------------------------------------------------------
# Fig. 7 — multi-thread scaling
# ---------------------------------------------------------------------------
@experiment("fig7", "Fig. 7 — multi-thread throughput scaling")
def fig7_scaling(kernels: Sequence[str] = ("vecadd", "matmul", "histogram"),
                 thread_counts: Sequence[int] = (1, 2, 4, 8),
                 scale: str = "tiny",
                 shared_walker: bool = False,
                 runner: Optional[SweepRunner] = None) -> Dict[str, Dict[str, List]]:
    """Aggregate throughput (items per kilocycle) vs number of HW threads."""
    config = HarnessConfig(shared_walker=shared_walker)
    specs = {kernel: workload(kernel, scale=scale) for kernel in kernels}
    grid = Grid(kernel=list(kernels), threads=list(thread_counts))
    sweep = grid.sweep(
        lambda kernel, threads: ExperimentJob("svm", specs[kernel], config,
                                              num_threads=threads),
        label="fig7_scaling")
    outcomes = sweep.run(runner)

    out: Dict[str, Dict[str, List]] = {}
    for kernel in kernels:
        spec = specs[kernel]
        throughput: List[float] = []
        runtimes: List[int] = []
        for count in thread_counts:
            result = outcomes.get(kernel=kernel, threads=count)
            total_items = spec.work_items * count
            cycles = result.total_cycles or 1
            throughput.append(1000.0 * total_items / cycles)
            runtimes.append(result.total_cycles)
        out[kernel] = {"threads": list(thread_counts),
                       "items_per_kcycle": throughput,
                       "total_cycles": runtimes}
    return out


@experiment("fig7_walker", "Fig. 7b — shared vs private page-table walkers")
def fig7_walker_ablation(kernel: str = "random_access",
                         thread_counts: Sequence[int] = (1, 2, 4),
                         scale: str = "tiny",
                         runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Ablation: shared vs private page-table walkers under thread scaling."""
    spec = workload(kernel, scale=scale)
    grid = Grid(shared=(False, True), threads=list(thread_counts))
    sweep = grid.sweep(
        lambda shared, threads: ExperimentJob(
            "svm", spec, HarnessConfig(shared_walker=shared),
            num_threads=threads),
        label="fig7_walker")
    outcomes = sweep.run(runner)
    out: Dict[str, List] = {"threads": list(thread_counts)}
    for shared in (False, True):
        out["shared_walker" if shared else "private_walker"] = (
            outcomes.series("threads", "total_cycles", shared=shared))
    return out


# ---------------------------------------------------------------------------
# Fig. 8 — demand paging / residency sweep
# ---------------------------------------------------------------------------
@experiment("fig8", "Fig. 8 — demand paging: runtime and faults vs residency")
def fig8_fault_sweep(kernels: Sequence[str] = ("linked_list", "vecadd"),
                     residencies: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                     scale: str = "tiny",
                     runner: Optional[SweepRunner] = None
                     ) -> Dict[str, Dict[str, List]]:
    """Runtime and fault counts vs fraction of pages resident at start."""
    grid = Grid(kernel=list(kernels), residency=list(residencies))
    sweep = grid.sweep(
        lambda kernel, residency: ExperimentJob(
            "svm", workload(kernel, scale=scale, residency=residency),
            HarnessConfig()),
        label="fig8_faults")
    outcomes = sweep.run(runner)
    return {kernel: {"residency": list(residencies),
                     "total_cycles": outcomes.series("residency",
                                                     "total_cycles",
                                                     kernel=kernel),
                     "faults": outcomes.series("residency", "faults",
                                               kernel=kernel)}
            for kernel in kernels}


@experiment("fig8_pinning", "Fig. 8b — demand paging vs up-front pinning")
def fig8_pinning_ablation(kernel: str = "vecadd", scale: str = "tiny",
                          residency: float = 0.25,
                          runner: Optional[SweepRunner] = None) -> Dict[str, int]:
    """Ablation: demand paging vs pinning everything up front."""
    spec = workload(kernel, scale=scale, residency=residency)
    sweep = Sweep(label="fig8_pinning")
    sweep.add(ExperimentJob("svm", spec, HarnessConfig(pin_all=False)),
              mode="demand")
    sweep.add(ExperimentJob("svm", spec, HarnessConfig(pin_all=True)),
              mode="pinned")
    sweep.add(ExperimentJob("svm", workload(kernel, scale=scale, residency=1.0),
                            HarnessConfig()),
              mode="resident")
    outcomes = sweep.run(runner)
    demand = outcomes.get(mode="demand")
    pinned = outcomes.get(mode="pinned")
    resident = outcomes.get(mode="resident")
    return {
        "demand_paging_cycles": demand.total_cycles,
        "demand_paging_faults": demand.faults,
        "pinned_cycles": pinned.total_cycles,
        "pinned_faults": pinned.faults,
        "fully_resident_cycles": resident.total_cycles,
    }


# ---------------------------------------------------------------------------
# Fig. 9 — crossover vs the copy-based accelerator
# ---------------------------------------------------------------------------
@experiment("fig9", "Fig. 9 — SVM vs copy-DMA crossover across problem sizes")
def fig9_crossover(kernel: str = "saxpy",
                   sizes: Sequence[int] = (1024, 4096, 16384, 65536, 262144),
                   scale: str = "tiny",
                   runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Total time of SVM thread vs copy-DMA accelerator across problem sizes."""
    config = HarnessConfig(auto_size_tlb=True)
    specs = {n: workload(kernel, scale=scale, n=n) for n in sizes}
    grid = Grid(size=list(sizes), model=("svm", "copydma"))
    sweep = grid.sweep(
        lambda size, model: ExperimentJob(model, specs[size], config),
        label="fig9_crossover")
    outcomes = sweep.run(runner)
    return {"sizes": list(sizes),
            "svm_total_cycles": outcomes.series("size", "total_cycles",
                                                model="svm"),
            "copydma_total_cycles": outcomes.series("size", "total_cycles",
                                                    model="copydma"),
            "copydma_marshalling_cycles": outcomes.series(
                "size", "marshalling_cycles", model="copydma")}


@experiment("fig9_sparse", "Fig. 9b — crossover under sparse access")
def fig9_sparse_crossover(table_bytes: Sequence[int] = (262144, 1048576, 4194304),
                          accesses: int = 4096,
                          runner: Optional[SweepRunner] = None) -> Dict[str, List]:
    """Crossover when only a sparse subset of a large table is touched."""
    config = HarnessConfig(auto_size_tlb=True)
    specs = {size: workload("random_access", scale="tiny",
                            table_bytes=size, accesses=accesses)
             for size in table_bytes}
    grid = Grid(table=list(table_bytes), model=("svm", "copydma"))
    sweep = grid.sweep(
        lambda table, model: ExperimentJob(model, specs[table], config),
        label="fig9_sparse")
    outcomes = sweep.run(runner)
    return {"table_bytes": list(table_bytes),
            "svm_total_cycles": outcomes.series("table", "total_cycles",
                                                model="svm"),
            "copydma_total_cycles": outcomes.series("table", "total_cycles",
                                                    model="copydma")}


# ---------------------------------------------------------------------------
# Fig. 11 — execution-model ablation (beyond the paper: the variant family)
# ---------------------------------------------------------------------------
@experiment("fig11", "Fig. 11 — execution-model ablation across the suite")
def fig11_model_ablation(scale: str = "tiny",
                         kernels: Sequence[str] = ("vecadd", "matmul",
                                                   "linked_list",
                                                   "random_access"),
                         models: Sequence[str] = ALL_MODELS,
                         config: Optional[HarnessConfig] = None,
                         tier: str = "auto",
                         runner: Optional[SweepRunner] = None
                         ) -> List[Dict[str, object]]:
    """Every registered execution model on every workload, one row per workload.

    The first experiment to sweep the full seven-model registry: the paper's
    four plus the SVM variant family (prefetching, shared-TLB, hugepage).
    Each row carries one total-cycles column per model plus the translation
    metrics the variants exist to move: demand TLB misses (prefetching should
    shrink them) and walker level fetches (hugepages should shrink them).
    """
    config = config or HarnessConfig(tlb_entries=16)
    models = tuple(dict.fromkeys(models))
    specs = [spec for spec in standard_suite(scale)
             if not kernels or spec.kernel in kernels]
    by_name = {spec.name: spec for spec in specs}

    grid = Grid(workload=[spec.name for spec in specs], model=list(models))
    sweep = grid.sweep(
        lambda workload, model: ExperimentJob(model, by_name[workload], config,
                                              tier=tier),
        label="fig11_model_ablation")
    outcomes = sweep.run(runner)

    rows: List[Dict[str, object]] = []
    for spec in specs:
        row: Dict[str, object] = {"workload": spec.name}
        for model in models:
            outcome = outcomes.get(workload=spec.name, model=model)
            row[model] = outcome.total_cycles
        for model in models:
            outcome = outcomes.get(workload=spec.name, model=model)
            if outcome.tlb_misses or model.startswith("svm"):
                row[f"tlb_misses[{model}]"] = outcome.tlb_misses
            if outcome.breakdown and "walker_levels" in outcome.breakdown:
                row[f"walker_levels[{model}]"] = outcome.breakdown["walker_levels"]
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 12 — N-process contention (beyond the paper: OS pressure at scale)
# ---------------------------------------------------------------------------
@experiment("fig12", "Fig. 12 — N-process contention: schedulers × host-shared TLB")
def fig12_contention(scale: str = "tiny",
                     kernel: str = "vecadd",
                     process_counts: Sequence[int] = (1, 2, 4, 8),
                     policies: Sequence[str] = ("round-robin",
                                                "weighted-fair"),
                     host_shared: Sequence[bool] = (False, True),
                     quantum: int = 2_000,
                     models: Sequence[str] = ("svm", "svm-shared-tlb"),
                     config: Optional[HarnessConfig] = None,
                     runner: Optional[SweepRunner] = None
                     ) -> List[Dict[str, object]]:
    """N contending processes × scheduling policy × host-shared fabric TLB.

    Each point time-slices N copies of ``kernel`` (distinct address spaces
    with *identical* virtual layouts — the adversarial ASID case) onto one
    accelerator under the given scheduling policy, with demand weights
    1..N so weight-sensitive policies actually reorder the plan.  The
    ``svm`` model flushes the fabric TLB at every context switch (no
    cross-process survival); ``svm-shared-tlb`` keeps the ASID-tagged
    entries resident across slices.  With ``host_shared_tlb`` the host CPU's
    pinning and fault-service page touches probe and refill the same TLB.
    One row per (process count, policy, host sharing); per-model
    total-cycle, demand-miss and context-switch columns.
    """
    from ..workloads.multiprocess import contention

    config = config or HarnessConfig(tlb_entries=64, pin_all=True)
    models = tuple(dict.fromkeys(models))
    for model in models:
        if not model.startswith("svm"):
            raise ValueError(
                f"fig12 sweeps SVM-family models only (got {model!r}): "
                "translation-free models have no multi-process TLB story")

    specs = {(count, policy): contention(
                 [kernel] * count, scale=scale, quantum=quantum,
                 policy=policy, weights=tuple(float(i + 1) for i in range(count)))
             for count in process_counts for policy in policies}

    grid = Grid(procs=list(process_counts), policy=list(policies),
                host=list(host_shared), model=list(models))
    sweep = grid.sweep(
        lambda procs, policy, host, model: ExperimentJob(
            model, specs[(procs, policy)],
            replace(config, host_shares_tlb=host)),
        label="fig12_contention")
    outcomes = sweep.run(runner)

    rows: List[Dict[str, object]] = []
    for count in process_counts:
        for policy in policies:
            for host in host_shared:
                row: Dict[str, object] = {"processes": count,
                                          "policy": policy,
                                          "host_shared_tlb": host}
                for model in models:
                    outcome = outcomes.get(procs=count, policy=policy,
                                           host=host, model=model)
                    row[model] = outcome.total_cycles
                    row[f"tlb_misses[{model}]"] = outcome.tlb_misses
                    if outcome.breakdown:
                        row[f"context_switches[{model}]"] = (
                            outcome.breakdown.get("context_switches", 0))
                rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 13 — online feedback-driven scheduling (beyond the paper)
# ---------------------------------------------------------------------------
@experiment("fig13", "Fig. 13 — online adaptive scheduling vs static policies")
def fig13_adaptive_scheduling(scale: str = "tiny",
                              kernel: str = "vecadd",
                              thrasher: str = "random_access",
                              process_counts: Sequence[int] = (2, 4),
                              policies: Sequence[str] = ("round-robin",
                                                         "fault-aware",
                                                         "adaptive-fault",
                                                         "miss-fair",
                                                         "host-aware"),
                              models: Sequence[str] = ("svm",
                                                       "svm-shared-tlb"),
                              quantum: int = 2_000,
                              residency: float = 0.5,
                              config: Optional[HarnessConfig] = None,
                              runner: Optional[SweepRunner] = None
                              ) -> List[Dict[str, object]]:
    """Static vs telemetry-driven scheduling under a one-thrasher mix.

    Each point time-slices one ``thrasher`` process (a TLB-hostile sparse
    sweeper) against N-1 well-behaved ``kernel`` processes, at partial
    residency so demand paging (and, with the host sharing the fabric TLB,
    host refill traffic) happens *during* the run — the signals the adaptive
    policies feed on.  Static policies plan once from estimates; adaptive
    ones (``adaptive-fault``, ``miss-fair``, ``host-aware``) replan every
    epoch from the measured TelemetryBus counters.  One row per
    (process count, policy) with per-model total-cycle / demand-miss /
    fault / epoch-count columns; ``epochs`` is 0 for static policies (no
    epoch-wise execution) and the number of feedback rounds for adaptive
    ones.
    """
    from ..os.scheduler import get_policy
    from ..workloads.multiprocess import contention

    config = config or HarnessConfig(tlb_entries=32, host_shares_tlb=True)
    models = tuple(dict.fromkeys(models))
    for model in models:
        if not model.startswith("svm"):
            raise ValueError(
                f"fig13 sweeps SVM-family models only (got {model!r}): "
                "translation-free models have no scheduling-feedback story")

    specs = {(count, policy): contention(
                 [thrasher] + [kernel] * (count - 1), scale=scale,
                 quantum=quantum, policy=policy, residency=residency)
             for count in process_counts for policy in policies}

    grid = Grid(procs=list(process_counts), policy=list(policies),
                model=list(models))
    sweep = grid.sweep(
        lambda procs, policy, model: ExperimentJob(
            model, specs[(procs, policy)], config),
        label="fig13_adaptive")
    outcomes = sweep.run(runner)

    rows: List[Dict[str, object]] = []
    for count in process_counts:
        for policy in policies:
            row: Dict[str, object] = {"processes": count, "policy": policy,
                                      "adaptive": get_policy(policy).adaptive}
            for model in models:
                outcome = outcomes.get(procs=count, policy=policy,
                                       model=model)
                row[model] = outcome.total_cycles
                row[f"tlb_misses[{model}]"] = outcome.tlb_misses
                row[f"faults[{model}]"] = outcome.faults
                row[f"epochs[{model}]"] = (
                    (outcome.breakdown or {}).get("epochs", 0))
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 — design-space exploration
# ---------------------------------------------------------------------------
def _dse_point(candidate: SystemSpec, workload_spec: WorkloadSpec):
    """Synthesize + simulate one DSE candidate (module-level: picklable).

    Single-process: a scheduling policy has nothing to schedule here, so
    this evaluator ignores ``candidate.scheduling_policy`` — sweep
    :attr:`SweepAxes.policy` through :func:`_policy_dse_point` (fig13b)
    instead, where candidates time-slice a contention workload.
    """
    thread = candidate.threads[0]
    config = HarnessConfig(tlb_entries=thread.tlb_entries,
                           max_burst_bytes=thread.max_burst_bytes,
                           max_outstanding=thread.max_outstanding,
                           shared_walker=candidate.shared_walker,
                           tlb_prefetch=thread.tlb_prefetch)
    result = run_svm(workload_spec, config)
    system = SystemSynthesizer().synthesize(candidate)
    return result.total_cycles, system.resource_estimate()


def _policy_dse_point(candidate: SystemSpec, mp):
    """Evaluate one DSE candidate against a contention workload.

    The policy-aware counterpart of :func:`_dse_point` (module-level:
    picklable): the candidate's TLB/burst/prefetch knobs dimension the
    hardware and ``candidate.scheduling_policy`` — the
    :attr:`~repro.core.dse.SweepAxes.policy` axis — selects how the OS
    time-slices the processes onto it, so hardware and policy trade off on
    one grid.
    """
    from .harness import run_multiprocess

    thread = candidate.threads[0]
    config = HarnessConfig(tlb_entries=thread.tlb_entries,
                           max_burst_bytes=thread.max_burst_bytes,
                           max_outstanding=thread.max_outstanding,
                           shared_walker=candidate.shared_walker,
                           tlb_prefetch=thread.tlb_prefetch)
    spec = mp if candidate.scheduling_policy is None else replace(
        mp, policy=candidate.scheduling_policy)
    result = run_multiprocess(spec, config, flush_on_switch=False)
    system = SystemSynthesizer().synthesize(candidate)
    return result.total_cycles, system.resource_estimate()


@experiment("fig13_policy_dse",
            "Fig. 13b — scheduling policy as a design-space axis")
def fig13_policy_dse(kernel: str = "random_access",
                     neighbour: str = "vecadd",
                     scale: str = "tiny",
                     quantum: int = 2_000,
                     residency: float = 0.5,
                     axes: Optional[SweepAxes] = None,
                     runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Runtime/area design points over TLB size × scheduling policy.

    The proof that :attr:`SweepAxes.policy` is a real axis: each candidate
    runs a two-process contention mix (one thrasher, one streamer) under its
    own scheduling policy — static and adaptive alike — so the Pareto front
    can trade translation hardware against scheduling smarts (a bigger TLB
    tolerates longer thrasher quanta; a better policy earns back a smaller
    TLB).
    """
    from ..workloads.multiprocess import contention

    axes = axes or SweepAxes(tlb_entries=(16, 64),
                             max_burst_bytes=(256,),
                             max_outstanding=(4,),
                             shared_walker=(False,),
                             policy=("round-robin", "fault-aware",
                                     "adaptive-fault", "miss-fair"))
    mp = contention([kernel, neighbour], scale=scale, quantum=quantum,
                    residency=residency)
    base_spec = SystemSpec(name=f"policy-dse-{kernel}",
                           threads=[ThreadSpec(name="hwt0", kernel=kernel)])
    evaluate = functools.partial(_policy_dse_point, mp=mp)
    explorer = DesignSpaceExplorer(evaluate)
    points, front = explorer.explore_pareto(base_spec, axes, runner=runner)
    return {
        "points": [{"params": p.params, "runtime_cycles": p.runtime_cycles,
                    "luts": p.luts} for p in points],
        "pareto": [{"params": p.params, "runtime_cycles": p.runtime_cycles,
                    "luts": p.luts} for p in front],
    }


@experiment("fig10", "Fig. 10 — design-space exploration and Pareto front")
def fig10_dse(kernel: str = "matmul", scale: str = "tiny",
              axes: Optional[SweepAxes] = None,
              runner: Optional[SweepRunner] = None) -> Dict[str, object]:
    """Runtime/area design points and the Pareto front for one kernel."""
    axes = axes or SweepAxes(tlb_entries=(8, 16, 32, 64),
                             max_burst_bytes=(128, 256),
                             max_outstanding=(2, 4),
                             shared_walker=(False,))
    base_spec = SystemSpec(name=f"dse-{kernel}",
                           threads=[ThreadSpec(name="hwt0", kernel=kernel)])
    workload_spec = workload(kernel, scale=scale)

    evaluate = functools.partial(_dse_point, workload_spec=workload_spec)
    explorer = DesignSpaceExplorer(evaluate)
    points, front = explorer.explore_pareto(base_spec, axes, runner=runner)
    return {
        "points": [{"params": p.params, "runtime_cycles": p.runtime_cycles,
                    "luts": p.luts, "bram_kb": p.bram_kb} for p in points],
        "pareto": [{"params": p.params, "runtime_cycles": p.runtime_cycles,
                    "luts": p.luts, "bram_kb": p.bram_kb} for p in front],
    }


# ---------------------------------------------------------------------------
# Fig. 14 — adaptive telemetry-driven design-space exploration
# ---------------------------------------------------------------------------
#: The fig14 search space: translation hardware × prefetch depth × adaptive
#: scheduling policy × process count × quantum — 103,680 candidates, two
#: orders of magnitude beyond the exhaustive fig10/fig13 grids.  Every
#: policy on the axis is adaptive, so each run carries scheduling telemetry
#: and the telemetry-derived objectives are always defined.
FIG14_AXES: Dict[str, Tuple[object, ...]] = {
    "tlb_entries": (4, 8, 16, 32, 64, 128),
    "tlb_associativity": (1, 2, 4),
    "max_outstanding": (2, 4, 8),
    "max_burst_bytes": (64, 128, 256, 512),
    "shared_walker": (False, True),
    "tlb_prefetch": (0, 1, 2, 3, 4),
    "policy": ("adaptive-fault", "miss-fair", "host-aware"),
    "processes": (2, 3, 4, 6),
    "quantum": (5_000, 10_000, 20_000, 40_000),
}

#: Default Pareto axes: runtime and area joined by the three telemetry
#: objectives (fairness is maximized; the rest are minimized).
FIG14_OBJECTIVES: Tuple[str, ...] = ("cycles", "luts", "miss_stall_cycles",
                                     "host_refill_rate", "fairness")


def _fig14_point(candidate: Mapping[str, object], scale: str = "tiny",
                 fraction: float = 1.0) -> Dict[str, object]:
    """Evaluate one fig14 candidate (module-level: picklable).

    The candidate is a knob assignment over :data:`FIG14_AXES`.  It runs a
    contention mix — one ``random_access`` thrasher plus streaming
    ``vecadd`` neighbours at half residency, the fig13 recipe generalized
    to N processes — under the candidate's scheduling policy and hardware,
    with the host CPU sharing the fabric TLB.  ``fraction`` shrinks the
    workload sizes: it is the successive-halving fidelity ladder, with
    ``fraction=1.0`` the trusted full-scale evaluation.
    """
    from ..os.telemetry import epoch_fairness
    from ..workloads.multiprocess import MultiProcessSpec
    from .harness import run_multiprocess

    knobs = dict(candidate)
    count = int(knobs["processes"])

    def sized(kernel: str, size_key: str, seed: int) -> WorkloadSpec:
        base = workload(kernel, scale=scale).params[size_key]
        return workload(kernel, scale=scale, residency=0.5, seed=seed,
                        **{size_key: max(64, int(base * fraction))})

    specs = [sized("random_access", "accesses", seed=7)]
    specs += [sized("vecadd", "n", seed=11 + i) for i in range(count - 1)]
    mp = MultiProcessSpec(name=f"fig14-{count}p",
                          specs=tuple(specs),
                          quantum=int(knobs["quantum"]),
                          policy=str(knobs["policy"]))
    config = HarnessConfig(tlb_entries=int(knobs["tlb_entries"]),
                           tlb_associativity=int(knobs["tlb_associativity"]),
                           max_outstanding=int(knobs["max_outstanding"]),
                           max_burst_bytes=int(knobs["max_burst_bytes"]),
                           shared_walker=bool(knobs["shared_walker"]),
                           tlb_prefetch=int(knobs["tlb_prefetch"]),
                           host_shares_tlb=True)
    result = run_multiprocess(mp, config, flush_on_switch=False)

    thread = ThreadSpec(name="hwt0", kernel="random_access",
                        tlb_entries=int(knobs["tlb_entries"]),
                        tlb_associativity=int(knobs["tlb_associativity"]),
                        max_outstanding=int(knobs["max_outstanding"]),
                        max_burst_bytes=int(knobs["max_burst_bytes"]),
                        tlb_prefetch=int(knobs["tlb_prefetch"]))
    spec = SystemSpec(name="fig14", threads=[thread],
                      shared_walker=bool(knobs["shared_walker"]))
    resources = SystemSynthesizer().synthesize(spec).resource_estimate()

    telemetry = result.telemetry
    refills = telemetry.totals()["host_tlb_refills"] if telemetry else 0
    return {
        "cycles": result.total_cycles,
        "luts": resources.luts,
        "bram_kb": resources.bram_kb,
        "miss_stall_cycles": result.miss_stall_cycles,
        "host_refill_rate": (1000.0 * refills / result.total_cycles
                             if result.total_cycles else 0.0),
        "fairness": epoch_fairness(telemetry) if telemetry else 1.0,
        "epochs": telemetry.num_epochs if telemetry else 0,
        "tlb_misses": result.tlb_misses,
        "faults": result.faults,
    }


#: The fig14 fidelity ladder: workload-size fractions, cheapest first.
FIG14_LADDER: Tuple[Tuple[str, float], ...] = (("quarter", 0.25),
                                               ("half", 0.5), ("full", 1.0))


@experiment("fig14", "Fig. 14 — adaptive telemetry-driven DSE at scale")
def fig14_adaptive_dse(scale: str = "tiny",
                       explorer: str = "successive-halving",
                       budget: Optional[int] = 256,
                       seed: int = 0,
                       axes: Optional[Mapping[str, Sequence[object]]] = None,
                       objectives: Sequence[str] = FIG14_OBJECTIVES,
                       results: Optional[object] = None,
                       runner: Optional[SweepRunner] = None
                       ) -> Dict[str, object]:
    """Explore the ~10⁵-point fig14 space under a hard evaluation budget.

    The default successive-halving backend promotes non-dominated-plus-
    margin survivors up the :data:`FIG14_LADDER` workload-size rungs, so
    the whole exploration costs on the order of the exhaustive ~10³-point
    fig10/fig13 grids while searching a space two orders of magnitude
    larger.  Rows already in the results store (``--results-db`` /
    ``REPRO_RESULTS_DB``, current package version only) are adopted as
    warm starts before any budget is spent.
    """
    from ..dse import DesignSpace, DseObjectives, FidelityRung, get_explorer

    axes_map = dict(axes) if axes is not None else dict(FIG14_AXES)
    ladder = tuple(
        FidelityRung(name, functools.partial(_fig14_point, scale=scale,
                                             fraction=fraction))
        for name, fraction in FIG14_LADDER)
    space = DesignSpace.from_axes(axes_map, ladder)
    if results is None and runner is not None:
        results = runner.results
    exploration = get_explorer(explorer).explore(
        space, objectives=DseObjectives(tuple(objectives)), runner=runner,
        budget=budget, results=results, seed=seed)
    return exploration.as_dict()
