"""Evaluation harness, experiment definitions, sweeps and report formatting."""

from .experiments import EXPERIMENTS, Experiment
from .harness import (
    ComparisonResult,
    HarnessConfig,
    SVMResult,
    compare,
    run_copydma,
    run_ideal,
    run_software,
    run_svm,
)
from .report import (format_nested_series, format_output, format_series,
                     format_table, speedup_summary)
from .sweep import Grid, Point, Sweep, SweepOutcomes

__all__ = [
    "ComparisonResult",
    "EXPERIMENTS",
    "Experiment",
    "Grid",
    "HarnessConfig",
    "Point",
    "SVMResult",
    "Sweep",
    "SweepOutcomes",
    "compare",
    "format_nested_series",
    "format_output",
    "format_series",
    "format_table",
    "run_copydma",
    "run_ideal",
    "run_software",
    "run_svm",
    "speedup_summary",
]
