"""Evaluation harness, experiment definitions and report formatting."""

from .experiments import EXPERIMENTS
from .harness import (
    ComparisonResult,
    HarnessConfig,
    SVMResult,
    compare,
    run_copydma,
    run_ideal,
    run_software,
    run_svm,
)
from .report import format_nested_series, format_series, format_table, speedup_summary

__all__ = [
    "ComparisonResult",
    "EXPERIMENTS",
    "HarnessConfig",
    "SVMResult",
    "compare",
    "format_nested_series",
    "format_series",
    "format_table",
    "run_copydma",
    "run_ideal",
    "run_software",
    "run_svm",
    "speedup_summary",
]
