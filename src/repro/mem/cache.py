"""Set-associative cache model used by the host-CPU software baseline.

The cache is a *timing filter*: it classifies each access as hit or miss and
reports the resulting latency.  Misses optionally forward a line-fill request
to a downstream :class:`~repro.mem.port.MemoryTarget`; the software baseline
normally runs in analytic mode (``backing=None``) where the miss penalty is a
constant, because the paper's host CPU has a private L1/L2 path that does not
contend with the fabric masters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.component import Component
from ..sim.engine import Simulator
from .port import MemoryRequest, MemoryTarget


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    associativity: int = 4
    hit_latency: int = 1
    miss_penalty: int = 60
    writeback: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("size must be a multiple of line_bytes * associativity")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


class _Line:
    __slots__ = ("tag", "dirty", "last_used")

    def __init__(self, tag: int, now: int):
        self.tag = tag
        self.dirty = False
        self.last_used = now


class Cache(Component):
    """LRU set-associative cache with optional backing memory."""

    def __init__(self, sim: Simulator, config: CacheConfig | None = None,
                 backing: Optional[MemoryTarget] = None, name: str = "cache"):
        super().__init__(sim, name)
        self.config = config or CacheConfig()
        self.backing = backing
        self._sets: List[Dict[int, _Line]] = [
            {} for _ in range(self.config.num_sets)]
        self._tick = 0

    # ------------------------------------------------------------ addressing
    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    # ---------------------------------------------------------------- lookup
    def lookup(self, addr: int, is_write: bool = False) -> int:
        """Access the cache; return the latency in cycles for this access."""
        self._tick += 1
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        self.count("accesses")

        line = cache_set.get(tag)
        if line is not None:
            line.last_used = self._tick
            if is_write:
                line.dirty = True
            self.count("hits")
            return self.config.hit_latency

        self.count("misses")
        latency = self.config.hit_latency + self.config.miss_penalty
        evicted_dirty = self._fill(index, tag, is_write)
        if evicted_dirty and self.config.writeback:
            self.count("writebacks")
            latency += self.config.miss_penalty // 2
        if self.backing is not None:
            self._issue_fill(addr)
        return latency

    def _fill(self, index: int, tag: int, is_write: bool) -> bool:
        """Insert a line, evicting LRU if needed.  Returns True if the victim
        was dirty."""
        cache_set = self._sets[index]
        evicted_dirty = False
        if len(cache_set) >= self.config.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_used)
            evicted_dirty = cache_set[victim_tag].dirty
            del cache_set[victim_tag]
        line = _Line(tag, self._tick)
        line.dirty = is_write
        cache_set[tag] = line
        return evicted_dirty

    def _issue_fill(self, addr: int) -> None:
        line_addr = (addr // self.config.line_bytes) * self.config.line_bytes
        request = MemoryRequest(addr=line_addr, size=self.config.line_bytes,
                                is_write=False, master=self.name)
        self.backing.access(request)

    # ------------------------------------------------------------------ info
    @property
    def hit_rate(self) -> float:
        accesses = self.stats.counter("accesses").value
        if not accesses:
            return 0.0
        return self.stats.counter("hits").value / accesses

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines flushed."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for line in cache_set.values() if line.dirty)
            cache_set.clear()
        self.count("flushes")
        return dirty
