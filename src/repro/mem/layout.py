"""Physical address map of the simulated platform.

The platform has one external DRAM region plus a small reserved region for
the OS (page tables, kernel structures).  The map hands out frame-aligned
regions and sanity-checks that physical addresses produced by the OS and by
the page-table walker stay inside DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Region:
    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError(f"invalid region {self.name}: base={self.base} size={self.size}")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class PhysicalMemoryMap:
    """Collection of non-overlapping physical regions."""

    def __init__(self, dram_base: int = 0x0000_0000,
                 dram_size: int = 512 * 1024 * 1024,
                 reserved_size: int = 16 * 1024 * 1024):
        if reserved_size >= dram_size:
            raise ValueError("reserved region must be smaller than DRAM")
        self.dram = Region("dram", dram_base, dram_size)
        self.reserved = Region("os_reserved", dram_base, reserved_size)
        self._regions: Dict[str, Region] = {
            "dram": self.dram,
            "os_reserved": self.reserved,
        }

    @property
    def usable(self) -> Region:
        """DRAM available for user frames (excludes the OS-reserved region)."""
        return Region("usable", self.reserved.end,
                      self.dram.size - self.reserved.size)

    def add_region(self, name: str, base: int, size: int) -> Region:
        region = Region(name, base, size)
        for existing in self._regions.values():
            if existing.name not in ("dram",) and region.overlaps(existing):
                raise ValueError(
                    f"region {name} overlaps {existing.name}")
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        return self._regions[name]

    def regions(self) -> List[Region]:
        return list(self._regions.values())

    def validate_physical(self, addr: int, size: int = 1) -> bool:
        """True if [addr, addr+size) lies inside DRAM."""
        return self.dram.contains(addr, size)


def align_down(value: int, alignment: int) -> int:
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError("alignment must be a positive power of two")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError("alignment must be a positive power of two")
    return (value + alignment - 1) & ~(alignment - 1)
