"""Banked DRAM timing model.

The model captures the first-order effects that matter for the paper's
evaluation: row-buffer locality, per-bank serialisation, data-bus occupancy
proportional to the transfer size, and a fixed controller overhead.  It is a
closed-page/open-page hybrid: each bank keeps its last-open row; hits pay
``row_hit_latency``, conflicts pay ``row_miss_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.component import Component
from ..sim.engine import Simulator
from .port import MemoryRequest


@dataclass(frozen=True)
class DRAMConfig:
    """Timing and geometry of the external DDR memory.

    Defaults approximate a DDR3-1066 part behind a lightweight FPGA memory
    controller, expressed in fabric clock cycles (100 MHz).
    """

    num_banks: int = 8
    row_bytes: int = 2048
    row_hit_latency: int = 18
    row_miss_latency: int = 38
    controller_latency: int = 6
    data_bus_bytes_per_cycle: int = 8
    write_latency_penalty: int = 2

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if self.row_bytes <= 0 or self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row_bytes must be a positive power of two")
        if self.data_bus_bytes_per_cycle <= 0:
            raise ValueError("data_bus_bytes_per_cycle must be positive")


class DRAMModel(Component):
    """Event-driven banked DRAM with row-buffer state."""

    def __init__(self, sim: Simulator, config: DRAMConfig | None = None,
                 name: str = "dram"):
        super().__init__(sim, name)
        self.config = config or DRAMConfig()
        self._open_rows: list[int | None] = [None] * self.config.num_banks
        self._bank_free: list[int] = [0] * self.config.num_banks
        self._data_bus_free = 0

    # ------------------------------------------------------------ addressing
    def bank_of(self, addr: int) -> int:
        """Bank index of an address (row-interleaved mapping)."""
        return (addr // self.config.row_bytes) % self.config.num_banks

    def row_of(self, addr: int) -> int:
        return addr // (self.config.row_bytes * self.config.num_banks)

    # ---------------------------------------------------------------- access
    def access(self, request: MemoryRequest) -> None:
        """Accept a request and schedule its completion."""
        cfg = self.config
        request.issue_cycle = self.now

        bank = self.bank_of(request.addr)
        row = self.row_of(request.addr)

        start = max(self.now + cfg.controller_latency, self._bank_free[bank])

        if self._open_rows[bank] == row:
            access_latency = cfg.row_hit_latency
            self.count("row_hits")
        else:
            access_latency = cfg.row_miss_latency
            self._open_rows[bank] = row
            self.count("row_misses")

        transfer_cycles = max(
            1, (request.size + cfg.data_bus_bytes_per_cycle - 1)
            // cfg.data_bus_bytes_per_cycle)

        data_start = max(start + access_latency, self._data_bus_free)
        finish = data_start + transfer_cycles
        if request.is_write:
            finish += cfg.write_latency_penalty
            self.count("writes")
            self.count("bytes_written", request.size)
        else:
            self.count("reads")
            self.count("bytes_read", request.size)

        self._bank_free[bank] = finish
        self._data_bus_free = data_start + transfer_cycles

        self.sample("latency", finish - self.now)
        self.count("requests")

        self.schedule(finish - self.now, lambda r=request: r.complete(self.now))

    # ------------------------------------------------------------------ info
    @property
    def total_bytes_transferred(self) -> int:
        return (self.stats.counter("bytes_read").value
                + self.stats.counter("bytes_written").value)

    def utilisation(self, elapsed_cycles: int) -> float:
        """Fraction of peak bandwidth used over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        peak = elapsed_cycles * self.config.data_bus_bytes_per_cycle
        return min(1.0, self.total_bytes_transferred / peak)
