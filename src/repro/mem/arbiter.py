"""Bus arbitration policies.

Arbiters select which requesting master is granted the shared interconnect
next.  They are deliberately stateless with respect to the bus itself: the
bus hands them the list of master indices that currently have queued
requests, and the arbiter returns the chosen index.
"""

from __future__ import annotations

from typing import List, Sequence


class Arbiter:
    """Base class: choose one master index from a non-empty candidate list."""

    name = "base"

    def choose(self, candidates: Sequence[int]) -> int:
        raise NotImplementedError


class RoundRobinArbiter(Arbiter):
    """Classic rotating-priority round-robin (the paper's interconnect default)."""

    name = "round_robin"

    def __init__(self):
        self._last_granted = -1

    def choose(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("no candidates to arbitrate")
        ordered = sorted(candidates)
        for idx in ordered:
            if idx > self._last_granted:
                self._last_granted = idx
                return idx
        # Wrap around.
        self._last_granted = ordered[0]
        return ordered[0]


class FixedPriorityArbiter(Arbiter):
    """Lowest master index always wins (models a priority port for the host)."""

    name = "fixed_priority"

    def choose(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("no candidates to arbitrate")
        return min(candidates)


class WeightedArbiter(Arbiter):
    """Weighted round-robin: master ``i`` receives up to ``weights[i]``
    consecutive grants before the token rotates."""

    name = "weighted"

    def __init__(self, weights: List[int]):
        if not weights or any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = list(weights)
        self._current = 0
        self._credit = self.weights[0]

    def choose(self, candidates: Sequence[int]) -> int:
        if not candidates:
            raise ValueError("no candidates to arbitrate")
        candidate_set = set(candidates)
        for _ in range(2 * len(self.weights) + 1):
            if self._current in candidate_set and self._credit > 0:
                self._credit -= 1
                return self._current
            self._current = (self._current + 1) % len(self.weights)
            self._credit = self.weights[self._current]
        # All credits exhausted without a match (candidate beyond weight list):
        return min(candidates)


def make_arbiter(kind: str, num_masters: int) -> Arbiter:
    """Factory used by the system synthesiser."""
    if kind == "round_robin":
        return RoundRobinArbiter()
    if kind == "fixed_priority":
        return FixedPriorityArbiter()
    if kind == "weighted":
        return WeightedArbiter([1] * num_masters)
    raise ValueError(f"unknown arbiter kind {kind!r}")
