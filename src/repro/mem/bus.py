"""Shared system interconnect (AXI-like) between bus masters and memory.

Masters (hardware threads' memory interfaces, the host CPU port, the DMA
engine, the shared page-table walker) register with the bus and submit
:class:`~repro.mem.port.MemoryRequest` objects.  The bus serialises the
address/data phases — a transaction occupies the bus for an address-phase
overhead plus one beat per ``bus_width_bytes`` of payload — and forwards the
request to the downstream target (usually the DRAM model).  Completion is
signalled by the downstream target directly to the original requester, which
models the independent read-return channel of AXI.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..sim.component import Component
from ..sim.engine import Simulator
from .arbiter import Arbiter, RoundRobinArbiter
from .port import MemoryRequest, MemoryTarget


@dataclass(frozen=True)
class BusConfig:
    """Interconnect parameters (defaults model a 64-bit AXI at fabric clock)."""

    bus_width_bytes: int = 8
    address_phase_cycles: int = 2
    max_outstanding_per_master: int = 8

    def __post_init__(self) -> None:
        if self.bus_width_bytes <= 0:
            raise ValueError("bus_width_bytes must be positive")
        if self.address_phase_cycles < 0:
            raise ValueError("address_phase_cycles must be non-negative")
        if self.max_outstanding_per_master <= 0:
            raise ValueError("max_outstanding_per_master must be positive")


class BusPort:
    """Handle a master uses to talk to the bus."""

    def __init__(self, bus: "SystemBus", index: int, name: str):
        self.bus = bus
        self.index = index
        self.name = name

    def access(self, request: MemoryRequest) -> None:
        request.master = self.name
        self.bus.submit(self.index, request)

    @property
    def outstanding(self) -> int:
        return self.bus.outstanding(self.index)


class SystemBus(Component):
    """Arbitrated shared bus in front of a single memory target."""

    def __init__(self, sim: Simulator, target: MemoryTarget,
                 config: BusConfig | None = None,
                 arbiter: Optional[Arbiter] = None,
                 name: str = "bus"):
        super().__init__(sim, name)
        self.config = config or BusConfig()
        self.target = target
        self.arbiter = arbiter or RoundRobinArbiter()
        self._queues: List[Deque[MemoryRequest]] = []
        self._ports: List[BusPort] = []
        self._inflight: List[int] = []
        self._busy = False

    # --------------------------------------------------------------- masters
    def attach_master(self, name: str) -> BusPort:
        """Register a new bus master and return its port."""
        index = len(self._ports)
        port = BusPort(self, index, name)
        self._ports.append(port)
        self._queues.append(deque())
        self._inflight.append(0)
        return port

    @property
    def num_masters(self) -> int:
        return len(self._ports)

    def outstanding(self, index: int) -> int:
        return self._inflight[index] + len(self._queues[index])

    # ---------------------------------------------------------------- submit
    def submit(self, master_index: int, request: MemoryRequest) -> None:
        request.issue_cycle = self.now
        self._queues[master_index].append(request)
        self.count("requests")
        self.count(f"requests_from.{self._ports[master_index].name}")
        if not self._busy:
            self._grant_next()

    # ----------------------------------------------------------- arbitration
    def _grant_next(self) -> None:
        candidates = [i for i, q in enumerate(self._queues)
                      if q and self._inflight[i] < self.config.max_outstanding_per_master]
        if not candidates:
            self._busy = False
            return

        self._busy = True
        chosen = self.arbiter.choose(candidates)
        request = self._queues[chosen].popleft()
        self._inflight[chosen] += 1

        wait = self.now - request.issue_cycle
        self.sample("queue_wait", wait)
        if wait > 0:
            self.count("contended_grants")

        beats = max(1, (request.size + self.config.bus_width_bytes - 1)
                    // self.config.bus_width_bytes)
        occupancy = self.config.address_phase_cycles + beats
        self.count("busy_cycles", occupancy)

        original_callback = request.callback
        port_name = self._ports[chosen].name

        def on_complete(req: MemoryRequest, idx: int = chosen) -> None:
            self._inflight[idx] -= 1
            self.sample(f"latency_for.{port_name}", self.now - req.issue_cycle)
            if original_callback is not None:
                original_callback(req)
            # A freed outstanding slot may unblock a queued request even if
            # the bus itself went idle in the meantime.
            if not self._busy:
                self._grant_next()

        request.callback = on_complete

        # Forward to the memory target after the occupancy elapses, then look
        # for the next grant.
        def forward(req: MemoryRequest = request) -> None:
            self.target.access(req)
            self._grant_next()

        self.schedule(occupancy, forward)

    # ------------------------------------------------------------------ info
    def utilisation(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.counter("busy_cycles").value / elapsed_cycles)
