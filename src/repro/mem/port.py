"""Memory request/response plumbing shared by the memory-system components."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol


@dataclass
class MemoryRequest:
    """A physical-address memory transaction.

    ``addr`` is a *physical* address — address translation happens upstream
    in the MMU (:mod:`repro.vm.mmu`).  ``callback`` is invoked exactly once
    when the request retires; it receives the request itself so the issuer
    can recover its context via ``tag``.
    """

    addr: int
    size: int = 4
    is_write: bool = False
    master: str = "?"
    tag: Optional[object] = None
    callback: Optional[Callable[["MemoryRequest"], None]] = None
    issue_cycle: int = 0
    complete_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"negative physical address {self.addr:#x}")
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")

    @property
    def latency(self) -> Optional[int]:
        """Observed latency in cycles, available after completion."""
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle

    def complete(self, cycle: int) -> None:
        """Mark the request complete and fire its callback."""
        self.complete_cycle = cycle
        if self.callback is not None:
            self.callback(self)


class MemoryTarget(Protocol):
    """Anything that can accept a :class:`MemoryRequest` (bus, DRAM, cache)."""

    def access(self, request: MemoryRequest) -> None:
        """Accept a request; completion is signalled via ``request.callback``."""
        ...  # pragma: no cover - protocol


class LatencyPipe:
    """A fixed-latency, infinite-bandwidth memory target (for unit tests)."""

    def __init__(self, sim, latency: int = 1, name: str = "pipe"):
        self.sim = sim
        self.latency = latency
        self.name = name
        self.requests: list[MemoryRequest] = []

    def access(self, request: MemoryRequest) -> None:
        request.issue_cycle = self.sim.now
        self.requests.append(request)
        self.sim.schedule(self.latency, lambda r=request: r.complete(self.sim.now))
