"""Physical memory substrate: DRAM, shared bus, caches, address map."""

from .arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    WeightedArbiter,
    make_arbiter,
)
from .bus import BusConfig, BusPort, SystemBus
from .cache import Cache, CacheConfig
from .dram import DRAMConfig, DRAMModel
from .layout import PhysicalMemoryMap, Region, align_down, align_up
from .port import LatencyPipe, MemoryRequest, MemoryTarget

__all__ = [
    "Arbiter",
    "BusConfig",
    "BusPort",
    "Cache",
    "CacheConfig",
    "DRAMConfig",
    "DRAMModel",
    "FixedPriorityArbiter",
    "LatencyPipe",
    "MemoryRequest",
    "MemoryTarget",
    "PhysicalMemoryMap",
    "Region",
    "RoundRobinArbiter",
    "SystemBus",
    "WeightedArbiter",
    "align_down",
    "align_up",
    "make_arbiter",
]
