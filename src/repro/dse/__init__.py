"""Adaptive design-space exploration: explorer backends and objectives.

The classic grid sweep in :mod:`repro.core.dse` evaluates every candidate;
this package generalizes it behind an :class:`Explorer` protocol so a
budgeted, telemetry-objective search (successive halving over a fidelity
ladder, warm-started from the results store) drops in where the exhaustive
grid used to be — ``explore(explorer="successive-halving", budget=...)``.
"""

from .explorer import (
    BudgetExhaustedError,
    Coords,
    DesignSpace,
    ExhaustiveExplorer,
    Exploration,
    ExplorationPoint,
    Explorer,
    FidelityRung,
    SuccessiveHalvingExplorer,
    explorer_names,
    get_explorer,
    pareto_points,
    register_explorer,
)
from .objectives import MAXIMIZE_AXES, DseObjectives, evaluation_metrics

__all__ = [
    "BudgetExhaustedError",
    "Coords",
    "DesignSpace",
    "DseObjectives",
    "ExhaustiveExplorer",
    "Exploration",
    "ExplorationPoint",
    "Explorer",
    "FidelityRung",
    "MAXIMIZE_AXES",
    "SuccessiveHalvingExplorer",
    "evaluation_metrics",
    "explorer_names",
    "get_explorer",
    "pareto_points",
    "register_explorer",
]
