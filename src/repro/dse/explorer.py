"""Explorer backends: exhaustive grids and budgeted successive halving.

An :class:`Explorer` turns a :class:`DesignSpace` — candidates, their sweep
coordinates, and a fidelity ladder of evaluators from cheapest to full —
into an :class:`Exploration`: the full-fidelity points it trusts and their
Pareto front.  Two backends ship:

* ``exhaustive`` — today's grid: every candidate through the full-fidelity
  evaluator, in candidate order, bit-identical to the classic sweep path;
* ``successive-halving`` — rounds of evaluate-at-the-cheap-rung → keep the
  non-dominated-plus-margin survivors → promote to the next rung, under a
  deterministic seeded sampler and a hard evaluation budget.

Both adopt current-version rows from a
:class:`~repro.store.results.ResultsStore` (warm start) before spending any
evaluations, and both dispatch through the ``runner=`` seam so explorations
parallelize/memoize/distribute like any sweep.  Budget accounting mirrors
into ``runner.stats`` (``explore_evaluations`` / ``explore_warm_hits``).
"""

from __future__ import annotations

import inspect
import itertools
import math
import random
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..exec.keys import stable_key
from .objectives import DseObjectives

#: Canonical sweep-coordinate form (mirrors ``repro.eval.sweep.Coords``).
Coords = Tuple[Tuple[str, Any], ...]


class BudgetExhaustedError(RuntimeError):
    """The evaluation budget cannot cover the requested exploration."""


@dataclass(frozen=True)
class FidelityRung:
    """One rung of the fidelity ladder: a named evaluator."""

    name: str
    evaluator: Callable[[Any], Any]


@dataclass(frozen=True)
class DesignSpace:
    """Candidates, their coordinates, and the fidelity ladder."""

    candidates: Tuple[Any, ...]
    coords: Tuple[Coords, ...]
    #: Cheapest rung first; the last rung is the trusted full fidelity.
    ladder: Tuple[FidelityRung, ...]

    def __post_init__(self) -> None:
        if len(self.candidates) != len(self.coords):
            raise ValueError(f"{len(self.candidates)} candidates but "
                             f"{len(self.coords)} coords")
        if not self.ladder:
            raise ValueError("the fidelity ladder needs at least one rung")

    def size(self) -> int:
        return len(self.candidates)

    @property
    def full(self) -> FidelityRung:
        """The trusted full-fidelity rung (last on the ladder)."""
        return self.ladder[-1]

    @classmethod
    def from_axes(cls, axes: Mapping[str, Sequence[Any]],
                  ladder: Sequence[FidelityRung]) -> "DesignSpace":
        """Cartesian-product space: each candidate is an axis->value dict."""
        if not axes:
            raise ValueError("a design space needs at least one axis")
        names = list(axes)
        candidates, coords = [], []
        for values in itertools.product(*(axes[name] for name in names)):
            assignment = dict(zip(names, values))
            candidates.append(assignment)
            coords.append(tuple(sorted(assignment.items())))
        return cls(candidates=tuple(candidates), coords=tuple(coords),
                   ladder=tuple(ladder))


@dataclass(frozen=True)
class ExplorationPoint:
    """One trusted design point: coordinates plus objective values."""

    coords: Coords
    #: Natural-sense objective values, in ``objectives.axes`` order.
    values: Tuple[Any, ...]
    #: Ladder rung that produced the values (full fidelity for trusted
    #: points; intermediate rungs only appear in survivor bookkeeping).
    fidelity: str
    #: ``"evaluated"`` or ``"warm-start"`` (adopted from the results store).
    source: str = "evaluated"

    @property
    def params(self) -> Dict[str, Any]:
        return dict(self.coords)


@dataclass
class Exploration:
    """What an explorer found and what it spent finding it."""

    objectives: DseObjectives
    space_size: int
    budget: Optional[int]
    evaluations: int = 0
    warm_hits: int = 0
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    #: Dispatch order, ``(rung name, coords)`` per evaluation — the seeded
    #: sampler makes this reproducible: same space/seed/budget, same log.
    log: List[Tuple[str, Coords]] = field(default_factory=list)
    #: Full-fidelity pool (evaluated survivors + warm-start adoptions).
    points: List[ExplorationPoint] = field(default_factory=list)
    front: List[ExplorationPoint] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (front and points as param/value rows)."""
        def rows(points: List[ExplorationPoint]) -> List[Dict[str, Any]]:
            return [{"params": p.params, "source": p.source,
                     **dict(zip(self.objectives.axes, p.values))}
                    for p in points]
        return {
            "objectives": list(self.objectives.axes),
            "space_size": self.space_size,
            "budget": self.budget,
            "evaluations": self.evaluations,
            "warm_hits": self.warm_hits,
            "explored_fraction": (round(self.evaluations / self.space_size, 6)
                                  if self.space_size else 0.0),
            "rounds": list(self.rounds),
            "points": rows(self.points),
            "front": rows(self.front),
        }


def _tie_token(coords: Coords) -> str:
    """Deterministic, input-order-independent tie-break for equal vectors."""
    return repr(coords)


def pareto_positions(vectors: Sequence[Tuple[Any, ...]],
                     tokens: Sequence[str]) -> List[int]:
    """Positions of the non-dominated minimized vectors.

    Sorting by (vector, token) makes the scan linear in the front size: a
    lexicographically later vector can never dominate an earlier one, so a
    single forward pass against the accepted set suffices.  Equal vectors
    never dominate each other, hence all duplicates survive.  The returned
    positions follow the sorted order — deterministic regardless of input
    order.
    """
    order = sorted(range(len(vectors)), key=lambda i: (vectors[i], tokens[i]))
    accepted: List[int] = []
    for i in order:
        v = vectors[i]
        if any(all(x <= y for x, y in zip(vectors[j], v)) and vectors[j] != v
               for j in accepted):
            continue
        accepted.append(i)
    return accepted


def pareto_points(points: Sequence[ExplorationPoint],
                  objectives: DseObjectives) -> List[ExplorationPoint]:
    """The non-dominated subset, in canonical (minimized, coords) order."""
    vectors = [objectives.minimized(p.values) for p in points]
    tokens = [_tie_token(p.coords) for p in points]
    return [points[i] for i in pareto_positions(vectors, tokens)]


# --------------------------------------------------------------------------
# Explorer registry
# --------------------------------------------------------------------------
_EXPLORERS: Dict[str, Callable[[], "Explorer"]] = {}


def register_explorer(name: str):
    """Class decorator: register an explorer backend under ``name``."""
    def decorate(cls):
        cls.name = name
        _EXPLORERS[name] = cls
        return cls
    return decorate


def explorer_names() -> List[str]:
    return sorted(_EXPLORERS)


def get_explorer(which: Any) -> "Explorer":
    """Resolve a backend by registry name, or pass an instance through."""
    if isinstance(which, str):
        try:
            return _EXPLORERS[which]()
        except KeyError:
            raise KeyError(f"unknown explorer {which!r}; "
                           f"registered: {explorer_names()}") from None
    if hasattr(which, "explore"):
        return which
    raise TypeError(f"explorer must be a registry name or provide .explore(); "
                    f"got {type(which).__name__}")


class Explorer:
    """Protocol + shared machinery for exploration backends.

    Subclasses implement :meth:`explore`; the base class owns warm start,
    runner dispatch, budget charging and the evaluation log, so every
    backend accounts spending identically.
    """

    name = "abstract"

    def explore(self, space: DesignSpace, *,
                objectives: Optional[DseObjectives] = None,
                runner: Optional[Any] = None,
                budget: Optional[int] = None,
                results: Optional[Any] = None,
                seed: int = 0) -> Exploration:
        raise NotImplementedError

    # ------------------------------------------------------------ shared
    @staticmethod
    def _warm_start(space: DesignSpace, results: Optional[Any],
                    objectives: DseObjectives, runner: Optional[Any],
                    exploration: Exploration
                    ) -> Tuple[Dict[int, ExplorationPoint], List[int]]:
        """Adopt current-version store rows before spending any budget.

        Keys match what :meth:`SweepRunner.map` records for the same
        evaluator + candidate, so any prior sweep/exploration that went
        through ``--results-db`` seeds this one.  Adoptions cost zero
        evaluations and are never re-dispatched.
        """
        pool = list(range(space.size()))
        if results is None:
            return {}, pool
        try:
            keys = [stable_key(space.full.evaluator, c)
                    for c in space.candidates]
        except TypeError:          # evaluator not content-addressable
            return {}, pool
        found = results.warm_values(keys)
        warm: Dict[int, ExplorationPoint] = {}
        rest: List[int] = []
        for i, key in enumerate(keys):
            if key in found:
                try:
                    values = objectives.extract(found[key])
                except (KeyError, TypeError, ValueError):
                    rest.append(i)     # stale/foreign payload: re-evaluate
                    continue
                warm[i] = ExplorationPoint(space.coords[i], values,
                                           space.full.name, "warm-start")
            else:
                rest.append(i)
        exploration.warm_hits = len(warm)
        stats = getattr(runner, "stats", None)
        if stats is not None:
            stats.explore_warm_hits += len(warm)
        return warm, rest

    @staticmethod
    def _evaluate(space: DesignSpace, rung: FidelityRung, cohort: List[int],
                  runner: Optional[Any], exploration: Exploration
                  ) -> List[Any]:
        """Dispatch one cohort through a rung, charging the budget."""
        items = [space.candidates[i] for i in cohort]
        if runner is not None:
            kwargs: Dict[str, Any] = {}
            try:
                params = inspect.signature(runner.map).parameters
            except (TypeError, ValueError):
                params = {}
            if "label" in params:
                kwargs["label"] = f"dse:{rung.name}"
            if "coords" in params:
                kwargs["coords"] = [space.coords[i] for i in cohort]
            values = runner.map(rung.evaluator, items, **kwargs)
            stats = getattr(runner, "stats", None)
            if stats is not None:
                stats.explore_evaluations += len(items)
        else:
            values = [rung.evaluator(item) for item in items]
        exploration.evaluations += len(items)
        exploration.log.extend((rung.name, space.coords[i]) for i in cohort)
        return list(values)

    @staticmethod
    def _pool(warm: Dict[int, ExplorationPoint],
              scored: Dict[int, ExplorationPoint]) -> List[ExplorationPoint]:
        """Merge warm + evaluated points back into candidate order."""
        merged = dict(warm)
        merged.update(scored)
        return [merged[i] for i in sorted(merged)]


@register_explorer("exhaustive")
class ExhaustiveExplorer(Explorer):
    """Every candidate through the full-fidelity rung, in candidate order."""

    def explore(self, space, *, objectives=None, runner=None, budget=None,
                results=None, seed=0):
        objectives = objectives or DseObjectives()
        exploration = Exploration(objectives=objectives,
                                  space_size=space.size(), budget=budget)
        warm, pool = self._warm_start(space, results, objectives, runner,
                                      exploration)
        if budget is not None and len(pool) > budget:
            raise BudgetExhaustedError(
                f"exhaustive exploration needs {len(pool)} evaluations but "
                f"the budget is {budget}; use the successive-halving "
                f"explorer to search under a budget")
        values = self._evaluate(space, space.full, pool, runner, exploration)
        scored = {i: ExplorationPoint(space.coords[i], objectives.extract(v),
                                      space.full.name)
                  for i, v in zip(pool, values)}
        exploration.rounds.append({"fidelity": space.full.name,
                                   "cohort": len(pool),
                                   "adopted": len(warm)})
        exploration.points = self._pool(warm, scored)
        exploration.front = pareto_points(exploration.points, objectives)
        return exploration


@register_explorer("successive-halving")
class SuccessiveHalvingExplorer(Explorer):
    """Budgeted multi-fidelity search: front-plus-margin survivors promote.

    Each round evaluates the cohort at the next-cheapest rung and keeps its
    Pareto front plus a margin of near-front points (ranked by how many
    cohort members dominate them); only final-rung evaluations and
    warm-start adoptions enter the trusted pool.  When the cheap rungs rank
    candidates consistently with full fidelity — in particular whenever
    cheap objectives are monotone transforms of the full ones — every
    true-front candidate is on every round's front, survives regardless of
    the margin, and the recovered front equals the exhaustive one exactly
    (the oracle suite pins this).

    The sampler is a seeded :class:`random.Random`: with the same space,
    seed and budget the evaluation sequence is identical run to run, and
    the budget is a hard cap — each rung's share is an even split of the
    remaining budget over the remaining rungs, and any cohort beyond its
    share is subsampled down to it (``budget >= K * |space|`` on a
    ``K``-rung ladder therefore never subsamples at all).
    """

    def __init__(self, margin: float = 1.0):
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin

    def explore(self, space, *, objectives=None, runner=None, budget=None,
                results=None, seed=0):
        objectives = objectives or DseObjectives()
        exploration = Exploration(objectives=objectives,
                                  space_size=space.size(), budget=budget)
        warm, cohort = self._warm_start(space, results, objectives, runner,
                                        exploration)
        rungs = space.ladder
        if budget is not None and cohort and budget < len(rungs):
            raise BudgetExhaustedError(
                f"budget {budget} cannot push any candidate through the "
                f"{len(rungs)}-rung fidelity ladder")
        rng = random.Random(seed)
        remaining = budget
        scored: Dict[int, ExplorationPoint] = {}
        for r, rung in enumerate(rungs):
            if not cohort:
                break
            later = len(rungs) - 1 - r
            sampled_out = 0
            if remaining is not None:
                # Even split of what's left across the remaining rungs; a
                # cohort below its share leaves the surplus to later rungs.
                # budget >= #rungs keeps every share positive (inductively
                # remaining >= rungs left at each rung start).
                afford = max(1, remaining // (later + 1))
                if len(cohort) > afford:
                    # One rng.random() draw per member, keep the smallest:
                    # random() is the only generator method with a cross-
                    # version reproducibility guarantee, and golden pins
                    # depend on the sampled subset.
                    draws = [rng.random() for _ in cohort]
                    keep = sorted(sorted(range(len(cohort)),
                                         key=lambda k: (draws[k], k))[:afford])
                    sampled_out = len(cohort) - afford
                    cohort = [cohort[k] for k in keep]
            values = self._evaluate(space, rung, cohort, runner, exploration)
            if remaining is not None:
                remaining -= len(cohort)
            points = {i: ExplorationPoint(space.coords[i],
                                          objectives.extract(v), rung.name)
                      for i, v in zip(cohort, values)}
            round_info = {"fidelity": rung.name, "cohort": len(cohort),
                          "sampled_out": sampled_out}
            if later == 0:
                scored = points
                exploration.rounds.append(round_info)
                break
            cohort = self._survivors(points, objectives)
            round_info["survivors"] = len(cohort)
            exploration.rounds.append(round_info)
        exploration.points = self._pool(warm, scored)
        exploration.front = pareto_points(exploration.points, objectives)
        return exploration

    def _survivors(self, points: Dict[int, ExplorationPoint],
                   objectives: DseObjectives) -> List[int]:
        """Front plus ``ceil(margin * |front|)`` nearest-to-front extras."""
        indices = sorted(points)
        vectors = [objectives.minimized(points[i].values) for i in indices]
        tokens = [_tie_token(points[i].coords) for i in indices]
        front = set(pareto_positions(vectors, tokens))
        survivors = {indices[p] for p in front}
        extra = math.ceil(self.margin * len(front))
        if extra:
            dominated = [p for p in range(len(indices)) if p not in front]
            # Rank by how contested the point is: fewer dominators first.
            def rank(p: int) -> Tuple[Any, ...]:
                dominators = sum(
                    1 for q in range(len(indices))
                    if all(x <= y for x, y in zip(vectors[q], vectors[p]))
                    and vectors[q] != vectors[p])
                return (dominators, vectors[p], tokens[p])
            for p in sorted(dominated, key=rank)[:extra]:
                survivors.add(indices[p])
        return sorted(survivors)
