"""Pareto objectives for design-space exploration.

``DseObjectives`` names the axes an exploration optimizes and extracts their
values from whatever an evaluator returned.  Three payload shapes are
understood, so the same objectives work across every evaluator generation:

* the legacy ``(runtime_cycles, ResourceEstimate)`` tuple produced by the
  fig10/fig13 evaluators,
* a plain metrics mapping (the fig14 evaluator returns one), and
* a :class:`~repro.models.base.RunOutcome`, whose telemetry-derived axes
  (miss-stall cycles, host-refill rate, per-epoch fairness) come out of
  ``breakdown`` — the per-epoch counters the ``TelemetryBus`` attributed
  during the run, surfaced next to ``breakdown["epochs"]``.

All axes are minimized for dominance except the ones in
:data:`MAXIMIZE_AXES` (fairness: larger is better), which are negated
internally; reported values stay in their natural sense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

#: Axes where larger is better; :meth:`DseObjectives.minimized` negates
#: these so dominance uniformly means "componentwise no worse".
MAXIMIZE_AXES = frozenset({"fairness"})

#: Metric aliases: the first present name wins during extraction.
_ALIASES: Dict[str, Tuple[str, ...]] = {
    "cycles": ("cycles", "total_cycles", "runtime_cycles"),
}


def evaluation_metrics(evaluation: Any) -> Dict[str, Any]:
    """Flatten one evaluator payload into a metric mapping.

    Accepts a mapping (returned as-is, copied), a legacy ``(runtime,
    resources)`` tuple, or a ``RunOutcome``-shaped object with
    ``total_cycles`` and an optional ``breakdown`` mapping.
    """
    if isinstance(evaluation, Mapping):
        return dict(evaluation)
    if (isinstance(evaluation, tuple) and len(evaluation) == 2
            and isinstance(evaluation[0], (int, float))):
        runtime, resources = evaluation
        metrics: Dict[str, Any] = {"cycles": runtime}
        for name in ("luts", "ffs", "bram_kb", "dsps"):
            value = getattr(resources, name, None)
            if value is not None:
                metrics[name] = value
        return metrics
    if hasattr(evaluation, "total_cycles"):
        metrics = {"cycles": evaluation.total_cycles}
        for name in ("fabric_cycles", "tlb_misses", "faults"):
            value = getattr(evaluation, name, None)
            if value is not None:
                metrics[name] = value
        breakdown = getattr(evaluation, "breakdown", None) or {}
        metrics.update(breakdown)
        # Derived rates: refills per kilocycle mirrors EpochStats.
        if "host_tlb_refills" in breakdown and evaluation.total_cycles:
            metrics["host_refill_rate"] = (1000.0 * breakdown["host_tlb_refills"]
                                           / evaluation.total_cycles)
        if "epoch_fairness" in breakdown:
            metrics["fairness"] = breakdown["epoch_fairness"]
        return metrics
    raise TypeError(f"cannot extract objectives from {type(evaluation).__name__}: "
                    "expected a mapping, a (runtime, resources) tuple, or a "
                    "RunOutcome")


@dataclass(frozen=True)
class DseObjectives:
    """The named Pareto axes of an exploration, in report order."""

    axes: Tuple[str, ...] = ("cycles", "luts")

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("objectives need at least one axis")
        if len(set(self.axes)) != len(self.axes):
            raise ValueError(f"duplicate objective axes: {self.axes}")

    def extract(self, evaluation: Any) -> Tuple[Any, ...]:
        """Natural-sense objective values, in ``axes`` order."""
        metrics = evaluation_metrics(evaluation)
        values = []
        for axis in self.axes:
            for name in _ALIASES.get(axis, (axis,)):
                if name in metrics:
                    values.append(metrics[name])
                    break
            else:
                raise KeyError(f"objective axis {axis!r} not in evaluation "
                               f"metrics {sorted(metrics)}")
        return tuple(values)

    def minimized(self, values: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Values mapped so that smaller is uniformly better."""
        return tuple(-v if axis in MAXIMIZE_AXES else v
                     for axis, v in zip(self.axes, values))

    def dominates(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
        """True if natural-sense vector ``a`` Pareto-dominates ``b``."""
        ma, mb = self.minimized(a), self.minimized(b)
        return all(x <= y for x, y in zip(ma, mb)) and ma != mb
