"""Parallel, memoized sweep execution.

:class:`SweepRunner` evaluates independent experiment points — "apply this
pure function to each of these spec/config items" — with three orthogonal
accelerations:

* **parallelism**: ``jobs > 1`` fans the uncached points out over a
  ``concurrent.futures`` process pool; anything unpicklable (or a broken
  pool, e.g. in sandboxes without ``fork``) falls back to the serial path,
* **memoization**: results are stored in a :class:`~repro.exec.cache.MemoCache`
  keyed by a stable content hash of (function, item), so repeated points
  within a sweep, across figures, or across sweeps are evaluated once,
* **timing**: per-sweep wall-clock is accumulated in an
  ``ExperimentMediator``-style ``timings`` dict for progress reporting.

Results are returned in input order and are bit-identical to the serial
path: every point builds its own seeded simulation, so evaluation order and
placement (process vs subprocess) cannot influence the outcome.
"""

from __future__ import annotations

import concurrent.futures
import concurrent.futures.process
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..models import UnknownModelError
from .cache import MemoCache
from .keys import stable_key

_UNSET = object()

#: Pool-infrastructure errors that degrade to the serial path instead of
#: propagating as point failures (see :meth:`SweepRunner._evaluate`).
_POOL_FALLBACK_ERRORS = (concurrent.futures.process.BrokenProcessPool,
                         OSError, pickle.PicklingError, TypeError,
                         AttributeError, UnknownModelError)


@dataclass
class RunnerStats:
    """Aggregate accounting across every ``map`` call of one runner.

    ``tier_counts`` breaks the executed points down by the execution tier
    that actually produced each result (``"event"`` vs ``"replay"``, read
    from the outcome's ``tier`` field); memoized points are counted as
    ``cache_hits``, not by tier — no simulation ran for them.  Results
    without a ``tier`` field (scalar metrics, non-model sweeps) are not
    counted.
    """

    points_submitted: int = 0
    points_executed: int = 0
    cache_hits: int = 0
    parallel_batches: int = 0
    serial_batches: int = 0
    #: Points whose evaluation raised (the first failure is propagated
    #: eagerly; queued work is cancelled, so at most one failure is *counted*
    #: per batch even if more would have failed).
    failed_jobs: int = 0
    #: Re-executions of the same point after a lease expiry or transient
    #: failure (distributed runners only; the in-process pool never retries).
    retries: int = 0
    #: Budget accounting of adaptive explorations (:mod:`repro.dse`):
    #: evaluations an explorer dispatched (charged against its ``budget``)
    #: and candidates it adopted from the results store without spending
    #: any (warm starts).
    explore_evaluations: int = 0
    explore_warm_hits: int = 0
    tier_counts: Dict[str, int] = field(default_factory=dict)

    def count_tiers(self, results: Iterable[Any]) -> None:
        """Tally the ``tier`` field of each freshly executed result."""
        for result in results:
            tier = getattr(result, "tier", None)
            if isinstance(tier, str):
                self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1

    def as_dict(self) -> Dict[str, int]:
        out = {"points_submitted": self.points_submitted,
               "points_executed": self.points_executed,
               "cache_hits": self.cache_hits,
               "parallel_batches": self.parallel_batches,
               "serial_batches": self.serial_batches,
               "failed_jobs": self.failed_jobs,
               "retries": self.retries,
               "explore_evaluations": self.explore_evaluations,
               "explore_warm_hits": self.explore_warm_hits}
        for tier, count in sorted(self.tier_counts.items()):
            out[f"tier_{tier}"] = count
        return out


class SweepRunner:
    """Evaluate independent experiment points, optionally in parallel.

    Parameters
    ----------
    jobs:
        Maximum worker processes.  ``1`` (the default) evaluates serially in
        the calling process; ``None`` uses the machine's CPU count.
    cache:
        A :class:`MemoCache` for content-addressed result reuse, or ``None``
        to disable memoization entirely.
    progress:
        Optional callable invoked with one human-readable line per sweep
        (label, point count, cache hits, wall time).
    results:
        An optional :class:`~repro.store.ResultsStore`: every computed (or
        cache-served) outcome is appended to it, keyed by the same memo
        key.  The store deduplicates per (key, git sha), so re-running an
        unchanged sweep appends nothing.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[MemoCache] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 results: Optional[Any] = None):
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.results = results
        #: label -> accumulated wall-clock seconds, one entry per sweep label.
        self.timings: Dict[str, float] = {}
        self.stats = RunnerStats()

    # ------------------------------------------------------------------- map
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            label: Optional[str] = None,
            coords: Optional[Sequence[Dict[str, Any]]] = None) -> List[Any]:
        """Apply ``fn`` to every item; returns results in input order.

        ``fn`` must be pure and deterministic.  With a cache attached,
        duplicate items (within this call or remembered from earlier calls)
        are evaluated once; with ``jobs > 1`` the remaining evaluations run
        on a process pool when ``fn`` and the items can be pickled.
        ``coords`` optionally labels each item with its sweep coordinates
        (one mapping per item, as :meth:`Sweep.run` passes) — recorded into
        the attached results store, ignored otherwise.
        """
        items = list(items)
        if coords is not None and len(coords) != len(items):
            raise ValueError("one coords mapping per item required")
        label = label or getattr(fn, "__name__", "sweep")
        started = time.perf_counter()
        self.stats.points_submitted += len(items)

        keys = self._keys_for(fn, items)
        if self.cache is None or keys is None:
            results = self._evaluate(fn, items)
        else:
            results = self._map_memoized(fn, items, keys)
        self._record_results(keys, items, results, label, coords)

        elapsed = time.perf_counter() - started
        self.timings[label] = self.timings.get(label, 0.0) + elapsed
        if self.progress is not None:
            hits = self.stats.cache_hits
            self.progress(f"{label}: {len(items)} point(s) in {elapsed:.2f}s "
                          f"(jobs={self.jobs}, cumulative cache hits={hits})")
        return results

    def _keys_for(self, fn: Callable[[Any], Any],
                  items: Sequence[Any]) -> Optional[List[str]]:
        """Memo keys for every item, or ``None`` when unkeyable.

        Unkeyable inputs (local closures, exotic objects) evaluate directly
        and are never memoized or recorded — correctness first, both layers
        are best-effort.  Computed once per ``map`` so the cache and the
        results store agree on the address of every point.
        """
        if self.cache is None and self.results is None:
            return None
        try:
            return [stable_key(fn, item) for item in items]
        except TypeError:
            return None

    def _record_results(self, keys: Optional[List[str]],
                        items: Sequence[Any], results: Sequence[Any],
                        label: str,
                        coords: Optional[Sequence[Dict[str, Any]]]) -> None:
        """Append every outcome of one ``map`` call to the results store.

        Cache hits are recorded too: the store's (key, sha) dedup makes
        that idempotent, and it lets a warm-cache run populate a fresh
        store without re-simulating anything.
        """
        if self.results is None or keys is None:
            return
        for position, (key, value) in enumerate(zip(keys, results)):
            item = items[position]
            self.results.record(
                key, value, experiment=label,
                coords=coords[position] if coords is not None else None,
                kernel=getattr(getattr(item, "workload", None),
                               "kernel", None))

    def _map_memoized(self, fn: Callable[[Any], Any],
                      items: Sequence[Any],
                      keys: Sequence[str]) -> List[Any]:
        results: List[Any] = [_UNSET] * len(items)
        pending: Dict[str, List[int]] = {}   # key -> positions needing it
        for position, key in enumerate(keys):
            if key in self.cache:
                results[position] = self.cache.get(key)
                self.stats.cache_hits += 1
            else:
                pending.setdefault(key, []).append(position)

        fresh = self._evaluate(
            fn, [items[positions[0]] for positions in pending.values()])
        for (key, positions), value in zip(pending.items(), fresh):
            self.cache.put(key, value)
            for position in positions:
                results[position] = value
            self.stats.cache_hits += len(positions) - 1   # in-call duplicates
        return results

    # ------------------------------------------------------------- evaluate
    def _evaluate(self, fn: Callable[[Any], Any],
                  items: Sequence[Any]) -> List[Any]:
        self.stats.points_executed += len(items)
        if self.jobs <= 1 or len(items) <= 1 or not _picklable(fn, items):
            self.stats.serial_batches += 1
            return self._evaluate_serial(fn, items)
        workers = min(self.jobs, len(items))
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(fn, item) for item in items]
                try:
                    for future in concurrent.futures.as_completed(futures):
                        error = future.exception()
                        if error is not None:
                            raise error
                except _POOL_FALLBACK_ERRORS:
                    raise
                except BaseException:
                    # First genuine point failure: cancel everything still
                    # queued and surface it now, instead of letting the rest
                    # of the pool drain first.  (Futures already running
                    # finish on pool shutdown; their results are discarded.)
                    pool.shutdown(wait=False, cancel_futures=True)
                    self.stats.failed_jobs += 1
                    raise
                results = [future.result() for future in futures]
            self.stats.parallel_batches += 1
            self.stats.count_tiers(results)
            return results
        except _POOL_FALLBACK_ERRORS:
            # Pool could not be sustained (restricted sandbox, fork failure),
            # an item/result beyond the sampled first one failed to pickle,
            # or a spawn/forkserver worker lacks an execution model that was
            # registered outside module import (the parent validated the name
            # at job construction, so the registration exists *here*).
            # Points are pure, so re-running serially is safe and identical —
            # and a genuine TypeError from ``fn`` itself will re-raise from
            # the serial pass below.
            self.stats.serial_batches += 1
            return self._evaluate_serial(fn, items)

    def _evaluate_serial(self, fn: Callable[[Any], Any],
                         items: Sequence[Any]) -> List[Any]:
        results: List[Any] = []
        for item in items:
            try:
                results.append(fn(item))
            except BaseException:
                self.stats.failed_jobs += 1
                raise
        self.stats.count_tiers(results)
        return results

    # -------------------------------------------------------------- summary
    def summary_dict(self) -> Dict[str, Any]:
        """The runner summary as plain data: per-stage wall, tier counts,
        cache/parallelism accounting — the JSON behind ``repro run --stats``."""
        out: Dict[str, Any] = {
            "jobs": self.jobs,
            "timings_s": {label: round(seconds, 6)
                          for label, seconds in sorted(self.timings.items())},
            "total_wall_s": round(sum(self.timings.values()), 6),
            "stats": self.stats.as_dict(),
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    def summary(self) -> str:
        """Multi-line report of timings and cache/parallelism accounting."""
        lines = [f"sweep timings (jobs={self.jobs}):"]
        for label, seconds in sorted(self.timings.items()):
            lines.append(f"  {label:<28s} {seconds:8.3f}s")
        stats = self.stats.as_dict()
        if self.cache is not None:
            stats.update(cache_entries=len(self.cache))
        lines.append("  " + "  ".join(f"{k}={v}" for k, v in stats.items()))
        return "\n".join(lines)


def _picklable(fn: Callable[[Any], Any], items: Sequence[Any]) -> bool:
    """True when ``fn`` and a sample item can cross a process boundary."""
    try:
        pickle.dumps(fn)
        if items:
            pickle.dumps(items[0])
        return True
    except Exception:
        return False
