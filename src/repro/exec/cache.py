"""Content-addressed memoization cache for experiment results.

Experiments are deterministic simulations: the same (function, inputs) pair
always produces the same result, so results can be reused freely.  The cache
is a mapping from :func:`repro.exec.keys.stable_key` digests to results with
two layers:

* an in-memory dict, shared process-wide by default so repeated points
  *across* figures (e.g. the same ``run_svm`` configuration appearing in
  Fig. 5 and Fig. 9) are evaluated once per process, and
* an optional on-disk layer (``path=``): every stored result is also
  pickled to ``<path>/v<version>/<key[:2]>/<key>.pkl``, and probes that miss
  in memory fall through to disk — so cache hits survive across processes
  and CLI invocations.  Entries are namespaced by the package version:
  changes to the built-in simulator ship with a version bump, so a stale
  cache directory cannot serve a previous *release's* numbers.  (Keys
  identify externally-registered execution models by name only — after
  editing such a model's logic, point the cache at a fresh directory or
  ``clear()`` it.)  Disk writes are atomic (temp file + rename) and disk
  reads are best-effort: a corrupt or unreadable entry is treated as a miss.

The CLI persists to ``.repro-cache/`` by default (``--cache-dir`` /
``REPRO_CACHE_DIR`` override); library callers opt in via
``MemoCache(path=...)`` or ``default_cache(path=...)``.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Union

_MISSING = object()


def _version_namespace() -> str:
    """Per-release subdirectory for disk entries.

    Imported lazily (``repro`` pulls this module in during its own import).
    This guards the built-in simulator only; cache keys cannot see the
    *implementation* of externally-registered models (they carry just the
    registered name), so edits to those require a fresh cache directory.
    """
    from .. import __version__
    return f"v{__version__}"


class MemoCache:
    """Result store keyed by stable content hashes, optionally disk-backed.

    ``max_bytes`` caps the disk layer: after every store the cache prunes
    least-recently-*used* entries (mtime order — reads refresh an entry's
    mtime) until the layout fits the cap.  The in-memory layer is never
    pruned; long-lived cache *directories* are what grow without bound.
    """

    def __init__(self, path: Union[str, os.PathLike, None] = None,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for no cap)")
        self._data: Dict[str, Any] = {}
        self.path: Optional[Path] = Path(path) if path is not None else None
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.disk_evictions = 0
        #: Running estimate of the disk layout's size; None until the first
        #: capped store scans the directory.  Keeps pruning O(1) per store
        #: while under the cap (the full rescan happens only when crossed).
        self._disk_bytes: Optional[int] = None
        # A capped cache over a pre-existing directory enforces the cap up
        # front — hit-only runs must shrink an oversized layout too.
        if self.path is not None and self.max_bytes is not None:
            self._prune()

    # ------------------------------------------------------------ disk layer
    def _entry_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / _version_namespace() / key[:2] / f"{key}.pkl"

    def _load_from_disk(self, key: str) -> Any:
        """The persisted value for ``key``, or ``_MISSING`` on any failure."""
        if self.path is None:
            return _MISSING
        entry = self._entry_path(key)
        try:
            with open(entry, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError):
            return _MISSING
        try:
            os.utime(entry)          # LRU touch: recently-used survives pruning
        except OSError:
            pass
        return value

    def _store_to_disk(self, key: str, value: Any) -> None:
        """Best-effort atomic persist; unpicklable values stay memory-only."""
        if self.path is None:
            return
        entry = self._entry_path(key)
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=entry.parent,
                                            prefix=f".{key[:8]}-")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, entry)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            return
        if self.max_bytes is not None and self._disk_bytes is not None:
            try:
                # Overwrites double-count; that only triggers a rescan early.
                self._disk_bytes += entry.stat().st_size
            except OSError:
                self._disk_bytes = None          # unknown -> next prune rescans
        self._prune()

    def _disk_entry_files(self, root: Optional[Path] = None):
        """Yield the layout's ``v*/<xx>/<key>.pkl`` files, race-tolerantly.

        Several workers may share one cache directory (the fleet-wide memo
        store), so another process's eviction — or ``clear()`` — can remove
        files and directories between listing and inspection.  ``Path.glob``
        can propagate ``FileNotFoundError`` from a vanished intermediate
        directory mid-scan; this walk treats anything that disappears as
        simply not there.
        """
        roots = [root] if root is not None else []
        if root is None:
            if self.path is None:
                return
            try:
                roots = [child for child in self.path.iterdir()
                         if child.name.startswith("v")]
            except OSError:
                return
        for namespace in roots:
            try:
                shards = list(namespace.iterdir())
            except OSError:
                continue
            for shard in shards:
                try:
                    files = list(shard.iterdir())
                except OSError:
                    continue
                for entry in files:
                    if entry.suffix == ".pkl":
                        yield entry

    def _prune(self) -> None:
        """Evict least-recently-used disk entries until under ``max_bytes``.

        Guarded by a running size estimate, so while the layout fits the cap
        each store costs one stat, not a directory walk.  When the estimate
        crosses the cap, the cache's own ``v*/<xx>/<key>.pkl`` layout (all
        version namespaces — entries of older releases are typically the
        coldest and go first) is rescanned authoritatively and oldest-mtime
        entries are unlinked until under the cap.  A corrupt or concurrently-
        deleted entry is skipped; it cannot block eviction of the rest, and
        an entry another worker evicted between our scan and our unlink
        still counts as freed bytes (just not as one of *our* evictions).
        """
        if self.path is None or self.max_bytes is None:
            return
        if self._disk_bytes is not None and self._disk_bytes <= self.max_bytes:
            return
        entries = []
        total = 0
        for entry in self._disk_entry_files():
            try:
                stat = entry.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, entry))
            total += stat.st_size
        if total > self.max_bytes:
            for _mtime, size, entry in sorted(entries):
                try:
                    entry.unlink()
                except FileNotFoundError:
                    # A concurrent writer's eviction won the race: the bytes
                    # are gone either way.
                    total -= size
                    if total <= self.max_bytes:
                        break
                    continue
                except OSError:
                    continue
                self.disk_evictions += 1
                total -= size
                if total <= self.max_bytes:
                    break
        self._disk_bytes = total

    def disk_entries(self) -> int:
        """Number of persisted results for this code version (0 if none)."""
        if self.path is None:
            return 0
        namespace = self.path / _version_namespace()
        if not namespace.is_dir():
            return 0
        return sum(1 for _ in self._disk_entry_files(root=namespace))

    # --------------------------------------------------------------- mapping
    def get(self, key: str, default: Any = None) -> Any:
        """Fetch a cached result, counting the probe as hit or miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            value = self._load_from_disk(key)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data[key] = value          # promote disk hits to memory
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._store_to_disk(key, value)

    def __contains__(self, key: str) -> bool:
        if key in self._data:
            return True
        value = self._load_from_disk(key)
        if value is _MISSING:
            return False
        self._data[key] = value          # contains == loadable; promote now
        return True

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        """Drop every entry, in memory and (when disk-backed) on disk.

        Disk deletion is scoped to the cache's own ``v*/<xx>/<key>.pkl``
        layout (all versions), so a cache pointed at a shared directory
        never touches files it did not write.
        """
        self._data.clear()
        self._disk_bytes = None
        if self.path is not None and self.path.is_dir():
            for entry in self._disk_entry_files():
                try:
                    entry.unlink()
                except OSError:
                    pass

    def stats(self) -> Dict[str, int]:
        stats = {"entries": len(self._data),
                 "hits": self.hits, "misses": self.misses}
        if self.path is not None:
            stats["disk_entries"] = self.disk_entries()
            stats["disk_evictions"] = self.disk_evictions
        return stats


#: Process-wide caches (one per cache directory, plus one in-memory) used by
#: default for CLI runs and shared-across-figures reuse.  Library callers get
#: no cache unless they opt in.
_default_caches: Dict[Optional[str], MemoCache] = {}


def default_cache(path: Union[str, os.PathLike, None] = None,
                  max_bytes: Optional[int] = None) -> MemoCache:
    """The process-global cache (created lazily, one instance per path).

    With ``path=None`` the ``REPRO_CACHE_DIR`` environment variable decides:
    set, the cache persists there; unset, it is in-memory only.  With
    ``max_bytes=None`` the ``REPRO_CACHE_MAX_MB`` variable decides the disk
    size cap (unset: uncapped).  An explicit ``max_bytes`` (re)configures the
    cap on an already-created instance.
    """
    if path is None:
        path = os.environ.get("REPRO_CACHE_DIR") or None
    if max_bytes is None:
        env_mb = os.environ.get("REPRO_CACHE_MAX_MB")
        if env_mb:
            try:
                max_bytes = int(float(env_mb) * 1024 * 1024)
                if max_bytes <= 0:
                    raise ValueError(env_mb)
            except ValueError:
                # A typo'd (or non-positive) environment variable must not
                # kill every CLI run; warn and behave as if the cap were
                # unset.
                warnings.warn(f"ignoring invalid REPRO_CACHE_MAX_MB="
                              f"{env_mb!r} (expected a positive number of "
                              "megabytes)", stacklevel=2)
                max_bytes = None
    key = str(Path(path)) if path is not None else None
    if key not in _default_caches:
        _default_caches[key] = MemoCache(path=path, max_bytes=max_bytes)
    elif max_bytes is not None:
        if max_bytes <= 0:                  # same contract as MemoCache()
            raise ValueError("max_bytes must be positive (or None for no cap)")
        cache = _default_caches[key]
        cache.max_bytes = max_bytes
        cache._disk_bytes = None            # stale estimate: rescan and
        cache._prune()                      # enforce the new cap now
    return _default_caches[key]
