"""Content-addressed memoization cache for experiment results.

Experiments are deterministic simulations: the same (function, inputs) pair
always produces the same result, so results can be reused freely.  The cache
is a plain in-memory mapping from :func:`repro.exec.keys.stable_key` digests
to results, shared process-wide by default so repeated points *across*
figures (e.g. the same ``run_svm`` configuration appearing in Fig. 5 and
Fig. 9) are evaluated once per process.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

_MISSING = object()


class MemoCache:
    """In-memory result store keyed by stable content hashes."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str, default: Any = None) -> Any:
        """Fetch a cached result, counting the probe as hit or miss."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._data),
                "hits": self.hits, "misses": self.misses}


#: Process-wide cache used by default for CLI runs and shared-across-figures
#: reuse.  Library callers get no cache unless they opt in.
_default_cache: Optional[MemoCache] = None


def default_cache() -> MemoCache:
    """The process-global cache (created lazily)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = MemoCache()
    return _default_cache
