"""Canonical experiment jobs: the unit of work sweeps dispatch.

Every figure/table sweep reduces to "run one workload under one execution
model with one harness configuration".  :class:`ExperimentJob` captures that
triple as a frozen, picklable, content-hashable value, and :func:`run_job`
executes it.  Because the job — not the figure — is the memoization unit,
identical points shared by different figures (e.g. the same SVM
configuration in the Fig. 5 TLB sweep and the Fig. 9 crossover) hit the
cache instead of re-simulating.

``run_job`` is a module-level function so it pickles cleanly into worker
processes; its results (``SVMResult``, ``CopyDMARunResult``, plain ints) are
plain dataclasses that pickle back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

#: Execution models a job can request, mirroring the harness entry points.
JOB_KINDS: Tuple[str, ...] = ("svm", "ideal", "copydma", "software")


@dataclass(frozen=True)
class ExperimentJob:
    """One experiment point: (execution model, workload, configuration)."""

    kind: str
    workload: Any           # WorkloadSpec (kept loose to avoid an import cycle)
    config: Any             # HarnessConfig
    num_threads: int = 1

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"known: {sorted(JOB_KINDS)}")
        if self.num_threads < 1:
            raise ValueError("num_threads must be at least 1")


def run_job(job: ExperimentJob) -> Any:
    """Execute one job; the result type matches the harness entry point.

    ``svm`` -> :class:`~repro.eval.harness.SVMResult`,
    ``copydma`` -> :class:`~repro.baselines.copydma.CopyDMARunResult`,
    ``ideal`` / ``software`` -> cycle count (int).
    """
    # Imported lazily: eval.harness itself dispatches jobs through this
    # module, and the import-time cycle is broken by deferring one side.
    from ..eval import harness

    if job.kind == "svm":
        return harness.run_svm(job.workload, job.config,
                               num_threads=job.num_threads)
    if job.kind == "ideal":
        return harness.run_ideal(job.workload, job.config)
    if job.kind == "copydma":
        return harness.run_copydma(job.workload, job.config)
    return harness.run_software(job.workload, job.config,
                                num_threads=job.num_threads)
