"""Canonical experiment jobs: the unit of work sweeps dispatch.

Every figure/table sweep reduces to "run one workload under one execution
model with one harness configuration".  :class:`ExperimentJob` captures that
triple as a frozen, picklable, content-hashable value, and :func:`run_job`
executes it by looking the model up in the :mod:`repro.models` registry.
Because the job — not the figure — is the memoization unit, identical points
shared by different figures (e.g. the same SVM configuration in the Fig. 5
TLB sweep and the Fig. 9 crossover) hit the cache instead of re-simulating.

``run_job`` is a module-level function so it pickles cleanly into worker
processes; every model returns the same plain
:class:`~repro.models.base.RunOutcome` dataclass, which pickles back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..models import RunOutcome, get_model


@dataclass(frozen=True)
class ExperimentJob:
    """One experiment point: (execution model, workload, configuration)."""

    kind: str
    workload: Any           # WorkloadSpec (kept loose to avoid an import cycle)
    config: Any             # HarnessConfig
    num_threads: int = 1

    def __post_init__(self) -> None:
        get_model(self.kind)            # raises UnknownModelError if absent
        if self.num_threads < 1:
            raise ValueError("num_threads must be at least 1")


def run_job(job: ExperimentJob) -> RunOutcome:
    """Execute one job through the registered execution model."""
    return get_model(job.kind).run(job.workload, job.config,
                                   num_threads=job.num_threads)
