"""Canonical experiment jobs: the unit of work sweeps dispatch.

Every figure/table sweep reduces to "run one workload under one execution
model with one harness configuration".  :class:`ExperimentJob` captures that
triple as a frozen, picklable, content-hashable value, and :func:`run_job`
executes it by looking the model up in the :mod:`repro.models` registry.
Because the job — not the figure — is the memoization unit, identical points
shared by different figures (e.g. the same SVM configuration in the Fig. 5
TLB sweep and the Fig. 9 crossover) hit the cache instead of re-simulating.

``run_job`` is a module-level function so it pickles cleanly into worker
processes; every model returns the same plain
:class:`~repro.models.base.RunOutcome` dataclass, which pickles back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..models import RunOutcome, get_model

#: Valid values of :attr:`ExperimentJob.tier`.
JOB_TIERS = ("auto", "event", "replay")


@dataclass(frozen=True)
class ExperimentJob:
    """One experiment point: (execution model, workload, configuration).

    ``tier`` requests an execution tier for models that support more than
    one (``"auto"`` — the default — replays recorded op streams through the
    fastpath engine when eligible and falls back to the event simulator
    otherwise; ``"event"`` pins the event simulator; ``"replay"`` demands
    the fastpath and errors when it cannot run).  Models that declare only
    the event tier ignore the request — the two tiers produce identical
    results, so a job's outcome never depends on it; only its wall-clock
    (and the ``tier`` field of the outcome) does.
    """

    kind: str
    workload: Any           # WorkloadSpec (kept loose to avoid an import cycle)
    config: Any             # HarnessConfig
    num_threads: int = 1
    tier: str = "auto"

    def __post_init__(self) -> None:
        get_model(self.kind)            # raises UnknownModelError if absent
        if self.num_threads < 1:
            raise ValueError("num_threads must be at least 1")
        if self.tier not in JOB_TIERS:
            raise ValueError(
                f"unknown tier {self.tier!r}; expected one of {JOB_TIERS}")


def run_job(job: ExperimentJob) -> RunOutcome:
    """Execute one job through the registered execution model.

    The tier request is forwarded only to models that declare the replay
    tier (``"replay" in model.tiers``); single-tier models run the event
    simulator regardless, so mixed-model sweeps (e.g. Fig. 11's ablation
    over ideal/copydma/software alongside the SVM family) accept any tier.
    """
    model = get_model(job.kind)
    if "replay" in getattr(model, "tiers", ()):
        return model.run(job.workload, job.config,
                         num_threads=job.num_threads, tier=job.tier)
    return model.run(job.workload, job.config, num_threads=job.num_threads)
