"""Stable, content-addressed keys for experiment memoization.

An experiment point is identified by *what* it computes (the evaluation
function) and *on what* (spec/config dataclasses).  Both are reduced to a
canonical JSON form and hashed, so the same point submitted by different
figures — or across repeated sweeps in one process — maps to the same key.

The canonical form is intentionally strict: anything that cannot be reduced
deterministically (open files, lambdas with captured state, arbitrary
objects) raises ``TypeError`` instead of silently producing an unstable key.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return {"#enum": _qualified_name(type(obj)), "value": canonical(obj.value)}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {"#type": _qualified_name(type(obj)),
                "#fields": {f.name: canonical(getattr(obj, f.name))
                            for f in fields(obj)}}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {"#dict": sorted(
            ([canonical(k), canonical(v)] for k, v in obj.items()),
            key=lambda pair: json.dumps(pair[0], sort_keys=True))}
    if isinstance(obj, (set, frozenset)):
        return {"#set": sorted((canonical(item) for item in obj),
                               key=lambda c: json.dumps(c, sort_keys=True))}
    if isinstance(obj, bytes):
        return {"#bytes": obj.hex()}
    if isinstance(obj, functools.partial):
        return {"#partial": canonical(obj.func),
                "args": canonical(obj.args),
                "keywords": canonical(obj.keywords)}
    if callable(obj):
        name = _qualified_name(obj)
        if "<locals>" in name or "<lambda>" in name:
            raise TypeError(
                f"cannot build a stable key for local callable {name}; "
                "use a module-level function (or functools.partial of one)")
        return {"#callable": name}
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for memo key")


def _qualified_name(obj: Any) -> str:
    module = getattr(obj, "__module__", "?")
    qualname = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{module}.{qualname}"


def stable_key(*parts: Any) -> str:
    """SHA-256 hex digest over the canonical form of ``parts``."""
    payload = json.dumps([canonical(p) for p in parts],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
