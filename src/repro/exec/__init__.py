"""Parallel, memoized experiment execution.

The evaluation surface (Tables 1-3, Figs. 4-10) is a collection of sweeps
over independent, deterministic simulation points.  This package turns those
sweeps from serial loops into schedulable work:

* :class:`SweepRunner` — evaluates points concurrently on a process pool
  (``jobs=N``) with a transparent serial fallback, preserving input order
  and bit-identical results,
* :class:`MemoCache` / :func:`default_cache` — content-addressed result
  reuse keyed by :func:`stable_key` hashes of (function, spec, config),
* :class:`ExperimentJob` / :func:`run_job` — the canonical picklable unit
  of work shared by the figure sweeps, ``compare()`` and the DSE.

See the "Parallel execution" section of the README for usage, and
``repro.cli`` for the ``--jobs`` / ``--no-cache`` flags.
"""

from .cache import MemoCache, default_cache
from .jobs import JOB_KINDS, ExperimentJob, run_job
from .keys import canonical, stable_key
from .runner import RunnerStats, SweepRunner

__all__ = [
    "ExperimentJob",
    "JOB_KINDS",
    "MemoCache",
    "RunnerStats",
    "SweepRunner",
    "canonical",
    "default_cache",
    "run_job",
    "stable_key",
]
