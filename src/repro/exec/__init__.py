"""Parallel, memoized experiment execution.

The evaluation surface (Tables 1-3, Figs. 4-10) is a collection of sweeps
over independent, deterministic simulation points.  This package turns those
sweeps from serial loops into schedulable work:

* :class:`SweepRunner` — evaluates points concurrently on a process pool
  (``jobs=N``) with a transparent serial fallback, preserving input order
  and bit-identical results,
* :class:`MemoCache` / :func:`default_cache` — content-addressed result
  reuse keyed by :func:`stable_key` hashes of (function, spec, config),
  optionally persisted to disk (``path=``) so hits survive across processes,
* :class:`ExperimentJob` / :func:`run_job` — the canonical picklable unit
  of work: one workload under one registered execution model
  (:mod:`repro.models`) with one harness configuration.

The same seam scales past one machine: :mod:`repro.dist` provides a
broker-backed :class:`~repro.dist.runner.DistributedRunner` (same ``map``
contract, same keys) whose workers share one disk-backed :class:`MemoCache`
as the fleet-wide memo store.

See the "Execution models & sweeps" section of the README for usage, and
``repro.cli`` for the ``--jobs`` / ``--no-cache`` / ``--cache-dir`` flags.
"""

from .cache import MemoCache, default_cache
from .jobs import ExperimentJob, run_job
from .keys import canonical, stable_key
from .runner import RunnerStats, SweepRunner

__all__ = [
    "ExperimentJob",
    "MemoCache",
    "RunnerStats",
    "SweepRunner",
    "canonical",
    "default_cache",
    "run_job",
    "stable_key",
]
