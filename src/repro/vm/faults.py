"""Fault-handling protocol between hardware MMUs and the host OS.

On the real platform a hardware thread that faults raises an interrupt; a
*delegate thread* inside the host OS services the fault (allocates a frame,
fixes the PTE) and acknowledges, after which the MMU retries.  This module
defines the handler protocol and a simple immediate handler used by tests.
The full OS-side implementation lives in :mod:`repro.os.fault_handler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Protocol

from .types import FaultType, PageFault


#: Callback the handler invokes when the fault has been serviced.  The bool
#: argument is True when the fault was resolved (the MMU should retry) and
#: False when it is fatal (the MMU aborts the thread).
FaultResumeCallback = Callable[[bool], None]


class FaultHandler(Protocol):
    """Anything able to service page faults raised by hardware threads."""

    def handle_fault(self, fault: PageFault, resume: FaultResumeCallback) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class FaultLogEntry:
    fault: PageFault
    resolved: bool
    service_cycles: int


class ImmediateFaultHandler:
    """Resolves NOT_PRESENT faults instantly by flipping the PTE present bit.

    Only used by unit tests and micro-experiments; the real model is
    :class:`repro.os.fault_handler.DemandPagingHandler`, which charges the
    software servicing cost and allocates frames.
    """

    def __init__(self, page_table, frame_for_vpn: Optional[Callable[[int], int]] = None):
        self.page_table = page_table
        self.frame_for_vpn = frame_for_vpn or (lambda vpn: vpn)
        self.log: List[FaultLogEntry] = []

    def handle_fault(self, fault: PageFault, resume: FaultResumeCallback) -> None:
        vpn = fault.vaddr // self.page_table.config.page_size
        if fault.fault_type is FaultType.NOT_MAPPED:
            self.log.append(FaultLogEntry(fault, resolved=False, service_cycles=0))
            resume(False)
            return
        entry = self.page_table.entry(vpn)
        if entry is None:
            self.page_table.map(vpn, self.frame_for_vpn(vpn), writable=True)
        else:
            if fault.fault_type is FaultType.PROTECTION:
                self.log.append(FaultLogEntry(fault, resolved=False, service_cycles=0))
                resume(False)
                return
            self.page_table.set_present(vpn, True,
                                        frame=entry.frame or self.frame_for_vpn(vpn))
        self.log.append(FaultLogEntry(fault, resolved=True, service_cycles=0))
        resume(True)


class AbortingFaultHandler:
    """A handler that never resolves faults (models an unmanaged accelerator)."""

    def __init__(self):
        self.faults: List[PageFault] = []

    def handle_fault(self, fault: PageFault, resume: FaultResumeCallback) -> None:
        self.faults.append(fault)
        resume(False)
