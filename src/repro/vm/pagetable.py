"""Multi-level (radix) page table.

The page table is the single source of truth shared by the host OS and the
hardware page-table walkers: the OS mutates it (map, unmap, protect, pin) and
the walkers read it.  Each table node is assigned a physical address so the
walker can issue one realistic memory transaction per level.

The geometry is configurable so the evaluation can sweep the page size
(Fig. 6): ``vaddr_bits`` minus the page-offset bits are split evenly across
``levels`` radix levels (the top level absorbs any remainder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .types import AccessType, FaultType, PageFault, Permissions, Translation

#: Conventional x86-style huge-page size.  With a 32-bit virtual address a
#: 2 MB page leaves 11 VPN bits — a single-level table resolves them, so a
#: hugepage walk reads one PTE instead of one per radix level.
HUGE_PAGE_SIZE = 2 * 1024 * 1024


def levels_for_page_size(page_size: int) -> int:
    """Radix depth the synthesis flow pairs with a page size.

    Base (4 KB) pages use the platform's two-level table; huge pages leave so
    few VPN bits that a single level resolves them — that collapse is where
    the hugepage execution model's walker-traffic saving comes from.
    """
    if page_size >= HUGE_PAGE_SIZE:
        return 1
    return 2


@dataclass(frozen=True)
class PageTableConfig:
    page_size: int = 4096
    vaddr_bits: int = 32
    levels: int = 2
    pte_bytes: int = 4

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if self.levels <= 0:
            raise ValueError("levels must be positive")
        if self.vaddr_bits <= self.offset_bits:
            raise ValueError("vaddr_bits too small for the page size")

    @property
    def offset_bits(self) -> int:
        return self.page_size.bit_length() - 1

    @property
    def vpn_bits(self) -> int:
        return self.vaddr_bits - self.offset_bits

    @property
    def bits_per_level(self) -> List[int]:
        """Index bits consumed at each level, top level first."""
        base = self.vpn_bits // self.levels
        remainder = self.vpn_bits - base * self.levels
        bits = [base] * self.levels
        bits[0] += remainder
        return bits

    def indices(self, vpn: int) -> List[int]:
        """Radix indices of ``vpn`` at each level, top level first."""
        bits = self.bits_per_level
        out: List[int] = []
        shift = sum(bits)
        for level_bits in bits:
            shift -= level_bits
            out.append((vpn >> shift) & ((1 << level_bits) - 1))
        return out


@dataclass
class PageTableEntry:
    """Leaf entry describing one virtual page."""

    frame: int = 0
    present: bool = False
    writable: bool = True
    user: bool = True
    accessed: bool = False
    dirty: bool = False
    pinned: bool = False

    def permissions(self) -> Permissions:
        return Permissions(readable=True, writable=self.writable, user=self.user)


class _TableNode:
    """One radix node; leaf nodes hold PTEs, inner nodes hold child pointers."""

    __slots__ = ("phys_addr", "entries")

    def __init__(self, phys_addr: int):
        self.phys_addr = phys_addr
        self.entries: Dict[int, object] = {}


class PageTable:
    """Radix page table for a single address space.

    ``node_allocator`` returns a physical address for each newly created
    table node; the OS supplies an allocator backed by its reserved region.
    A default bump allocator is used when none is given (tests).
    """

    def __init__(self, config: PageTableConfig | None = None,
                 node_allocator: Optional[Callable[[], int]] = None,
                 asid: int = 0):
        self.config = config or PageTableConfig()
        self.asid = asid
        self._next_node_addr = 0x100000
        self._allocate_node_addr = node_allocator or self._default_allocator
        self.root = _TableNode(self._allocate_node_addr())
        self._num_nodes = 1
        self._num_mapped = 0

    def _default_allocator(self) -> int:
        addr = self._next_node_addr
        self._next_node_addr += 0x1000
        return addr

    # ----------------------------------------------------------- navigation
    def _walk_nodes(self, vpn: int, create: bool = False) -> Optional[Tuple[List[_TableNode], int]]:
        """Return (nodes visited top-down, leaf index) or None if a level is
        missing and ``create`` is False."""
        indices = self.config.indices(vpn)
        node = self.root
        visited = [node]
        for index in indices[:-1]:
            child = node.entries.get(index)
            if child is None:
                if not create:
                    return None
                child = _TableNode(self._allocate_node_addr())
                node.entries[index] = child
                self._num_nodes += 1
            node = child  # type: ignore[assignment]
            visited.append(node)
        return visited, indices[-1]

    # ------------------------------------------------------------ mutation
    def map(self, vpn: int, frame: int, writable: bool = True,
            user: bool = True, present: bool = True, pinned: bool = False) -> PageTableEntry:
        """Install (or overwrite) the PTE for ``vpn``."""
        if vpn < 0 or vpn >= (1 << self.config.vpn_bits):
            raise ValueError(f"vpn {vpn:#x} out of range")
        nodes, leaf_index = self._walk_nodes(vpn, create=True)  # type: ignore[misc]
        entry = PageTableEntry(frame=frame, present=present, writable=writable,
                               user=user, pinned=pinned)
        leaf = nodes[-1]
        if leaf_index not in leaf.entries:
            self._num_mapped += 1
        leaf.entries[leaf_index] = entry
        return entry

    def unmap(self, vpn: int) -> Optional[PageTableEntry]:
        """Remove the PTE for ``vpn``; returns the removed entry (or None)."""
        found = self._walk_nodes(vpn, create=False)
        if found is None:
            return None
        nodes, leaf_index = found
        entry = nodes[-1].entries.pop(leaf_index, None)
        if entry is not None:
            self._num_mapped -= 1
        return entry  # type: ignore[return-value]

    def set_present(self, vpn: int, present: bool, frame: Optional[int] = None) -> None:
        entry = self.entry(vpn)
        if entry is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        entry.present = present
        if frame is not None:
            entry.frame = frame

    def protect(self, vpn: int, writable: bool) -> None:
        entry = self.entry(vpn)
        if entry is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        entry.writable = writable

    def pin(self, vpn: int, pinned: bool = True) -> None:
        entry = self.entry(vpn)
        if entry is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        entry.pinned = pinned

    # --------------------------------------------------------------- lookup
    def entry(self, vpn: int) -> Optional[PageTableEntry]:
        found = self._walk_nodes(vpn, create=False)
        if found is None:
            return None
        nodes, leaf_index = found
        entry = nodes[-1].entries.get(leaf_index)
        return entry  # type: ignore[return-value]

    def walk_addresses(self, vpn: int) -> List[int]:
        """Physical addresses a hardware walker must read to translate ``vpn``.

        One address per level: the PTE slot in each node along the path.  If
        an intermediate node is missing the list is truncated at that level
        (the walker reads an empty entry there and reports a fault).
        """
        indices = self.config.indices(vpn)
        addrs: List[int] = []
        node = self.root
        for depth, index in enumerate(indices):
            addrs.append(node.phys_addr + index * self.config.pte_bytes)
            if depth == len(indices) - 1:
                break
            child = node.entries.get(index)
            if child is None:
                break
            node = child  # type: ignore[assignment]
        return addrs

    def translate(self, vaddr: int, access: AccessType = AccessType.READ,
                  thread: str = "?", cycle: int = 0) -> Translation:
        """Functional translation; raises nothing, returns Translation or
        raises :class:`LookupError` wrapped in a PageFault via ``fault_for``.

        The MMU uses :meth:`probe` instead; this is the convenience API used
        by the OS and by tests.
        """
        result = self.probe(vaddr, access)
        if isinstance(result, PageFault):
            raise KeyError(f"{result.fault_type.value} at {vaddr:#x}")
        return result

    def probe(self, vaddr: int, access: AccessType = AccessType.READ,
              thread: str = "?", cycle: int = 0) -> Translation | PageFault:
        """Translate ``vaddr`` or describe why it faults."""
        page_size = self.config.page_size
        vpn, offset = divmod(vaddr, page_size)
        entry = self.entry(vpn)
        if entry is None:
            return PageFault(vaddr, access, FaultType.NOT_MAPPED, thread, cycle)
        if not entry.present:
            return PageFault(vaddr, access, FaultType.NOT_PRESENT, thread, cycle)
        if access.is_write and not entry.writable:
            return PageFault(vaddr, access, FaultType.PROTECTION, thread, cycle)
        entry.accessed = True
        if access.is_write:
            entry.dirty = True
        return Translation(vaddr=vaddr, paddr=entry.frame * page_size + offset,
                           page_size=page_size, writable=entry.writable)

    # ------------------------------------------------------------------ info
    @property
    def num_mapped_pages(self) -> int:
        return self._num_mapped

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def mapped_vpns(self) -> Iterator[int]:
        """Iterate over all mapped virtual page numbers (test/debug helper)."""
        bits = self.config.bits_per_level

        def recurse(node: _TableNode, depth: int, prefix: int) -> Iterator[int]:
            shift = sum(bits[depth + 1:])
            for index, child in node.entries.items():
                vpn_part = (prefix << bits[depth]) | index
                if depth == len(bits) - 1:
                    yield vpn_part
                else:
                    yield from recurse(child, depth + 1, vpn_part)  # type: ignore[arg-type]

        yield from recurse(self.root, 0, 0)

    def resident_vpns(self) -> List[int]:
        return [vpn for vpn in self.mapped_vpns()
                if self.entry(vpn) is not None and self.entry(vpn).present]
