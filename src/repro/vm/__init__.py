"""Virtual-memory substrate: page tables, TLBs, walkers, MMUs, faults."""

from .faults import (
    AbortingFaultHandler,
    FaultHandler,
    FaultLogEntry,
    FaultResumeCallback,
    ImmediateFaultHandler,
)
from .mmu import MMU, MMUConfig, TranslateCallback
from .pagetable import PageTable, PageTableConfig, PageTableEntry
from .tlb import TLB, TLBConfig, TLBEntry
from .types import (
    AccessType,
    FaultType,
    PageFault,
    PageFaultError,
    Permissions,
    Translation,
    page_base,
    pages_covering,
    split_vaddr,
)
from .walker import PageTableWalker, WalkerConfig

__all__ = [
    "AbortingFaultHandler",
    "AccessType",
    "FaultHandler",
    "FaultLogEntry",
    "FaultResumeCallback",
    "FaultType",
    "ImmediateFaultHandler",
    "MMU",
    "MMUConfig",
    "PageFault",
    "PageFaultError",
    "PageTable",
    "PageTableConfig",
    "PageTableEntry",
    "PageTableWalker",
    "Permissions",
    "TLB",
    "TLBConfig",
    "TLBEntry",
    "TranslateCallback",
    "Translation",
    "WalkerConfig",
    "page_base",
    "pages_covering",
    "split_vaddr",
]
