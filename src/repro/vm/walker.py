"""Hardware page-table walker.

On a TLB miss the MMU hands the virtual page number to a walker, which reads
one page-table entry per radix level from physical memory.  The walker can be
*private* (one per hardware thread) or *shared* (one walker serving several
MMUs through a request queue) — a design choice the synthesis flow makes and
the Fig. 7 benchmark ablates.

If the walker is attached to a bus port its reads are real memory
transactions and contend with data traffic; otherwise a fixed per-level
latency is charged (used for unit tests and analytic experiments).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from ..mem.port import MemoryRequest, MemoryTarget
from ..sim.component import Component
from ..sim.trace import GLOBAL_TRACER
from ..sim.engine import Simulator
from .pagetable import PageTable, PageTableEntry


@dataclass(frozen=True)
class WalkerConfig:
    """Walker timing parameters."""

    per_level_overhead: int = 2       # pipeline cycles per level in the walker FSM
    fixed_level_latency: int = 30     # memory latency per level when no port is attached

    def __post_init__(self) -> None:
        if self.per_level_overhead < 0 or self.fixed_level_latency < 0:
            raise ValueError("walker latencies must be non-negative")


WalkCallback = Callable[[Optional[PageTableEntry], int], None]


@dataclass
class _WalkRequest:
    vpn: int
    page_table: PageTable
    callback: WalkCallback
    issued_at: int


class PageTableWalker(Component):
    """Serial page-table walker with an optional shared request queue."""

    def __init__(self, sim: Simulator, port: Optional[MemoryTarget] = None,
                 config: WalkerConfig | None = None, name: str = "ptw"):
        super().__init__(sim, name)
        self.config = config or WalkerConfig()
        self.port = port
        self._queue: Deque[_WalkRequest] = deque()
        self._busy = False

    # ------------------------------------------------------------------ walk
    def walk(self, vpn: int, page_table: PageTable, callback: WalkCallback) -> None:
        """Translate ``vpn`` by walking ``page_table``.

        ``callback(entry, walk_cycles)`` is invoked when the walk retires;
        ``entry`` is None if the walk hit a missing intermediate level or an
        unmapped leaf slot.
        """
        self.count("walks_requested")
        request = _WalkRequest(vpn, page_table, callback, self.now)
        self._queue.append(request)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        request = self._queue.popleft()
        queue_wait = self.now - request.issued_at
        self.sample("queue_wait", queue_wait)
        addresses = request.page_table.walk_addresses(request.vpn)
        self._do_level(request, addresses, 0, self.now)

    def _do_level(self, request: _WalkRequest, addresses: list[int],
                  level: int, started_at: int) -> None:
        if level >= len(addresses):
            self._finish(request, addresses, started_at)
            return

        def next_level(_req: Optional[MemoryRequest] = None) -> None:
            self.schedule(self.config.per_level_overhead,
                          lambda: self._do_level(request, addresses, level + 1, started_at))

        self.count("levels_fetched")
        if self.port is not None:
            mem_request = MemoryRequest(addr=addresses[level],
                                        size=request.page_table.config.pte_bytes,
                                        is_write=False, master=self.name,
                                        callback=next_level)
            self.port.access(mem_request)
        else:
            self.schedule(self.config.fixed_level_latency, next_level)

    def _finish(self, request: _WalkRequest, addresses: list[int],
                started_at: int) -> None:
        expected_levels = request.page_table.config.levels
        entry: Optional[PageTableEntry] = None
        if len(addresses) == expected_levels:
            entry = request.page_table.entry(request.vpn)
        walk_cycles = self.now - started_at
        self.count("walks_completed")
        self.count("walk_cycles", walk_cycles)
        self.sample("walk_latency", walk_cycles)
        if GLOBAL_TRACER.enabled:
            GLOBAL_TRACER.log(self.now, self.name, "walk_done",
                              f"vpn={request.vpn} levels={len(addresses)} "
                              f"cycles={walk_cycles} "
                              f"faulted={entry is None}")
        if entry is None:
            self.count("walks_faulted")
        request.callback(entry, walk_cycles)
        self._start_next()

    # ------------------------------------------------------------------ info
    @property
    def pending(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)
