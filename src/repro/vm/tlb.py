"""Translation lookaside buffer models.

The paper's hardware threads each carry a small TLB in fabric; its size and
organisation are chosen by the system-level synthesis flow.  The model
supports fully-associative and set-associative organisations and three
replacement policies (LRU, FIFO, pseudo-random), which are ablated in the
Fig. 5 benchmark.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

#: Tag identifying one translation within a set: (asid, vpn).  Entries from
#: different address spaces never alias, even for the same virtual page.
TLBKey = Tuple[int, int]


@dataclass(frozen=True)
class TLBConfig:
    entries: int = 16
    associativity: Optional[int] = None   # None = fully associative
    replacement: str = "lru"              # lru | fifo | random
    hit_latency: int = 1
    page_size: int = 4096
    seed: int = 0xC0FFEE

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if self.associativity is not None:
            if self.associativity <= 0:
                raise ValueError("associativity must be positive")
            if self.entries % self.associativity:
                raise ValueError("entries must be a multiple of associativity")
        if self.replacement not in ("lru", "fifo", "random"):
            raise ValueError(f"unknown replacement policy {self.replacement!r}")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")

    @property
    def num_sets(self) -> int:
        if self.associativity is None:
            return 1
        return self.entries // self.associativity

    @property
    def ways(self) -> int:
        return self.entries if self.associativity is None else self.associativity


@dataclass(slots=True)
class TLBEntry:
    vpn: int
    frame: int
    writable: bool
    asid: int = 0
    inserted_at: int = 0
    last_used: int = 0
    #: Installed by a prefetcher rather than a demand miss.  The MMU clears
    #: the flag on first demand hit (and counts it as a useful prefetch).
    prefetched: bool = False
    #: Stride the prefetch was issued with (so a hit can chain down-stride).
    #: Lives on the entry — it is evicted together with the translation.
    prefetch_stride: int = 1


class TLB:
    """Set-associative TLB with pluggable replacement.

    The TLB is a passive lookup structure (no simulator events); the MMU adds
    its latency.  Statistics are kept locally and exported by the MMU.

    Entries are tagged by ``(asid, vpn)``: two address spaces mapping the same
    virtual page occupy distinct ways and never clobber each other.  Sets are
    still indexed by VPN bits alone (as hardware does), so translations of the
    same page from different spaces contend for the same set.
    """

    def __init__(self, config: TLBConfig | None = None, name: str = "tlb"):
        self.config = config or TLBConfig()
        self.name = name
        self._sets: List[OrderedDict[TLBKey, TLBEntry]] = [
            OrderedDict() for _ in range(self.config.num_sets)]
        self._rng = random.Random(self.config.seed)
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0

    # ------------------------------------------------------------ addressing
    def _set_index(self, vpn: int) -> int:
        return vpn % self.config.num_sets

    # ---------------------------------------------------------------- lookup
    def lookup(self, vpn: int, asid: int = 0) -> Optional[TLBEntry]:
        """Probe the TLB.  Returns the entry on a hit, None on a miss."""
        self._tick += 1
        tlb_set = self._sets[self._set_index(vpn)]
        entry = tlb_set.get((asid, vpn))
        if entry is not None:
            self.hits += 1
            entry.last_used = self._tick
            if self.config.replacement == "lru":
                tlb_set.move_to_end((asid, vpn))
            return entry
        self.misses += 1
        return None

    def insert(self, vpn: int, frame: int, writable: bool, asid: int = 0,
               prefetched: bool = False) -> TLBEntry:
        """Install a translation, evicting per the replacement policy.

        Only an entry with the *same* ``(asid, vpn)`` tag is refreshed in
        place (e.g. after a permission upgrade); another address space's
        translation of the same page is a distinct entry.  ``prefetched``
        tags entries installed by a prefetch engine; a demand refill of the
        same page clears the tag.
        """
        key = (asid, vpn)
        tlb_set = self._sets[self._set_index(vpn)]
        if key in tlb_set:
            entry = tlb_set[key]
            entry.frame = frame
            entry.writable = writable
            entry.prefetched = entry.prefetched and prefetched
            return entry
        if len(tlb_set) >= self.config.ways:
            self._evict(tlb_set)
        self._tick += 1
        entry = TLBEntry(vpn=vpn, frame=frame, writable=writable, asid=asid,
                         inserted_at=self._tick, last_used=self._tick,
                         prefetched=prefetched)
        tlb_set[key] = entry
        return entry

    def _evict(self, tlb_set: OrderedDict[TLBKey, TLBEntry]) -> None:
        self.evictions += 1
        policy = self.config.replacement
        if policy == "lru":
            tlb_set.popitem(last=False)
        elif policy == "fifo":
            victim = min(tlb_set, key=lambda v: tlb_set[v].inserted_at)
            del tlb_set[victim]
        else:  # random
            victim = self._rng.choice(list(tlb_set))
            del tlb_set[victim]

    # ----------------------------------------------------------- maintenance
    def invalidate(self, vpn: int, asid: Optional[int] = None) -> bool:
        """Shoot down translations of ``vpn``; True if any was present.

        With an explicit ``asid`` only that address space's entry is dropped;
        ``asid=None`` is the wildcard shootdown across all address spaces.
        """
        tlb_set = self._sets[self._set_index(vpn)]
        if asid is not None:
            return tlb_set.pop((asid, vpn), None) is not None
        victims = [key for key in tlb_set if key[1] == vpn]
        for key in victims:
            del tlb_set[key]
        return bool(victims)

    def flush(self) -> int:
        """Invalidate everything; returns the number of dropped entries."""
        dropped = sum(len(s) for s in self._sets)
        for tlb_set in self._sets:
            tlb_set.clear()
        self.flushes += 1
        return dropped

    # ------------------------------------------------------------------ info
    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def resident_vpns(self, asid: Optional[int] = None) -> List[int]:
        """VPNs currently cached, optionally restricted to one address space."""
        out: List[int] = []
        for tlb_set in self._sets:
            out.extend(vpn for (a, vpn) in tlb_set if asid is None or a == asid)
        return out

    def __contains__(self, item: Union[int, TLBKey]) -> bool:
        """Membership: a bare VPN matches any address space; an
        ``(asid, vpn)`` tuple matches exactly one."""
        if isinstance(item, tuple):
            asid, vpn = item
            return (asid, vpn) in self._sets[self._set_index(vpn)]
        return any(key[1] == item
                   for key in self._sets[self._set_index(item)])

    def __len__(self) -> int:
        return self.occupancy
