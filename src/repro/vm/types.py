"""Common virtual-memory types: access kinds, translations, fault records."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessType(enum.Enum):
    """Kind of memory access, used for permission checks."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


class FaultType(enum.Enum):
    """Why a translation failed."""

    NOT_PRESENT = "not_present"        # demand paging: page not resident
    NOT_MAPPED = "not_mapped"          # no vm_area covers the address
    PROTECTION = "protection"          # write to a read-only mapping


class PageFaultError(Exception):
    """Raised when a fault cannot be resolved (e.g. access outside any mapping)."""

    def __init__(self, fault: "PageFault"):
        super().__init__(f"{fault.fault_type.value} fault at {fault.vaddr:#x}")
        self.fault = fault


@dataclass(frozen=True)
class PageFault:
    """Record of a translation fault delivered to the OS fault handler."""

    vaddr: int
    access: AccessType
    fault_type: FaultType
    thread: str = "?"
    cycle: int = 0


@dataclass(frozen=True)
class Translation:
    """Result of a successful address translation."""

    vaddr: int
    paddr: int
    page_size: int
    writable: bool

    @property
    def vpn(self) -> int:
        return self.vaddr // self.page_size

    @property
    def frame(self) -> int:
        return self.paddr // self.page_size


@dataclass(frozen=True)
class Permissions:
    """Access permissions of a mapping."""

    readable: bool = True
    writable: bool = True
    user: bool = True

    def allows(self, access: AccessType) -> bool:
        if access is AccessType.READ:
            return self.readable
        return self.writable


def split_vaddr(vaddr: int, page_size: int) -> tuple[int, int]:
    """Split a virtual address into (virtual page number, page offset)."""
    if vaddr < 0:
        raise ValueError(f"negative virtual address {vaddr:#x}")
    return vaddr // page_size, vaddr % page_size


def page_base(vaddr: int, page_size: int) -> int:
    """Base virtual address of the page containing ``vaddr``."""
    return (vaddr // page_size) * page_size


def pages_covering(addr: int, size: int, page_size: int) -> list[int]:
    """Virtual page numbers of all pages touched by ``[addr, addr+size)``."""
    if size <= 0:
        return []
    first = addr // page_size
    last = (addr + size - 1) // page_size
    return list(range(first, last + 1))
