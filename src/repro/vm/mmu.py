"""Per-hardware-thread memory management unit.

The MMU is the heart of the paper's contribution: it lets an accelerator
thread issue *virtual* addresses of the host process.  Each MMU contains a
small TLB and a connection to a (private or shared) page-table walker.  The
translation flow is:

1. TLB lookup — hit: translation returned after ``hit_latency`` cycles.
2. Miss — the walker reads the page table from memory.
3. Walk returns a valid, present PTE — refill the TLB and return.
4. Walk faults (page not present / not mapped / protection) — the fault is
   delegated to the host OS fault handler; when the OS resolves it the MMU
   retries the walk.  Unresolvable faults abort the requesting thread.

Two optional extensions, both off by default, serve the non-canonical
execution models:

* **translation prefetching** (``prefetch_depth > 0``): every demand miss —
  and every first hit on a previously prefetched entry — predicts the next
  ``prefetch_depth`` virtual pages from the observed miss stride and walks
  them in the background, refilling the TLB before the datapath asks.
  Prefetch walks share the (serial) walker with demand walks, so they are
  not free; a prefetch that would fault is silently dropped.
* **shared TLBs** (``tlb=``): several MMUs — or several processes
  time-sliced onto one MMU via :meth:`MMU.activate` — can share a single
  ASID-tagged :class:`~repro.vm.tlb.TLB` instance, modelling one fabric TLB
  serving more than one address space.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.trace import GLOBAL_TRACER
from .faults import FaultHandler
from .pagetable import PageTable, PageTableEntry
from .tlb import TLB, TLBConfig
from .types import AccessType, FaultType, PageFault, Translation
from .walker import PageTableWalker


#: Invoked when a translation finishes.  On success the Translation is given;
#: on a fatal fault it is None.
TranslateCallback = Callable[[Optional[Translation]], None]


@dataclass(frozen=True)
class MMUConfig:
    tlb: TLBConfig = TLBConfig()
    max_fault_retries: int = 3
    #: Pages walked ahead of the demand stream on every miss (0 = off).
    prefetch_depth: int = 0

    def __post_init__(self) -> None:
        if self.max_fault_retries < 1:
            raise ValueError("max_fault_retries must be at least 1")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be non-negative")


class MMU(Component):
    """Address-translation unit for one hardware thread."""

    def __init__(self, sim: Simulator, page_table: PageTable,
                 walker: PageTableWalker,
                 fault_handler: Optional[FaultHandler] = None,
                 config: MMUConfig | None = None,
                 name: str = "mmu",
                 tlb: Optional[TLB] = None):
        super().__init__(sim, name)
        self.config = config or MMUConfig()
        tlb_page_size = (tlb.config if tlb is not None else self.config.tlb).page_size
        if tlb_page_size != page_table.config.page_size:
            raise ValueError(
                "TLB and page table must agree on the page size "
                f"({tlb_page_size} != {page_table.config.page_size})")
        self.page_table = page_table
        self.walker = walker
        self.fault_handler = fault_handler
        #: Possibly shared with other MMUs — entries are ASID-tagged, so a
        #: shared instance never mixes translations across address spaces.
        self.tlb = tlb if tlb is not None else TLB(self.config.tlb,
                                                  name=f"{name}.tlb")
        # Prefetch state: a short history of demand-missed VPNs (the "stream
        # table") and the keys currently walking in the background.  The
        # stride a prefetch was issued with lives on the TLB entry itself.
        self._recent_misses: deque = deque(maxlen=8)
        self._prefetches_inflight: set = set()
        self._prefetch_score = self.PREFETCH_SCORE_INIT

    # ---------------------------------------------------------- space switch
    def activate(self, page_table: PageTable,
                 fault_handler: Optional[FaultHandler] = None) -> None:
        """Switch the MMU to another process's address space.

        Models an OS context switch of the accelerator between processes
        sharing one fabric TLB: nothing is flushed — entries are ASID-tagged,
        so the outgoing space's translations stay resident and the incoming
        space simply stops hitting them.  Callers must drain outstanding
        operations (a kernel ``Fence``) before switching.
        """
        if self.tlb.config.page_size != page_table.config.page_size:
            raise ValueError(
                "activated page table disagrees with the TLB page size "
                f"({page_table.config.page_size} != {self.tlb.config.page_size})")
        self.page_table = page_table
        if fault_handler is not None:
            self.fault_handler = fault_handler
        self._recent_misses.clear()          # stride history is per-space
        self._prefetch_score = self.PREFETCH_SCORE_INIT
        self.count("context_switches")

    # ------------------------------------------------------------- translate
    @property
    def page_size(self) -> int:
        return self.page_table.config.page_size

    def translate(self, vaddr: int, access: AccessType,
                  callback: TranslateCallback, thread: str = "?") -> None:
        """Translate ``vaddr``; invoke ``callback`` when done."""
        vpn, offset = divmod(vaddr, self.page_size)
        self.count("translations")
        entry = self.tlb.lookup(vpn, asid=self.page_table.asid)
        if entry is not None and (not access.is_write or entry.writable):
            self.count("tlb_hits")
            if entry.prefetched:
                # First demand use of a prefetched translation: count it as
                # useful and keep running ahead of the stream, down the same
                # stride the prefetch was issued with.
                entry.prefetched = False
                self.count("prefetch_hits")
                self._prefetch_score = min(
                    self.PREFETCH_SCORE_MAX,
                    self._prefetch_score + self.PREFETCH_HIT_BONUS)
                self._maybe_prefetch(vpn, entry.prefetch_stride)
            translation = Translation(vaddr=vaddr,
                                      paddr=entry.frame * self.page_size + offset,
                                      page_size=self.page_size,
                                      writable=entry.writable)
            self.schedule(self.tlb.config.hit_latency,
                          lambda: callback(translation))
            return

        self.count("tlb_misses")
        tracer = GLOBAL_TRACER
        if tracer.enabled:
            # Guarded: a disabled tracer costs one attribute load here, and
            # the f-string is only built when the record is stored.
            tracer.log(self.now, self.name, "tlb_miss",
                       f"vaddr={vaddr:#x} vpn={vpn} "
                       f"asid={self.page_table.asid} thread={thread}")
        started = self.now
        self._walk(vaddr, vpn, offset, access, callback, thread, started,
                   retries_left=self.config.max_fault_retries)
        # Prefetches queue behind the demand walk on the (serial) walker.
        self._maybe_prefetch(vpn, self._miss_stride(vpn))

    # -------------------------------------------------------------- prefetch
    #: Largest page stride the stream detector will follow.  Deltas beyond
    #: this are inter-buffer distances (interleaved streams), not strides —
    #: chasing them prefetches another stream's pages or garbage.
    MAX_PREFETCH_STRIDE = 3
    #: Accuracy throttle: every issued prefetch costs one confidence point,
    #: every useful one earns HIT_BONUS; below the gate the prefetcher goes
    #: quiet.  Non-strided access (random tables, pointer chasing) would
    #: otherwise flood the serial walker with useless walks and *slow down*
    #: the demand stream that has to queue behind them.
    PREFETCH_SCORE_INIT = 16
    PREFETCH_SCORE_MAX = 31
    PREFETCH_SCORE_GATE = 8
    PREFETCH_HIT_BONUS = 4

    def _miss_stride(self, vpn: int) -> int:
        """Stride suggested by the recent-miss stream table (next-page default).

        A demand miss close to an earlier miss continues that stream: the
        stride is their distance.  Misses far from all recent misses are a new
        (or non-strided) stream and fall back to next-page prefetching.
        Records ``vpn`` in the table.
        """
        stride = 1
        for recent in reversed(self._recent_misses):
            delta = vpn - recent
            if delta != 0 and abs(delta) <= self.MAX_PREFETCH_STRIDE:
                stride = delta
                break
        self._recent_misses.append(vpn)
        return stride

    def _maybe_prefetch(self, vpn: int, stride: int) -> None:
        """Walk the next predicted pages in the background and refill the TLB."""
        depth = self.config.prefetch_depth
        if depth <= 0 or self._prefetch_score < self.PREFETCH_SCORE_GATE:
            return
        page_table = self.page_table
        asid = page_table.asid
        limit = 1 << page_table.config.vpn_bits
        for ahead in range(1, depth + 1):
            target = vpn + stride * ahead
            if not 0 <= target < limit:
                continue
            key = (asid, target)
            if key in self.tlb or key in self._prefetches_inflight:
                continue
            self._prefetches_inflight.add(key)
            self._prefetch_score -= 1
            self.count("prefetches_issued")

            def on_prefetch_walk(entry: Optional[PageTableEntry],
                                 _walk_cycles: int, target: int = target,
                                 key: tuple = key, stride: int = stride,
                                 page_table: PageTable = page_table) -> None:
                self._prefetches_inflight.discard(key)
                if entry is None or not entry.present:
                    # Never fault on behalf of a prediction: just drop it.
                    self.count("prefetches_dropped")
                    return
                entry.accessed = True
                installed = self.tlb.insert(target, entry.frame,
                                            entry.writable, asid=key[0],
                                            prefetched=True)
                installed.prefetch_stride = stride
                self.count("prefetch_fills")

            self.walker.walk(target, page_table, on_prefetch_walk)

    # ------------------------------------------------------------------ walk
    def _walk(self, vaddr: int, vpn: int, offset: int, access: AccessType,
              callback: TranslateCallback, thread: str, started: int,
              retries_left: int) -> None:

        def on_walk(entry: Optional[PageTableEntry], _walk_cycles: int) -> None:
            fault_type = self._classify(entry, access)
            if fault_type is None:
                assert entry is not None
                self.tlb.insert(vpn, entry.frame, entry.writable,
                                asid=self.page_table.asid)
                # Demand refill (prefetch fills count separately): the live
                # miss-traffic signal the scheduling telemetry bus samples.
                self.count("tlb_refills")
                entry.accessed = True
                if access.is_write:
                    entry.dirty = True
                self.sample("miss_latency", self.now - started)
                translation = Translation(vaddr=vaddr,
                                          paddr=entry.frame * self.page_size + offset,
                                          page_size=self.page_size,
                                          writable=entry.writable)
                callback(translation)
                return
            self._fault(vaddr, vpn, offset, access, callback, thread, started,
                        retries_left, fault_type)

        self.walker.walk(vpn, self.page_table, on_walk)

    @staticmethod
    def _classify(entry: Optional[PageTableEntry],
                  access: AccessType) -> Optional[FaultType]:
        if entry is None:
            return FaultType.NOT_MAPPED
        if not entry.present:
            return FaultType.NOT_PRESENT
        if access.is_write and not entry.writable:
            return FaultType.PROTECTION
        return None

    # ----------------------------------------------------------------- fault
    def _fault(self, vaddr: int, vpn: int, offset: int, access: AccessType,
               callback: TranslateCallback, thread: str, started: int,
               retries_left: int, fault_type: FaultType) -> None:
        self.count("faults")
        self.count(f"faults.{fault_type.value}")
        fault = PageFault(vaddr=vaddr, access=access, fault_type=fault_type,
                          thread=thread, cycle=self.now)

        if self.fault_handler is None or retries_left <= 0:
            self.count("fatal_faults")
            callback(None)
            return

        fault_started = self.now

        def resume(resolved: bool) -> None:
            self.sample("fault_service_latency", self.now - fault_started)
            if not resolved:
                self.count("fatal_faults")
                callback(None)
                return
            self._walk(vaddr, vpn, offset, access, callback, thread, started,
                       retries_left - 1)

        self.fault_handler.handle_fault(fault, resume)

    # ------------------------------------------------------------ shootdowns
    def invalidate(self, vpn: int, asid: Optional[int] = None) -> bool:
        """TLB shootdown for one page (the OS calls this on unmap/protect).

        ``asid=None`` (the default used by address-space teardown) shoots the
        page down across *all* address spaces — conservative and always
        correct.  Pass an explicit ASID for a targeted single-space shootdown.
        """
        self.count("shootdowns")
        return self.tlb.invalidate(vpn, asid=asid)

    def flush(self) -> int:
        self.count("flushes")
        return self.tlb.flush()

    # ------------------------------------------------------------------ info
    def export_stats(self) -> None:
        """Copy TLB counters into the component's stat group."""
        self.set_stat("tlb_hit_rate", self.tlb.hit_rate)
        self.set_stat("tlb_occupancy", self.tlb.occupancy)
        self.set_stat("tlb_evictions", self.tlb.evictions)
