"""Per-hardware-thread memory management unit.

The MMU is the heart of the paper's contribution: it lets an accelerator
thread issue *virtual* addresses of the host process.  Each MMU contains a
small TLB and a connection to a (private or shared) page-table walker.  The
translation flow is:

1. TLB lookup — hit: translation returned after ``hit_latency`` cycles.
2. Miss — the walker reads the page table from memory.
3. Walk returns a valid, present PTE — refill the TLB and return.
4. Walk faults (page not present / not mapped / protection) — the fault is
   delegated to the host OS fault handler; when the OS resolves it the MMU
   retries the walk.  Unresolvable faults abort the requesting thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.component import Component
from ..sim.engine import Simulator
from .faults import FaultHandler
from .pagetable import PageTable, PageTableEntry
from .tlb import TLB, TLBConfig
from .types import AccessType, FaultType, PageFault, Translation
from .walker import PageTableWalker


#: Invoked when a translation finishes.  On success the Translation is given;
#: on a fatal fault it is None.
TranslateCallback = Callable[[Optional[Translation]], None]


@dataclass(frozen=True)
class MMUConfig:
    tlb: TLBConfig = TLBConfig()
    max_fault_retries: int = 3

    def __post_init__(self) -> None:
        if self.max_fault_retries < 1:
            raise ValueError("max_fault_retries must be at least 1")


class MMU(Component):
    """Address-translation unit for one hardware thread."""

    def __init__(self, sim: Simulator, page_table: PageTable,
                 walker: PageTableWalker,
                 fault_handler: Optional[FaultHandler] = None,
                 config: MMUConfig | None = None,
                 name: str = "mmu"):
        super().__init__(sim, name)
        self.config = config or MMUConfig()
        if self.config.tlb.page_size != page_table.config.page_size:
            raise ValueError(
                "TLB and page table must agree on the page size "
                f"({self.config.tlb.page_size} != {page_table.config.page_size})")
        self.page_table = page_table
        self.walker = walker
        self.fault_handler = fault_handler
        self.tlb = TLB(self.config.tlb, name=f"{name}.tlb")

    # ------------------------------------------------------------- translate
    @property
    def page_size(self) -> int:
        return self.page_table.config.page_size

    def translate(self, vaddr: int, access: AccessType,
                  callback: TranslateCallback, thread: str = "?") -> None:
        """Translate ``vaddr``; invoke ``callback`` when done."""
        vpn, offset = divmod(vaddr, self.page_size)
        self.count("translations")
        entry = self.tlb.lookup(vpn, asid=self.page_table.asid)
        if entry is not None and (not access.is_write or entry.writable):
            self.count("tlb_hits")
            translation = Translation(vaddr=vaddr,
                                      paddr=entry.frame * self.page_size + offset,
                                      page_size=self.page_size,
                                      writable=entry.writable)
            self.schedule(self.config.tlb.hit_latency,
                          lambda: callback(translation))
            return

        self.count("tlb_misses")
        started = self.now
        self._walk(vaddr, vpn, offset, access, callback, thread, started,
                   retries_left=self.config.max_fault_retries)

    # ------------------------------------------------------------------ walk
    def _walk(self, vaddr: int, vpn: int, offset: int, access: AccessType,
              callback: TranslateCallback, thread: str, started: int,
              retries_left: int) -> None:

        def on_walk(entry: Optional[PageTableEntry], _walk_cycles: int) -> None:
            fault_type = self._classify(entry, access)
            if fault_type is None:
                assert entry is not None
                self.tlb.insert(vpn, entry.frame, entry.writable,
                                asid=self.page_table.asid)
                entry.accessed = True
                if access.is_write:
                    entry.dirty = True
                self.sample("miss_latency", self.now - started)
                translation = Translation(vaddr=vaddr,
                                          paddr=entry.frame * self.page_size + offset,
                                          page_size=self.page_size,
                                          writable=entry.writable)
                callback(translation)
                return
            self._fault(vaddr, vpn, offset, access, callback, thread, started,
                        retries_left, fault_type)

        self.walker.walk(vpn, self.page_table, on_walk)

    @staticmethod
    def _classify(entry: Optional[PageTableEntry],
                  access: AccessType) -> Optional[FaultType]:
        if entry is None:
            return FaultType.NOT_MAPPED
        if not entry.present:
            return FaultType.NOT_PRESENT
        if access.is_write and not entry.writable:
            return FaultType.PROTECTION
        return None

    # ----------------------------------------------------------------- fault
    def _fault(self, vaddr: int, vpn: int, offset: int, access: AccessType,
               callback: TranslateCallback, thread: str, started: int,
               retries_left: int, fault_type: FaultType) -> None:
        self.count("faults")
        self.count(f"faults.{fault_type.value}")
        fault = PageFault(vaddr=vaddr, access=access, fault_type=fault_type,
                          thread=thread, cycle=self.now)

        if self.fault_handler is None or retries_left <= 0:
            self.count("fatal_faults")
            callback(None)
            return

        fault_started = self.now

        def resume(resolved: bool) -> None:
            self.sample("fault_service_latency", self.now - fault_started)
            if not resolved:
                self.count("fatal_faults")
                callback(None)
                return
            self._walk(vaddr, vpn, offset, access, callback, thread, started,
                       retries_left - 1)

        self.fault_handler.handle_fault(fault, resume)

    # ------------------------------------------------------------ shootdowns
    def invalidate(self, vpn: int, asid: Optional[int] = None) -> bool:
        """TLB shootdown for one page (the OS calls this on unmap/protect).

        ``asid=None`` (the default used by address-space teardown) shoots the
        page down across *all* address spaces — conservative and always
        correct.  Pass an explicit ASID for a targeted single-space shootdown.
        """
        self.count("shootdowns")
        return self.tlb.invalidate(vpn, asid=asid)

    def flush(self) -> int:
        self.count("flushes")
        return self.tlb.flush()

    # ------------------------------------------------------------------ info
    def export_stats(self) -> None:
        """Copy TLB counters into the component's stat group."""
        self.set_stat("tlb_hit_rate", self.tlb.hit_rate)
        self.set_stat("tlb_occupancy", self.tlb.occupancy)
        self.set_stat("tlb_evictions", self.tlb.evictions)
