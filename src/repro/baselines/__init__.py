"""Comparison baselines: software threads, copy-DMA accelerators, ideal accelerators."""

from .common import FabricRunResult, run_physically_addressed
from .copydma import CopyDMAAccelerator, CopyDMARunResult, CopyModelConfig
from .ideal import IdealAccelerator, IdealRunResult
from .software import SoftwareCPU, SoftwareCPUConfig, SoftwareRunResult

__all__ = [
    "CopyDMAAccelerator",
    "CopyDMARunResult",
    "CopyModelConfig",
    "FabricRunResult",
    "IdealAccelerator",
    "IdealRunResult",
    "SoftwareCPU",
    "SoftwareCPUConfig",
    "SoftwareRunResult",
    "run_physically_addressed",
]
