"""Software-only baseline: the kernels running as POSIX threads on the host.

The model replays the *same* operation stream the accelerator kernel
produces, but prices it with a host-CPU cost model: each data element moves
through the cache hierarchy (hit/miss latencies), each element costs a few
issue cycles of address arithmetic and loop control, and the arithmetic work
of the kernel is derived from its HLS schedule (the accelerator performs
``unroll / II`` operations per cycle; a scalar in-order host core performs
roughly ``1 / cpi`` per cycle).

Host cycles are converted to fabric cycles using the platform clock ratio so
results are directly comparable with the hardware-thread runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..hwthread.hls import KernelSchedule
from ..mem.cache import Cache, CacheConfig
from ..os.scheduler import RoundRobinScheduler, SchedulerConfig
from ..sim.engine import Simulator
from ..sim.process import Access, Burst, Compute, Fence, Operation, Yield
from ..core.platform import ClockConfig


@dataclass(frozen=True)
class SoftwareCPUConfig:
    """Host CPU cost model (an in-order embedded core, Cortex-A9 class)."""

    cycles_per_op: float = 2.0        # CPI of the kernel's arithmetic ops
    issue_cycles_per_element: float = 3.0   # loads/stores, address arithmetic, loop
    cache: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, line_bytes=32, associativity=4,
        hit_latency=1, miss_penalty=80))
    l2_cache: Optional[CacheConfig] = field(default_factory=lambda: CacheConfig(
        size_bytes=512 * 1024, line_bytes=32, associativity=8,
        hit_latency=8, miss_penalty=120))
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.cycles_per_op <= 0 or self.issue_cycles_per_element < 0:
            raise ValueError("CPU cost parameters must be positive")


@dataclass
class SoftwareRunResult:
    """Outcome of a software baseline execution."""

    host_cycles: int
    fabric_cycles: int
    elements_accessed: int
    arithmetic_ops: int
    l1_hit_rate: float
    l2_hit_rate: float
    per_thread_host_cycles: List[int] = field(default_factory=list)


class SoftwareCPU:
    """Replays kernel operation streams with a host-CPU cost model."""

    def __init__(self, config: SoftwareCPUConfig | None = None,
                 clocks: ClockConfig | None = None):
        self.config = config or SoftwareCPUConfig()
        self.clocks = clocks or ClockConfig()

    # ------------------------------------------------------------ execution
    def run_ops(self, ops: Iterable[Operation],
                schedule: Optional[KernelSchedule] = None) -> SoftwareRunResult:
        """Price a single-threaded execution of the given operation stream."""
        cfg = self.config
        sim = Simulator()
        l1 = Cache(sim, cfg.cache, name="sw.l1")
        l2 = Cache(sim, cfg.l2_cache, name="sw.l2") if cfg.l2_cache else None

        host_cycles = 0.0
        elements = 0
        arithmetic = 0
        ops_per_cycle_hw = (schedule.throughput_items_per_cycle()
                            * max(1, schedule.ops_per_item)) if schedule else 1.0

        for op in ops:
            if isinstance(op, Compute):
                # The accelerator spent op.cycles; the equivalent scalar work
                # is ops_per_cycle_hw * cycles arithmetic operations.
                work_ops = op.cycles * ops_per_cycle_hw
                arithmetic += int(work_ops)
                host_cycles += work_ops * cfg.cycles_per_op
            elif isinstance(op, (Access, Burst)):
                host_cycles += self._memory_cost(op, l1, l2)
                elements += self._elements_of(op)
            elif isinstance(op, (Fence, Yield)):
                continue
            else:
                raise TypeError(f"unsupported operation {op!r}")

        result = SoftwareRunResult(
            host_cycles=int(math.ceil(host_cycles)),
            fabric_cycles=self.clocks.host_to_fabric(host_cycles),
            elements_accessed=elements,
            arithmetic_ops=arithmetic,
            l1_hit_rate=l1.hit_rate,
            l2_hit_rate=l2.hit_rate if l2 else 0.0,
        )
        return result

    def run_threads(self, op_streams: Sequence[Iterable[Operation]],
                    schedule: Optional[KernelSchedule] = None,
                    scheduler: Optional[SchedulerConfig] = None) -> SoftwareRunResult:
        """Price a multi-threaded software execution.

        Each stream is priced independently (private L1 per core is assumed)
        and the per-thread demands are interleaved by the round-robin OS
        scheduler to obtain the makespan.
        """
        per_thread: List[SoftwareRunResult] = [
            self.run_ops(ops, schedule=schedule) for ops in op_streams]
        if not per_thread:
            return SoftwareRunResult(0, 0, 0, 0, 0.0, 0.0)

        rr = RoundRobinScheduler(scheduler or SchedulerConfig())
        demands = [(f"t{i}", r.host_cycles) for i, r in enumerate(per_thread)]
        makespan_host = rr.makespan(demands)

        return SoftwareRunResult(
            host_cycles=makespan_host,
            fabric_cycles=self.clocks.host_to_fabric(makespan_host),
            elements_accessed=sum(r.elements_accessed for r in per_thread),
            arithmetic_ops=sum(r.arithmetic_ops for r in per_thread),
            l1_hit_rate=(sum(r.l1_hit_rate for r in per_thread) / len(per_thread)),
            l2_hit_rate=(sum(r.l2_hit_rate for r in per_thread) / len(per_thread)),
            per_thread_host_cycles=[r.host_cycles for r in per_thread],
        )

    # -------------------------------------------------------------- internal
    def _elements_of(self, op: Access | Burst) -> int:
        if isinstance(op, Burst):
            return op.count
        return max(1, op.size // self.config.word_bytes)

    def _memory_cost(self, op: Access | Burst, l1: Cache,
                     l2: Optional[Cache]) -> float:
        cfg = self.config
        cycles = 0.0
        if isinstance(op, Burst):
            addrs = [op.addr + i * op.size for i in range(op.count)]
            is_write = op.is_write
        else:
            addrs = [op.addr]
            is_write = op.is_write
        for addr in addrs:
            cycles += cfg.issue_cycles_per_element
            l1_latency = l1.lookup(addr, is_write)
            if l1_latency > cfg.cache.hit_latency and l2 is not None:
                # L1 miss: probe the L2; an L2 hit shortens the penalty.
                l2_latency = l2.lookup(addr, is_write)
                if l2_latency <= cfg.l2_cache.hit_latency:  # type: ignore[union-attr]
                    l1_latency = cfg.cache.hit_latency + l2_latency
                else:
                    l1_latency = cfg.cache.hit_latency + l2_latency
            cycles += l1_latency
        return cycles
