"""Shared helpers for the accelerator-style baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.platform import Platform
from ..hwthread.memif import MemoryInterface, MemoryInterfaceConfig
from ..hwthread.thread import HardwareThread, HardwareThreadConfig
from ..sim.process import KernelGenerator
from ..vm.types import AccessType


@dataclass
class FabricRunResult:
    """Outcome of running one accelerator kernel on the fabric."""

    cycles: int
    aborted: bool
    mem_bytes: int
    mem_ops: int


def run_physically_addressed(platform: Platform, kernel: KernelGenerator,
                             name: str = "accel",
                             thread_config: Optional[HardwareThreadConfig] = None,
                             memif_config: Optional[MemoryInterfaceConfig] = None
                             ) -> FabricRunResult:
    """Run ``kernel`` on a hardware thread *without* an MMU.

    Addresses are translated functionally (zero cycles) through the process
    page table, which models an accelerator operating on pinned, physically
    known buffers.  Used by the ideal and copy-DMA baselines.
    """
    space = platform.space

    def translator(vaddr: int, access: AccessType) -> int:
        return space.translate(vaddr, access).paddr

    port = platform.bus.attach_master(name)
    memif = MemoryInterface(platform.sim, port, translator=translator,
                            config=memif_config, name=f"{name}.memif")
    thread = HardwareThread(platform.sim, kernel, memif,
                            config=thread_config, name=name)

    outcome = {"ok": None}
    start_cycle = platform.sim.now
    thread.start(lambda ok: outcome.update(ok=ok))
    platform.run()

    if outcome["ok"] is None:
        raise RuntimeError(f"hardware thread {name} never completed")

    return FabricRunResult(
        cycles=(thread.finished_at or platform.sim.now) - start_cycle,
        aborted=not outcome["ok"],
        mem_bytes=thread.stats.counter("mem_bytes").value,
        mem_ops=thread.stats.counter("mem_ops").value,
    )
