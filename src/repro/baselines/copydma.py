"""Copy-based (DMA) accelerator baseline.

This is the conventional way of attaching an accelerator without shared
virtual memory, and the paper's main comparison point: the host allocates a
physically contiguous DMA buffer, *copies* the input data into it, starts the
accelerator (which addresses the buffer physically), waits, and copies the
results back into the application's heap.

The end-to-end time therefore decomposes into

    alloc + copy-in + fabric compute + copy-out

and the copy terms grow with the data footprint regardless of how much of it
the accelerator actually touches — which is exactly the regime where SVM
hardware threads win (Fig. 9 crossover).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.platform import Platform
from ..hwthread.memif import MemoryInterfaceConfig
from ..hwthread.thread import HardwareThreadConfig
from ..sim.process import KernelGenerator
from .common import FabricRunResult, run_physically_addressed


@dataclass(frozen=True)
class CopyModelConfig:
    """Cost model of the host-driven marshalling copies."""

    #: Sustained memcpy throughput of the host core in bytes per *host* cycle
    #: (a Cortex-A9-class core copying through the cache hierarchy).
    copy_bytes_per_host_cycle: float = 1.6
    #: Fixed per-copy software overhead (cache maintenance, descriptor setup),
    #: in host cycles.
    per_copy_overhead_host_cycles: int = 4_000
    #: Per-item cost of serialising pointer-based structures into the DMA
    #: buffer (pointer fix-up, index rewriting), in host cycles.  Only applies
    #: to items the workload flags as needing marshalling.
    marshal_host_cycles_per_item: int = 60

    def __post_init__(self) -> None:
        if self.copy_bytes_per_host_cycle <= 0:
            raise ValueError("copy throughput must be positive")
        if self.per_copy_overhead_host_cycles < 0:
            raise ValueError("per-copy overhead must be non-negative")
        if self.marshal_host_cycles_per_item < 0:
            raise ValueError("marshalling cost must be non-negative")


@dataclass
class CopyDMARunResult:
    """Breakdown of a copy-based accelerator execution (fabric cycles)."""

    alloc_cycles: int
    copy_in_cycles: int
    fabric_cycles: int
    copy_out_cycles: int
    mem_bytes: int

    @property
    def total_cycles(self) -> int:
        return (self.alloc_cycles + self.copy_in_cycles + self.fabric_cycles
                + self.copy_out_cycles)

    @property
    def marshalling_cycles(self) -> int:
        return self.alloc_cycles + self.copy_in_cycles + self.copy_out_cycles


class CopyDMAAccelerator:
    """Conventional copy-in / compute / copy-out accelerator baseline."""

    def __init__(self, copy_config: CopyModelConfig | None = None,
                 thread_config: Optional[HardwareThreadConfig] = None,
                 memif_config: Optional[MemoryInterfaceConfig] = None):
        self.copy_config = copy_config or CopyModelConfig()
        self.thread_config = thread_config
        self.memif_config = memif_config

    # ------------------------------------------------------------------ run
    def run(self, platform: Platform, kernel: KernelGenerator,
            copy_in_bytes: int, copy_out_bytes: int,
            marshal_items: int = 0,
            name: str = "copydma") -> CopyDMARunResult:
        """Execute the copy-based flow.

        ``copy_in_bytes`` / ``copy_out_bytes`` are the sizes the host must
        marshal (typically the full input/output buffers, independent of what
        the kernel touches).  ``marshal_items`` is the number of elements that
        need pointer fix-up while copying (linked structures); each costs
        ``marshal_host_cycles_per_item`` on top of the raw memcpy.
        """
        if copy_in_bytes < 0 or copy_out_bytes < 0:
            raise ValueError("copy sizes must be non-negative")
        if marshal_items < 0:
            raise ValueError("marshal_items must be non-negative")

        clocks = platform.clocks
        alloc_host = platform.kernel.cost_dma_alloc(copy_in_bytes + copy_out_bytes)
        alloc_cycles = clocks.host_to_fabric(alloc_host)

        marshal_host = marshal_items * self.copy_config.marshal_host_cycles_per_item
        copy_in_cycles = (self._copy_cycles(platform, copy_in_bytes)
                          + clocks.host_to_fabric(marshal_host))
        copy_out_cycles = self._copy_cycles(platform, copy_out_bytes)

        fabric: FabricRunResult = run_physically_addressed(
            platform, kernel, name=name,
            thread_config=self.thread_config, memif_config=self.memif_config)
        if fabric.aborted:
            raise RuntimeError("copy-DMA accelerator aborted (unexpected)")

        return CopyDMARunResult(
            alloc_cycles=alloc_cycles,
            copy_in_cycles=copy_in_cycles,
            fabric_cycles=fabric.cycles,
            copy_out_cycles=copy_out_cycles,
            mem_bytes=fabric.mem_bytes,
        )

    def _copy_cycles(self, platform: Platform, num_bytes: int) -> int:
        if num_bytes == 0:
            return 0
        cfg = self.copy_config
        host_cycles = (num_bytes / cfg.copy_bytes_per_host_cycle
                       + cfg.per_copy_overhead_host_cycles)
        return platform.clocks.host_to_fabric(math.ceil(host_cycles))
