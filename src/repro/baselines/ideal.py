"""Ideal physically-addressed accelerator baseline.

This is the upper bound the SVM-enabled hardware thread is compared against
in the virtual-memory-overhead experiment (Fig. 6): the identical datapath
and memory traffic, but address translation is free (as if the accelerator
operated directly on pinned physically contiguous buffers with a priori known
addresses).  Any runtime difference between this baseline and the SVM thread
is, by construction, the cost of virtual memory (TLB misses, page-table
walks, faults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.platform import Platform
from ..hwthread.memif import MemoryInterfaceConfig
from ..hwthread.thread import HardwareThreadConfig
from ..sim.process import KernelGenerator
from .common import FabricRunResult, run_physically_addressed


@dataclass
class IdealRunResult:
    """Result of an ideal-accelerator run."""

    fabric_cycles: int
    mem_bytes: int
    mem_ops: int

    @property
    def total_cycles(self) -> int:
        return self.fabric_cycles


class IdealAccelerator:
    """Runs kernels with zero-cost address translation."""

    def __init__(self, thread_config: Optional[HardwareThreadConfig] = None,
                 memif_config: Optional[MemoryInterfaceConfig] = None):
        self.thread_config = thread_config
        self.memif_config = memif_config

    def run(self, platform: Platform, kernel: KernelGenerator,
            name: str = "ideal") -> IdealRunResult:
        """Execute ``kernel`` on ``platform`` and return its cycle count.

        The caller must have allocated the kernel's buffers fully resident
        (``residency=1.0``); a missing page raises ``KeyError`` because an
        accelerator without an MMU cannot take page faults.
        """
        result: FabricRunResult = run_physically_addressed(
            platform, kernel, name=name,
            thread_config=self.thread_config,
            memif_config=self.memif_config)
        if result.aborted:
            raise RuntimeError("ideal accelerator aborted (unexpected)")
        return IdealRunResult(fabric_cycles=result.cycles,
                              mem_bytes=result.mem_bytes,
                              mem_ops=result.mem_ops)
