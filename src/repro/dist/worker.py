"""Fleet workers: claim → lease → run → report.

A :class:`Worker` drains a :class:`~repro.dist.broker.Broker`: it claims one
job at a time, unpickles the ``(fn, item)`` payload, executes it (for
:class:`~repro.exec.jobs.ExperimentJob` payloads that is
:func:`~repro.exec.jobs.run_job`, which picks the execution tier via the
model's ``tier="auto"`` path exactly as the in-process runner does), stores
the result in the shared fleet memo store, and reports completion.  While a
job runs, a daemon heartbeat thread extends the lease so long jobs are not
re-leased out from under a healthy worker; a worker that dies simply stops
heartbeating and the broker re-leases its job after expiry.

Failure classification:

* the payload cannot be unpickled → **transient** (this worker's
  environment lacks something — e.g. an execution model registered only in
  the submitting process; another worker may well succeed), retried with
  backoff,
* the job function raises → **permanent** (points are deterministic, so a
  retry would fail identically); the error string is recorded on the job.

``worker_main`` is the module-level process entry point — picklable, so
:class:`~repro.dist.runner.DistributedRunner` can spawn local workers with
``multiprocessing``, and the ``repro worker`` CLI wraps the same loop.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
import traceback
from typing import Callable, Optional, Union

from ..exec.cache import MemoCache
from .broker import Broker, ClaimedJob, connect_broker


class Worker:
    """One claim-lease-run-report loop against a broker."""

    def __init__(self, broker: Broker, memo: Optional[MemoCache] = None,
                 worker_id: Optional[str] = None, *,
                 lease_seconds: Optional[float] = None,
                 heartbeat_interval: Optional[float] = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.broker = broker
        self.memo = memo
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}")
        self.lease_seconds = (lease_seconds if lease_seconds is not None
                              else getattr(broker, "lease_seconds", 30.0))
        #: Heartbeat well inside the lease, so one missed beat never loses it.
        self.heartbeat_interval = (heartbeat_interval
                                   if heartbeat_interval is not None
                                   else max(self.lease_seconds / 3.0, 0.05))
        self.clock = clock
        self.jobs_run = 0
        self.failures = 0

    # ------------------------------------------------------------- one job
    def run_one(self) -> bool:
        """Claim and execute one job; False when the queue is idle."""
        claim = self.broker.claim(self.worker_id,
                                  lease_seconds=self.lease_seconds)
        if claim is None:
            return False
        self._execute(claim)
        return True

    def _execute(self, claim: ClaimedJob) -> None:
        stop = threading.Event()
        beat = threading.Thread(target=self._heartbeat_loop,
                                args=(claim, stop), daemon=True)
        beat.start()
        try:
            try:
                fn, item = pickle.loads(claim.payload)
            except BaseException as exc:
                # This environment can't even decode the job (missing model
                # registration, version skew): let another worker try.
                self.failures += 1
                self.broker.fail(claim, error=_describe(exc), transient=True)
                return
            try:
                value = fn(item)
            except Exception as exc:
                self.failures += 1
                self.broker.fail(claim, error=_describe(exc), transient=False)
                return
        finally:
            stop.set()
            beat.join()
        if self.memo is not None:
            try:
                self.memo.put(claim.key, value)
            except Exception:
                pass            # the memo tier is best-effort, results aren't
        self.broker.complete(claim.key, value, worker=self.worker_id)
        self.jobs_run += 1

    def _heartbeat_loop(self, claim: ClaimedJob,
                        stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                if not self.broker.heartbeat(claim,
                                             lease_seconds=self.lease_seconds):
                    # Lease lost (we stalled past expiry and the job was
                    # re-leased).  Finishing anyway is safe — completion is
                    # idempotent per key — so just stop beating.
                    return
            except Exception:
                return

    # ---------------------------------------------------------------- loop
    def run_until_idle(self, idle_grace: float = 0.0,
                       poll_interval: float = 0.05,
                       max_jobs: Optional[int] = None) -> int:
        """Drain the queue; returns the number of jobs executed.

        Exits once the queue has stayed idle for ``idle_grace`` seconds
        (0 = exit on the first empty poll) or after ``max_jobs`` jobs.
        """
        executed = 0
        idle_since: Optional[float] = None
        while max_jobs is None or executed < max_jobs:
            if self.run_one():
                executed += 1
                idle_since = None
                continue
            now = self.clock()
            if idle_since is None:
                idle_since = now
            if now - idle_since >= idle_grace:
                break
            time.sleep(poll_interval)
        return executed


def worker_main(broker_url: Union[str, os.PathLike],
                cache_dir: Optional[Union[str, os.PathLike]] = None,
                worker_id: Optional[str] = None,
                lease_seconds: Optional[float] = None,
                idle_grace: float = 0.0,
                poll_interval: float = 0.05,
                max_jobs: Optional[int] = None,
                cache_max_bytes: Optional[int] = None) -> int:
    """Process entry point: connect to the broker and drain it until idle.

    ``broker_url`` is anything :func:`~repro.dist.broker.connect_broker`
    accepts — a bare SQLite path, ``sqlite:///path``, or ``http://host:port``
    for a :class:`~repro.dist.http.BrokerServer` fleet.

    Importing :mod:`repro.models` (via the exec package) registers the
    built-in execution models, so freshly spawned workers can run any
    canonical :class:`~repro.exec.jobs.ExperimentJob`.
    """
    broker = connect_broker(broker_url, **(
        {} if lease_seconds is None else {"lease_seconds": lease_seconds}))
    memo = (MemoCache(path=cache_dir, max_bytes=cache_max_bytes)
            if cache_dir is not None else None)
    worker = Worker(broker, memo=memo, worker_id=worker_id,
                    lease_seconds=lease_seconds)
    try:
        return worker.run_until_idle(idle_grace=idle_grace,
                                     poll_interval=poll_interval,
                                     max_jobs=max_jobs)
    finally:
        broker.close()


def _describe(exc: BaseException) -> str:
    """Compact one-job error record: type, message, innermost frame."""
    tail = traceback.extract_tb(exc.__traceback__)
    where = f" at {tail[-1].filename}:{tail[-1].lineno}" if tail else ""
    return f"{type(exc).__name__}: {exc}{where}"
