"""Work-queue brokers: the coordination point of the distributed executor.

A broker owns the fleet's job table.  Producers (the
:class:`~repro.dist.runner.DistributedRunner`, the ``repro sweep submit``
front-end) enqueue *sweeps* — ordered batches of content-addressed work
items — and workers (:mod:`repro.dist.worker`) claim jobs one at a time
under a **lease**: a claim is exclusive until its expiry, heartbeats extend
it while the job runs, and a worker that crashes or stalls simply lets the
lease lapse, after which the job is re-leased to the next claimant (bounded
by ``max_attempts``).  Transient failures re-enter the queue with
exponential backoff; permanent failures and exhausted retries park the job
as ``failed``.

Job state machine::

    pending ──claim──▶ leased ──complete──▶ done
       ▲                 │
       │   lease expiry /│transient failure (attempts < max)
       └─────────────────┘
                         └──▶ failed      (permanent / retries exhausted)
    pending ──cancel──▶ cancelled

Jobs are keyed by the same content hash as the memo cache
(:func:`repro.exec.keys.stable_key`), which buys fleet-wide dedup twice
over: at enqueue time the broker consults the shared
:class:`~repro.exec.cache.MemoCache` (and its own result table) and marks
already-computed points ``done`` without ever queueing them, and at
completion time one result resolves *every* job carrying that key — so two
workers finishing the same point race idempotently (first result wins; the
points are deterministic, so both computed the same value).

:class:`SQLiteBroker` is the reference implementation: one SQLite file on a
shared filesystem, WAL-mode, safe for many concurrent worker processes.
The :class:`Broker` protocol is deliberately small so other queues can drop
in behind the same :class:`~repro.dist.runner.DistributedRunner` / service
front-end — :class:`~repro.dist.http.HTTPBroker` is the network-backed one.

Backends are addressed by **broker URL** and constructed through
:func:`connect_broker`: ``sqlite:///path/to.db`` (or a bare filesystem path,
the PR-7 back-compat form) opens a :class:`SQLiteBroker`;
``http://host:port`` connects an ``HTTPBroker``.  Third-party backends
register a scheme with :func:`register_broker_scheme`, exactly like
execution models register with the model registry.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, List, Optional, Protocol,
                    Sequence, Union, runtime_checkable)

from ..exec.cache import MemoCache
from .blobs import DEFAULT_INLINE_LIMIT, BlobStore

#: Terminal job states: nothing transitions out of these.
FINISHED_STATES = ("done", "failed", "cancelled")

#: In-row marker for a payload that lives in the attached blob store.  Real
#: payloads are pickles, which always start with b"\\x80", so the marker can
#: never collide with inline bytes.
_BLOB_MARKER = b"blobref:sha256:"


@dataclass(frozen=True)
class WorkItem:
    """One unit of enqueueable work.

    ``key`` is the content address (:func:`~repro.exec.keys.stable_key` of
    the function/item pair), ``payload`` the pickled ``(fn, item)`` tuple a
    worker executes, ``meta`` optional JSON-able annotations (the service
    front-end stores sweep coordinates here).
    """

    key: str
    payload: bytes
    meta: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class SweepTicket:
    """Receipt for an enqueued sweep."""

    sweep_id: str
    total: int
    #: Jobs resolved at enqueue time from the shared memo store or the
    #: broker's own result table — never queued, already ``done``.
    already_done: int
    #: The distinct keys resolved at enqueue time (for cache accounting).
    done_keys: frozenset = field(default_factory=frozenset)


@dataclass(frozen=True)
class ClaimedJob:
    """A leased job, as handed to a worker."""

    sweep_id: str
    position: int
    key: str
    payload: bytes
    attempts: int
    lease_expiry: float


@dataclass(frozen=True)
class JobResult:
    """One finished job row, as streamed back to consumers."""

    position: int
    key: str
    state: str                       # done | failed | cancelled
    meta: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    value: Any = None                # unpickled result (done jobs only)
    worker: Optional[str] = None


@runtime_checkable
class Broker(Protocol):
    """What the distributed runner, workers and service front-end need.

    Implementations must make ``claim`` exclusive (one claimant per job per
    lease) and ``complete`` idempotent per key; everything else is plain
    bookkeeping.  :class:`SQLiteBroker` is the reference implementation.
    """

    def create_sweep(self, items: Sequence[WorkItem], label: str = "sweep",
                     spec: Optional[str] = None,
                     memo: Optional[MemoCache] = None,
                     results: Optional[Any] = None) -> SweepTicket: ...

    def claim(self, worker: str,
              lease_seconds: Optional[float] = None) -> Optional[ClaimedJob]: ...

    def heartbeat(self, claim: ClaimedJob,
                  lease_seconds: Optional[float] = None) -> bool: ...

    def complete(self, key: str, value: Any,
                 worker: Optional[str] = None) -> bool: ...

    def fail(self, claim: ClaimedJob, error: str,
             transient: bool = False) -> None: ...

    def cancel(self, sweep_id: str) -> int: ...

    def status(self, sweep_id: str) -> Dict[str, Any]: ...

    def sweeps(self) -> List[Dict[str, Any]]: ...

    def finished_positions(self, sweep_id: str) -> Dict[int, str]: ...

    def retries(self, sweep_id: str) -> int: ...

    def fetch_results(self, sweep_id: str,
                      positions: Optional[Iterable[int]] = None, *,
                      values: bool = True) -> List[JobResult]: ...


# ---------------------------------------------------------------------------
# Broker URLs: scheme registry + connect_broker
# ---------------------------------------------------------------------------
_BROKER_SCHEMES: Dict[str, Callable[..., Broker]] = {}


def register_broker_scheme(scheme: str,
                           factory: Callable[..., Broker]) -> None:
    """Register ``factory(url, **options) -> Broker`` for a URL scheme.

    Mirrors the execution-model registry: third-party backends plug in a
    scheme once and every front-end (``repro worker``, ``repro sweep``,
    :class:`~repro.dist.runner.DistributedRunner`) can reach them through
    the same ``--broker URL`` flag.
    """
    _BROKER_SCHEMES[scheme.lower()] = factory


def broker_schemes() -> List[str]:
    """The registered URL schemes, sorted (for error messages and docs)."""
    return sorted(_BROKER_SCHEMES)


def connect_broker(url: Union[str, os.PathLike], **options: Any) -> Broker:
    """Open the broker a URL names: the one front door for every backend.

    ``sqlite:///path/to.db`` (or ``sqlite://relative.db``) opens a
    :class:`SQLiteBroker`; a bare filesystem path — the pre-URL form every
    PR-7 script uses — does the same, so nothing breaks.  ``http://`` /
    ``https://`` connect an :class:`~repro.dist.http.HTTPBroker`.
    ``options`` pass through to the backend constructor; options a backend
    does not understand raise ``TypeError`` as usual.
    """
    text = os.fspath(url)
    head, sep, _ = text.partition("://")
    scheme = head.lower() if sep and head else ""
    if not scheme:
        return _sqlite_from_url(text, **options)
    factory = _BROKER_SCHEMES.get(scheme)
    if factory is None:
        raise ValueError(
            f"unknown broker URL scheme {scheme!r} in {text!r} — "
            f"registered schemes: {', '.join(broker_schemes())}")
    return factory(text, **options)


def _sqlite_from_url(url: str, **options: Any) -> "SQLiteBroker":
    path = url
    if url.lower().startswith("sqlite://"):
        path = url[len("sqlite://"):]
        # sqlite:///abs/path keeps its leading slash; sqlite://rel.db is
        # relative.  An empty path is a mistake worth naming.
        if not path:
            raise ValueError(f"broker URL {url!r} names no database path")
    return SQLiteBroker(path, **options)


def _http_from_url(url: str, **options: Any) -> Broker:
    # Imported lazily: repro.dist.http depends on the wire module, which
    # depends on this module's dataclasses.
    from .http import HTTPBroker
    return HTTPBroker(url, **options)


register_broker_scheme("sqlite", _sqlite_from_url)
register_broker_scheme("http", _http_from_url)
register_broker_scheme("https", _http_from_url)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id  TEXT PRIMARY KEY,
    label     TEXT NOT NULL,
    spec      TEXT,
    created   REAL NOT NULL,
    cancelled INTEGER NOT NULL DEFAULT 0,
    total     INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    sweep_id     TEXT NOT NULL,
    position     INTEGER NOT NULL,
    key          TEXT NOT NULL,
    payload      BLOB NOT NULL,
    meta         TEXT,
    state        TEXT NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    not_before   REAL NOT NULL DEFAULT 0,
    lease_expiry REAL,
    worker       TEXT,
    error        TEXT,
    PRIMARY KEY (sweep_id, position)
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, not_before);
CREATE INDEX IF NOT EXISTS jobs_by_key   ON jobs (key);
CREATE TABLE IF NOT EXISTS results (
    key     TEXT PRIMARY KEY,
    payload BLOB NOT NULL,
    worker  TEXT,
    created REAL NOT NULL
);
"""


class SQLiteBroker:
    """The reference :class:`Broker`: one SQLite file, many processes.

    Every worker/runner process opens its own ``SQLiteBroker`` on the same
    path; WAL journaling plus short immediate transactions make claims
    exclusive across processes, and an internal lock makes one instance safe
    to share between a worker's run loop and its heartbeat thread.

    ``clock`` is injectable so lease expiry, backoff and retry exhaustion
    are deterministically testable without sleeping.

    Payloads and result values are stored in-row (the PR-7 behaviour) by
    default.  With a ``blobs`` store attached, byte strings larger than
    ``inline_limit`` live in the store and the row holds a
    ``blobref:sha256:<digest>`` marker instead — same seam the HTTP wire
    format uses, so the queue's row size stays bounded either way.
    """

    def __init__(self, path: Union[str, os.PathLike], *,
                 lease_seconds: float = 30.0,
                 max_attempts: int = 3,
                 backoff_seconds: float = 0.25,
                 busy_timeout: float = 30.0,
                 clock: Callable[[], float] = time.time,
                 blobs: Optional[BlobStore] = None,
                 inline_limit: int = DEFAULT_INLINE_LIMIT) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.path = Path(path)
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.backoff_seconds = backoff_seconds
        self.clock = clock
        self.blobs = blobs
        self.inline_limit = inline_limit
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._db = sqlite3.connect(self.path, timeout=busy_timeout,
                                   check_same_thread=False,
                                   isolation_level=None)
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._db.close()

    @property
    def url(self) -> str:
        """The broker URL that reopens this backend from any process."""
        return f"sqlite://{self.path.resolve()}"

    # ---------------------------------------------------------- byte seam
    def _store_bytes(self, data: bytes) -> bytes:
        """Bytes -> in-row representation (raw, or a blob-store marker)."""
        if self.blobs is None or len(data) <= self.inline_limit:
            return data
        digest = self.blobs.put(data)
        return _BLOB_MARKER + digest.encode("ascii")

    def _load_bytes(self, stored: bytes) -> bytes:
        """In-row representation -> original bytes."""
        stored = bytes(stored)
        if not stored.startswith(_BLOB_MARKER):
            return stored
        digest = stored[len(_BLOB_MARKER):].decode("ascii")
        if self.blobs is None:
            raise RuntimeError(
                f"row references blob {digest[:12]}… but this broker has "
                "no blob store attached")
        return self.blobs.get(digest)

    # ------------------------------------------------------------- enqueue
    def create_sweep(self, items: Sequence[WorkItem], label: str = "sweep",
                     spec: Optional[str] = None,
                     memo: Optional[MemoCache] = None,
                     results: Optional[Any] = None) -> SweepTicket:
        """Enqueue one batch; returns its ticket.

        Before queueing, each item's key is looked up in the broker's own
        result table, then in the shared ``memo`` store, then in the
        persistent ``results`` store
        (:class:`~repro.store.ResultsStore`): a hit records the job as
        ``done`` immediately (memo/store hits are copied into the result
        table, so later sweeps resolve them broker-side even from a worker
        whose cache evicted them).  The results store only serves values it
        recorded under the current package version, mirroring the memo
        cache's version namespace.
        """
        sweep_id = uuid.uuid4().hex[:12]
        now = self.clock()
        done_keys = set()
        missing = object()
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._db.execute(
                    "INSERT INTO sweeps (sweep_id, label, spec, created, total)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (sweep_id, label, spec, now, len(items)))
                for position, item in enumerate(items):
                    state = "pending"
                    value = missing
                    source = None
                    if item.key in done_keys or self._resolved(item.key):
                        state = "done"
                    elif memo is not None and item.key in memo:
                        value = memo.get(item.key)
                        source = "memo"
                    elif results is not None:
                        value = results.get_value(item.key, missing)
                        source = "store"
                    if value is not missing:
                        # Memo / results-store hit: adopt the persisted
                        # value as this key's result so the broker can
                        # stream it.
                        self._db.execute(
                            "INSERT OR IGNORE INTO results "
                            "(key, payload, worker, created) VALUES (?, ?, ?, ?)",
                            (item.key,
                             self._store_bytes(pickle.dumps(
                                 value, protocol=pickle.HIGHEST_PROTOCOL)),
                             source, now))
                        state = "done"
                    if state == "done":
                        done_keys.add(item.key)
                    meta = (json.dumps(item.meta, sort_keys=True)
                            if item.meta is not None else None)
                    self._db.execute(
                        "INSERT INTO jobs (sweep_id, position, key, payload,"
                        " meta, state) VALUES (?, ?, ?, ?, ?, ?)",
                        (sweep_id, position, item.key,
                         self._store_bytes(item.payload), meta, state))
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        already_done = sum(1 for item in items if item.key in done_keys)
        return SweepTicket(sweep_id=sweep_id, total=len(items),
                           already_done=already_done,
                           done_keys=frozenset(done_keys))

    def _resolved(self, key: str) -> bool:
        row = self._db.execute("SELECT 1 FROM results WHERE key = ?",
                               (key,)).fetchone()
        return row is not None

    # --------------------------------------------------------------- claim
    def claim(self, worker: str,
              lease_seconds: Optional[float] = None) -> Optional[ClaimedJob]:
        """Lease the oldest runnable job to ``worker``, or ``None`` if idle.

        Claiming first sweeps expired leases back to ``pending`` (or to
        ``failed`` once their attempts are exhausted), so a crashed worker's
        jobs become claimable again without any out-of-band reaper.
        """
        lease = lease_seconds if lease_seconds is not None else self.lease_seconds
        now = self.clock()
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._expire_leases(now)
                # A key someone is already computing is not claimable again:
                # its completion will resolve every job carrying the key, so
                # handing a duplicate to a second worker would only burn work.
                row = self._db.execute(
                    "SELECT j.sweep_id, j.position, j.key, j.payload,"
                    " j.attempts FROM jobs j JOIN sweeps s"
                    " ON s.sweep_id = j.sweep_id"
                    " WHERE j.state = 'pending' AND j.not_before <= ?"
                    " AND s.cancelled = 0 AND j.key NOT IN"
                    " (SELECT key FROM jobs WHERE state = 'leased')"
                    " ORDER BY s.created, j.sweep_id, j.position LIMIT 1",
                    (now,)).fetchone()
                if row is None:
                    self._db.execute("COMMIT")
                    return None
                sweep_id, position, key, payload, attempts = row
                expiry = now + lease
                self._db.execute(
                    "UPDATE jobs SET state = 'leased', attempts = ?,"
                    " lease_expiry = ?, worker = ?, error = NULL"
                    " WHERE sweep_id = ? AND position = ?",
                    (attempts + 1, expiry, worker, sweep_id, position))
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return ClaimedJob(sweep_id=sweep_id, position=position, key=key,
                          payload=self._load_bytes(payload),
                          attempts=attempts + 1, lease_expiry=expiry)

    def _expire_leases(self, now: float) -> None:
        """Requeue lapsed leases; park the ones out of attempts (in-txn)."""
        self._db.execute(
            "UPDATE jobs SET state = 'failed', worker = NULL,"
            " lease_expiry = NULL,"
            " error = 'lease expired after ' || attempts || ' attempt(s)'"
            " WHERE state = 'leased' AND lease_expiry < ? AND attempts >= ?",
            (now, self.max_attempts))
        self._db.execute(
            "UPDATE jobs SET state = 'pending', worker = NULL,"
            " lease_expiry = NULL WHERE state = 'leased' AND lease_expiry < ?",
            (now,))

    def heartbeat(self, claim: ClaimedJob,
                  lease_seconds: Optional[float] = None) -> bool:
        """Extend a claim's lease; False if the lease was already lost."""
        lease = lease_seconds if lease_seconds is not None else self.lease_seconds
        with self._lock:
            cursor = self._db.execute(
                "UPDATE jobs SET lease_expiry = ? WHERE sweep_id = ?"
                " AND position = ? AND state = 'leased' AND attempts = ?",
                (self.clock() + lease, claim.sweep_id, claim.position,
                 claim.attempts))
        return cursor.rowcount > 0

    # ------------------------------------------------------------ outcomes
    def complete(self, key: str, value: Any,
                 worker: Optional[str] = None) -> bool:
        """Record a result for ``key``; resolves every job carrying the key.

        Idempotent: the first completion wins, later duplicates (a second
        worker finishing a re-leased copy of the same job) are no-ops.
        Returns True when this call stored the result.
        """
        return self.complete_bytes(
            key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
            worker=worker)

    def complete_bytes(self, key: str, payload: bytes,
                       worker: Optional[str] = None) -> bool:
        """:meth:`complete` with a pre-pickled value.

        This is the relay path of the broker *server*: result bytes from a
        remote worker are recorded verbatim, never unpickled, so the server
        needs none of the classes a custom job function returns.  Same
        idempotency guard as :meth:`complete` — one ``INSERT OR IGNORE``.
        """
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._db.execute(
                    "INSERT OR IGNORE INTO results (key, payload, worker,"
                    " created) VALUES (?, ?, ?, ?)",
                    (key, self._store_bytes(payload), worker, self.clock()))
                first = cursor.rowcount > 0
                self._db.execute(
                    "UPDATE jobs SET state = 'done', worker = COALESCE(?,"
                    " worker), lease_expiry = NULL, error = NULL"
                    " WHERE key = ? AND state IN ('pending', 'leased')",
                    (worker, key))
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return first

    def fail(self, claim: ClaimedJob, error: str,
             transient: bool = False) -> None:
        """Report a failed execution.

        Transient failures requeue with exponential backoff
        (``backoff_seconds * 2**(attempts-1)``) until ``max_attempts`` is
        exhausted; permanent failures park the job as ``failed`` at once.
        """
        retry = transient and claim.attempts < self.max_attempts
        with self._lock:
            if retry:
                delay = self.backoff_seconds * (2 ** (claim.attempts - 1))
                self._db.execute(
                    "UPDATE jobs SET state = 'pending', worker = NULL,"
                    " lease_expiry = NULL, not_before = ?, error = ?"
                    " WHERE sweep_id = ? AND position = ? AND state = 'leased'"
                    " AND attempts = ?",
                    (self.clock() + delay, error, claim.sweep_id,
                     claim.position, claim.attempts))
            else:
                self._db.execute(
                    "UPDATE jobs SET state = 'failed', worker = NULL,"
                    " lease_expiry = NULL, error = ?"
                    " WHERE sweep_id = ? AND position = ? AND state = 'leased'"
                    " AND attempts = ?",
                    (error, claim.sweep_id, claim.position, claim.attempts))

    def cancel(self, sweep_id: str) -> int:
        """Stop scheduling a sweep; returns the number of jobs cancelled.

        Jobs already leased run to completion (their results are recorded
        and remain reusable); pending ones flip to ``cancelled``.
        """
        with self._lock:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._db.execute(
                    "UPDATE sweeps SET cancelled = 1 WHERE sweep_id = ?",
                    (sweep_id,))
                cursor = self._db.execute(
                    "UPDATE jobs SET state = 'cancelled', worker = NULL,"
                    " lease_expiry = NULL WHERE sweep_id = ?"
                    " AND state = 'pending'", (sweep_id,))
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        return cursor.rowcount

    # ------------------------------------------------------------- queries
    def status(self, sweep_id: str) -> Dict[str, Any]:
        """State counts and progress for one sweep."""
        with self._lock:
            sweep = self._db.execute(
                "SELECT label, spec, created, cancelled, total FROM sweeps"
                " WHERE sweep_id = ?", (sweep_id,)).fetchone()
            if sweep is None:
                raise KeyError(f"unknown sweep {sweep_id!r}")
            label, spec, created, cancelled, total = sweep
            counts = dict(self._db.execute(
                "SELECT state, COUNT(*) FROM jobs WHERE sweep_id = ?"
                " GROUP BY state", (sweep_id,)).fetchall())
        for state in ("pending", "leased", "done", "failed", "cancelled"):
            counts.setdefault(state, 0)
        finished = sum(counts[state] for state in FINISHED_STATES)
        # "cancelled" is the per-job state count; the sweep-level flag gets
        # its own key so the two cannot shadow each other.
        return {"sweep_id": sweep_id, "label": label, "created": created,
                "sweep_cancelled": bool(cancelled), "total": total, **counts,
                "finished": finished >= total,
                "done_fraction": (counts["done"] / total) if total else 1.0,
                "spec": spec}

    def sweeps(self) -> List[Dict[str, Any]]:
        """Status of every known sweep, newest first."""
        with self._lock:
            ids = [row[0] for row in self._db.execute(
                "SELECT sweep_id FROM sweeps ORDER BY created DESC,"
                " sweep_id").fetchall()]
        return [self.status(sweep_id) for sweep_id in ids]

    def finished_positions(self, sweep_id: str) -> Dict[int, str]:
        """position -> terminal state, for cheap incremental polling."""
        with self._lock:
            rows = self._db.execute(
                "SELECT position, state FROM jobs WHERE sweep_id = ?"
                " AND state IN ('done', 'failed', 'cancelled')",
                (sweep_id,)).fetchall()
        return dict(rows)

    def fetch_result_rows(self, sweep_id: str,
                          positions: Optional[Iterable[int]] = None, *,
                          values: bool = True) -> List[tuple]:
        """Finished rows as ``(position, key, state, meta, error, worker,
        value_bytes_or_None)`` tuples, ordered by position.

        The byte-level sibling of :meth:`fetch_results`: value pickles are
        returned as-is (resolved through the blob store if offloaded) and
        never loaded, so a relay — the HTTP broker server — can ship them
        to clients whose classes it cannot import.  With ``values=False``
        the result column is skipped entirely: no row bytes read, nothing
        to unpickle, which is what status-only consumers should ask for.
        """
        value_column = "r.payload" if values else "NULL"
        query = (f"SELECT j.position, j.key, j.state, j.meta, j.error,"
                 f" COALESCE(j.worker, r.worker), {value_column}"
                 " FROM jobs j LEFT JOIN results r"
                 " ON r.key = j.key WHERE j.sweep_id = ?"
                 " AND j.state IN ('done', 'failed', 'cancelled')")
        params: List[Any] = [sweep_id]
        if positions is not None:
            wanted = sorted(set(positions))
            if not wanted:
                return []
            query += (" AND j.position IN ("
                      + ",".join("?" * len(wanted)) + ")")
            params.extend(wanted)
        query += " ORDER BY j.position"
        with self._lock:
            rows = self._db.execute(query, params).fetchall()
        out: List[tuple] = []
        for position, key, state, meta, error, worker, payload in rows:
            blob = None
            if values and state == "done" and payload is not None:
                blob = self._load_bytes(payload)
            out.append((position, key, state,
                        json.loads(meta) if meta else None,
                        error, worker, blob))
        return out

    def fetch_results(self, sweep_id: str,
                      positions: Optional[Iterable[int]] = None, *,
                      values: bool = True) -> List[JobResult]:
        """Finished jobs of a sweep (optionally only these positions),
        ordered by position.

        ``values=True`` unpickles each done job's value; ``values=False``
        leaves every ``value`` as ``None`` and never reads the stored
        bytes — the cheap form for callers that only need states/metadata.
        """
        return [JobResult(position=position, key=key, state=state,
                          meta=meta, error=error,
                          value=(pickle.loads(blob) if blob is not None
                                 else None),
                          worker=worker)
                for position, key, state, meta, error, worker, blob
                in self.fetch_result_rows(sweep_id, positions,
                                          values=values)]

    def retries(self, sweep_id: str) -> int:
        """Total re-executions (attempts beyond the first) in one sweep."""
        with self._lock:
            row = self._db.execute(
                "SELECT COALESCE(SUM(attempts - 1), 0) FROM jobs"
                " WHERE sweep_id = ? AND attempts > 1", (sweep_id,)).fetchone()
        return int(row[0])
