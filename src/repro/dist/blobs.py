"""Content-addressed blob stores: the payload/value transport seam.

Work payloads and result values are opaque byte strings (pickles) to every
coordination layer.  PR 7 shipped them *inline* — BLOB columns inside the
SQLite broker and rows inside its result table — which is exactly right for
a single-box fleet but couples the queue's row size to the largest payload
and forces every transport to re-invent value shipping.  :class:`BlobStore`
is the explicit seam: bytes go in, a content digest (SHA-256 hex) comes
out, and any layer that must move bytes — the broker's own tables, the HTTP
wire format (:mod:`repro.dist.wire`), the broker server's on-disk store —
speaks the same three-method protocol.

Content addressing makes every store write-once and every ``put``
idempotent: storing the same bytes twice is a no-op that returns the same
digest, so two workers shipping the same result value race harmlessly, and
a broker server re-packing a payload it already holds never copies bytes.

Implementations:

* :class:`MemoryBlobStore` — a dict; tests and in-process servers.
* :class:`DirBlobStore` — one file per blob under
  ``<root>/<digest[:2]>/<digest>``, atomic writes (temp file + rename),
  the default backing store of ``repro broker serve``.
* :class:`~repro.dist.http.HTTPBlobStore` — GET/PUT against a broker
  server's ``/v1/blobs/<digest>`` endpoints (lives with the HTTP backend).

:class:`~repro.dist.broker.SQLiteBroker` keeps its inline-BLOB behaviour
behind the same seam: without an attached store it stores bytes in-row
exactly as before; with one, rows past ``inline_limit`` hold a
``blobref:sha256:<digest>`` marker instead and the bytes live in the store.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Protocol, Union, runtime_checkable

#: Payloads/values at or below this many bytes travel inline (base64 on the
#: wire, in-row in SQLite); larger ones go through a blob store.  One knob,
#: shared by every transport so the split is consistent end to end.
DEFAULT_INLINE_LIMIT = 32 * 1024

_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


def blob_digest(data: bytes) -> str:
    """The content address of ``data``: SHA-256, lowercase hex."""
    return hashlib.sha256(data).hexdigest()


def valid_digest(digest: str) -> bool:
    """Whether ``digest`` is a well-formed SHA-256 hex address."""
    return isinstance(digest, str) and _DIGEST_RE.match(digest) is not None


@runtime_checkable
class BlobStore(Protocol):
    """Where payloads and result values live, addressed by content digest.

    ``put`` must be idempotent (same bytes, same digest, no error on
    repeat) and ``get`` must raise :class:`KeyError` for unknown or
    malformed digests — callers use membership/``KeyError`` to decide
    whether bytes need shipping.
    """

    def put(self, data: bytes) -> str: ...

    def get(self, digest: str) -> bytes: ...

    def __contains__(self, digest: str) -> bool: ...


class MemoryBlobStore:
    """Dict-backed :class:`BlobStore` (tests, in-process broker servers)."""

    def __init__(self) -> None:
        self._data: Dict[str, bytes] = {}

    def put(self, data: bytes) -> str:
        digest = blob_digest(data)
        self._data[digest] = bytes(data)
        return digest

    def get(self, digest: str) -> bytes:
        try:
            return self._data[digest]
        except KeyError:
            raise KeyError(f"unknown blob {digest!r}") from None

    def __contains__(self, digest: str) -> bool:
        return digest in self._data

    def __len__(self) -> int:
        return len(self._data)


class DirBlobStore:
    """One file per blob under ``<root>/<digest[:2]>/<digest>``.

    Writes are atomic (temp file + rename) and idempotent: an existing
    entry is never rewritten, so concurrent workers and servers sharing a
    directory cannot corrupt each other.  Digests are validated before any
    path is built — a malformed address can never escape the root.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        if not valid_digest(digest):
            raise KeyError(f"malformed blob digest {digest!r}")
        return self.root / digest[:2] / digest

    def put(self, data: bytes) -> str:
        digest = blob_digest(data)
        entry = self._path(digest)
        if entry.exists():                    # content-addressed: idempotent
            return digest
        entry.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=entry.parent,
                                        prefix=f".{digest[:8]}-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp_name, entry)
        except BaseException:
            os.unlink(tmp_name)
            raise
        return digest

    def get(self, digest: str) -> bytes:
        try:
            return self._path(digest).read_bytes()
        except FileNotFoundError:
            raise KeyError(f"unknown blob {digest!r}") from None

    def __contains__(self, digest: str) -> bool:
        try:
            return self._path(digest).is_file()
        except KeyError:
            return False

    def digests(self) -> Iterator[str]:
        """Every stored digest (any order)."""
        for shard in self.root.iterdir():
            if shard.is_dir():
                for entry in shard.iterdir():
                    if valid_digest(entry.name):
                        yield entry.name

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())
