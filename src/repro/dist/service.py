"""Sweep service front-end: JSON spec in, sweep id out, results streamed.

The thin layer between the CLI (``repro sweep submit/status/results``) and a
:class:`~repro.dist.broker.Broker`.  A *sweep spec* is a small JSON object
describing a :class:`~repro.eval.sweep.Grid` of canonical
:class:`~repro.exec.jobs.ExperimentJob` points::

    {
      "label":   "fig5-tiny",
      "models":  ["svm"],                 # registered execution models
      "kernels": ["vecadd", "matmul"],    # workload kernels
      "scale":   "tiny",                  # workload size class
      "axes":    {"tlb_entries": [8, 16, 32]},   # HarnessConfig axes
      "config":  {"shared_walker": true},        # fixed HarnessConfig knobs
      "tier":    "auto",
      "num_threads": 1
    }

``expand_spec`` turns that into the same ``Sweep`` an in-process caller
would build, so the submitted jobs carry the *same* content-addressed keys
as ``repro run`` / library sweeps — the broker and the shared memo store
dedup across the service boundary.  ``iter_results`` streams finished
points back as plain JSON-able dicts (coords + outcome fields), following
the sweep live with ``follow=True``.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import time
from typing import Any, Dict, Iterator, Optional

from ..eval.harness import HarnessConfig
from ..eval.sweep import Grid, Sweep
from ..exec.jobs import JOB_TIERS, ExperimentJob, run_job
from ..exec.cache import MemoCache
from ..exec.keys import stable_key
from ..models import registered_models
from ..workloads import available_workload_kernels, workload
from .broker import Broker, SweepTicket, WorkItem

#: HarnessConfig fields a spec may sweep or pin: the scalar knobs.  The
#: structured ``platform``/``software`` sub-configs are not addressable from
#: a JSON spec (submit a library sweep for those).
CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(HarnessConfig)
    if f.name not in ("platform", "software"))

#: Axis names with fixed meanings in every expanded sweep.
RESERVED_AXES = ("model", "kernel")


class SpecError(ValueError):
    """A sweep spec failed validation; the message says which field."""


def _require_names(spec: Dict[str, Any], field: str, known,
                   what: str) -> list:
    values = spec.get(field)
    if (not isinstance(values, (list, tuple)) or not values
            or not all(isinstance(v, str) for v in values)):
        raise SpecError(f"spec[{field!r}] must be a non-empty list of "
                        f"{what} names")
    unknown = [v for v in values if v not in known]
    if unknown:
        raise SpecError(f"unknown {what}(s) {unknown!r}; "
                        f"available: {sorted(known)}")
    return list(values)


def expand_spec(spec: Dict[str, Any]) -> Sweep:
    """Validate a sweep spec and expand it into a :class:`Sweep`.

    Raises :class:`SpecError` with a field-level message on any problem —
    the service rejects bad specs at submit time, not on a worker.
    """
    if not isinstance(spec, dict):
        raise SpecError("a sweep spec must be a JSON object")
    known = {"label", "models", "kernels", "scale", "axes", "config",
             "tier", "num_threads"}
    stray = sorted(set(spec) - known)
    if stray:
        raise SpecError(f"unknown spec field(s) {stray!r}; "
                        f"expected a subset of {sorted(known)}")
    models = _require_names(spec, "models", registered_models(),
                            "execution model")
    kernels = _require_names(spec, "kernels", available_workload_kernels(),
                             "kernel")
    scale = spec.get("scale", "tiny")
    if not isinstance(scale, str):
        raise SpecError("spec['scale'] must be a string size class")
    tier = spec.get("tier", "auto")
    if tier not in JOB_TIERS:
        raise SpecError(f"spec['tier'] must be one of {JOB_TIERS}")
    num_threads = spec.get("num_threads", 1)
    if not isinstance(num_threads, int) or num_threads < 1:
        raise SpecError("spec['num_threads'] must be a positive integer")

    fixed = spec.get("config", {})
    if not isinstance(fixed, dict):
        raise SpecError("spec['config'] must be an object of "
                        "HarnessConfig fields")
    axes = spec.get("axes", {})
    if not isinstance(axes, dict):
        raise SpecError("spec['axes'] must be an object mapping axis "
                        "names to value lists")
    for name in RESERVED_AXES:
        if name in axes or name in fixed:
            raise SpecError(f"axis name {name!r} is reserved "
                            "(use 'models'/'kernels')")
    for source, names in (("config", fixed), ("axes", axes)):
        bad = sorted(set(names) - set(CONFIG_FIELDS))
        if bad:
            raise SpecError(f"spec[{source!r}] refers to unknown "
                            f"HarnessConfig field(s) {bad!r}; "
                            f"available: {sorted(CONFIG_FIELDS)}")
    clash = sorted(set(axes) & set(fixed))
    if clash:
        raise SpecError(f"field(s) {clash!r} appear in both 'axes' and "
                        "'config'; pin or sweep, not both")
    for name, values in axes.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(f"axis {name!r} must be a non-empty list")

    # Workloads are shared across axis combos: build each (kernel, scale)
    # spec once so every point of a kernel carries an identical workload
    # value (and therefore an identical cache key component).
    try:
        specs = {kernel: workload(kernel, scale=scale) for kernel in kernels}
    except (KeyError, ValueError) as exc:
        raise SpecError(f"could not build workloads at scale {scale!r}: "
                        f"{exc}") from exc

    def build(model: str, kernel: str, **combo: Any) -> ExperimentJob:
        config = HarnessConfig(**{**fixed, **combo})
        return ExperimentJob(model, specs[kernel], config,
                             num_threads=num_threads, tier=tier)

    grid = Grid(model=models, kernel=kernels, **axes)
    label = spec.get("label") or "sweep"
    if not isinstance(label, str):
        raise SpecError("spec['label'] must be a string")
    try:
        return grid.sweep(build, label=label)
    except TypeError as exc:
        raise SpecError(f"invalid configuration value: {exc}") from exc


def canonical_spec(spec: Dict[str, Any]) -> str:
    """The stored (and displayed) form of a spec: sorted, compact JSON."""
    return json.dumps(spec, sort_keys=True, separators=(", ", ": "))


def submit_sweep(broker: Broker, spec: Dict[str, Any],
                 memo: Optional[MemoCache] = None,
                 results: Optional[Any] = None) -> SweepTicket:
    """Expand a spec and enqueue it; returns the broker's ticket.

    Keys are ``stable_key(run_job, job)`` — identical to what an in-process
    :class:`~repro.exec.runner.SweepRunner` computes for the same point, so
    the fleet memo store serves submissions and library runs alike.  With a
    ``results`` store (:class:`~repro.store.ResultsStore`), points any past
    run persisted under the current package version are adopted as done at
    enqueue time, alongside the memo consult.
    """
    sweep = expand_spec(spec)
    items = []
    for position, point in enumerate(sweep.points):
        items.append(WorkItem(
            key=stable_key(run_job, point.job),
            payload=pickle.dumps((run_job, point.job),
                                 protocol=pickle.HIGHEST_PROTOCOL),
            meta={"position": position, "coords": dict(point.coords)}))
    return broker.create_sweep(
        items, label=sweep.label or "sweep", spec=canonical_spec(spec),
        memo=memo, **({} if results is None else {"results": results}))


def sweep_status(broker: Broker, sweep_id: str) -> Dict[str, Any]:
    """The broker's status record for one sweep (KeyError if unknown)."""
    return broker.status(sweep_id)


def _jsonable_outcome(value: Any) -> Any:
    """Outcome -> JSON-able: dataclasses expand, exotic values stringify."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


#: Positions materialized per ``fetch_results`` call inside
#: :func:`iter_results`.  Fetching a sweep's finished rows in bounded
#: chunks keeps at most this many unpickled values alive at once, however
#: large the sweep — the streaming front-end never holds the whole sweep.
FETCH_CHUNK = 256


def iter_results(broker: Broker, sweep_id: str, *, follow: bool = False,
                 poll_interval: float = 0.2,
                 timeout: Optional[float] = None
                 ) -> Iterator[Dict[str, Any]]:
    """Yield finished points of a sweep as JSON-able dicts.

    Without ``follow``, yields whatever is finished right now and returns.
    With ``follow``, polls until every job reaches a terminal state,
    yielding each point once as it finishes (position order within each
    poll).  ``timeout`` bounds the follow in seconds (TimeoutError).

    Values are materialized lazily, :data:`FETCH_CHUNK` positions at a
    time, so following a large sweep streams in bounded memory instead of
    unpickling every result row up front.
    """
    deadline = (time.monotonic() + timeout) if timeout is not None else None
    seen: set = set()
    while True:
        status = broker.status(sweep_id)      # KeyError for unknown sweeps
        fresh = sorted(set(broker.finished_positions(sweep_id)) - seen)
        for start in range(0, len(fresh), FETCH_CHUNK):
            chunk = fresh[start:start + FETCH_CHUNK]
            for job in broker.fetch_results(sweep_id, positions=chunk):
                seen.add(job.position)
                record: Dict[str, Any] = {
                    "position": job.position,
                    "state": job.state,
                    "coords": (job.meta or {}).get("coords"),
                    "key": job.key,
                }
                if job.state == "done":
                    record["outcome"] = _jsonable_outcome(job.value)
                else:
                    record["error"] = job.error
                if job.worker is not None:
                    record["worker"] = job.worker
                yield record
        if not follow or (status["finished"] and len(seen) >= status["total"]):
            return
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"sweep {sweep_id} still running after {timeout}s "
                f"({len(seen)}/{status['total']} jobs finished)")
        if not fresh:
            time.sleep(poll_interval)
