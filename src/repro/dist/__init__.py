"""Distributed sweep execution: broker, workers, runner, service front-end.

The distributed tier moves sweep execution from one process's pool to a
fleet coordinated through a shared work queue, without changing any caller:

* :mod:`~repro.dist.broker` — the :class:`Broker` protocol, the
  :class:`SQLiteBroker` reference implementation (leases, bounded retries,
  exponential backoff, idempotent per-key completion, enqueue-time memo
  consult), and :func:`connect_broker`, the broker-URL front door
  (``sqlite:///path`` / bare path / ``http://host:port``; third-party
  backends plug in with :func:`register_broker_scheme`),
* :mod:`~repro.dist.blobs` — the :class:`BlobStore` payload/value transport
  seam (content-addressed, SHA-256),
* :mod:`~repro.dist.wire` — the versioned JSON wire format the HTTP
  backend speaks,
* :mod:`~repro.dist.http` — :class:`BrokerServer` (``repro broker serve``)
  and the :class:`HTTPBroker` client: the fleet without a shared
  filesystem,
* :mod:`~repro.dist.worker` — the claim-lease-run-report loop behind
  ``repro worker``, with lease heartbeats,
* :mod:`~repro.dist.runner` — :class:`DistributedRunner`, a
  :class:`~repro.exec.runner.SweepRunner` drop-in for the ``runner=`` seam,
* :mod:`~repro.dist.service` — the JSON submit/status/results layer behind
  ``repro sweep``.
"""

from .blobs import BlobStore, DirBlobStore, MemoryBlobStore
from .broker import (Broker, ClaimedJob, JobResult, SQLiteBroker, SweepTicket,
                     WorkItem, broker_schemes, connect_broker,
                     register_broker_scheme)
from .http import (BrokerServer, BrokerUnavailable, HTTPBlobStore, HTTPBroker)
from .runner import DistributedJobError, DistributedRunner
from .service import (SpecError, expand_spec, iter_results, submit_sweep,
                      sweep_status)
from .wire import WIRE_VERSION, WireError, WireVersionError
from .worker import Worker, worker_main

__all__ = [
    "Broker", "SQLiteBroker", "WorkItem", "SweepTicket", "ClaimedJob",
    "JobResult", "Worker", "worker_main", "DistributedRunner",
    "DistributedJobError", "SpecError", "expand_spec", "submit_sweep",
    "sweep_status", "iter_results", "connect_broker",
    "register_broker_scheme", "broker_schemes", "BlobStore", "DirBlobStore",
    "MemoryBlobStore", "BrokerServer", "HTTPBroker", "HTTPBlobStore",
    "BrokerUnavailable", "WireError", "WireVersionError", "WIRE_VERSION",
]
