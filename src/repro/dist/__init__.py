"""Distributed sweep execution: broker, workers, runner, service front-end.

The distributed tier moves sweep execution from one process's pool to a
fleet coordinated through a shared work queue, without changing any caller:

* :mod:`~repro.dist.broker` — the :class:`Broker` protocol and the
  :class:`SQLiteBroker` reference implementation (leases, bounded retries,
  exponential backoff, idempotent per-key completion, enqueue-time memo
  consult),
* :mod:`~repro.dist.worker` — the claim-lease-run-report loop behind
  ``repro worker``, with lease heartbeats,
* :mod:`~repro.dist.runner` — :class:`DistributedRunner`, a
  :class:`~repro.exec.runner.SweepRunner` drop-in for the ``runner=`` seam,
* :mod:`~repro.dist.service` — the JSON submit/status/results layer behind
  ``repro sweep``.
"""

from .broker import (Broker, ClaimedJob, JobResult, SQLiteBroker, SweepTicket,
                     WorkItem)
from .runner import DistributedJobError, DistributedRunner
from .service import (SpecError, expand_spec, iter_results, submit_sweep,
                      sweep_status)
from .worker import Worker, worker_main

__all__ = [
    "Broker", "SQLiteBroker", "WorkItem", "SweepTicket", "ClaimedJob",
    "JobResult", "Worker", "worker_main", "DistributedRunner",
    "DistributedJobError", "SpecError", "expand_spec", "submit_sweep",
    "sweep_status", "iter_results",
]
