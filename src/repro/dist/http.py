"""HTTP broker backend: the fleet without a shared filesystem.

Two halves, both speaking :mod:`repro.dist.wire`:

* :class:`BrokerServer` — a stdlib ``ThreadingHTTPServer`` wrapping any
  :class:`~repro.dist.broker.Broker` (in practice the
  :class:`~repro.dist.broker.SQLiteBroker`, whose lease/retry/idempotency
  machinery is reused wholesale, never re-implemented here).  Exposed from
  the CLI as ``repro broker serve --db sweeps.db --port N``.
* :class:`HTTPBroker` — a client satisfying the same runtime-checkable
  ``Broker`` protocol, so :class:`~repro.dist.worker.Worker`,
  :class:`~repro.dist.runner.DistributedRunner` and the ``repro sweep``
  front-end work over the network unchanged.

The server treats payloads and result values as opaque bytes end to end —
it never unpickles them, so workers may run functions whose modules the
server cannot import.  Bytes above the inline limit travel through the
server's :class:`~repro.dist.blobs.BlobStore` via content-addressed
``GET``/``PUT /v1/blobs/<digest>`` endpoints; :class:`HTTPBlobStore` is the
client-side view of that store.

Transient transport failures (connection refused/reset, timeouts, 5xx) are
retried client-side with exponential backoff; after ``retries`` attempts a
:class:`BrokerUnavailable` (a ``ConnectionError``) surfaces.  Wire-level
rejections are terminal and typed: 400 → :class:`~repro.dist.wire.WireError`
naming the bad field, 404 unknown-sweep → :class:`KeyError` (matching
``SQLiteBroker``), 409 → :class:`~repro.dist.wire.WireVersionError`.
"""

from __future__ import annotations

import json
import pickle
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from . import wire
from .blobs import (DEFAULT_INLINE_LIMIT, BlobStore, MemoryBlobStore,
                    blob_digest, valid_digest)
from .broker import (Broker, ClaimedJob, JobResult, SweepTicket, WorkItem)

#: Hard cap on a single request body; oversized posts get HTTP 413 without
#: being read.  Configurable per server for tests and tight deployments.
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024


class BrokerUnavailable(ConnectionError):
    """The broker endpoint stayed unreachable through every retry."""


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------
class _BrokerAPI:
    """Wire-method dispatch table over a wrapped :class:`Broker`.

    Each public method takes validated-on-entry ``params`` (a dict from the
    request envelope) and returns the JSON-able ``result``.  Validation
    errors raise :class:`~repro.dist.wire.WireError`; unknown sweeps raise
    :class:`KeyError`; both are mapped to HTTP statuses by the handler.
    """

    def __init__(self, broker: Broker, blobs: BlobStore, *,
                 memo=None, results=None,
                 inline_limit: int = DEFAULT_INLINE_LIMIT) -> None:
        self.broker = broker
        self.blobs = blobs
        self.memo = memo
        self.results = results
        self.inline_limit = inline_limit

    def create_sweep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        raw_items = wire.get_field(params, "items", (list,))
        items = [wire.decode_work_item(obj, self.blobs) for obj in raw_items]
        label = wire.get_field(params, "label", (str,), required=False,
                               default="sweep")
        spec = wire.get_field(params, "spec", (str,), required=False)
        # memo/results are the *server's*: the fleet-wide dedup stores are
        # configured at serve time, not shipped over the wire per request.
        extra: Dict[str, Any] = {}
        if self.results is not None:
            extra["results"] = self.results
        ticket = self.broker.create_sweep(items, label=label, spec=spec,
                                          memo=self.memo, **extra)
        return {"ticket": wire.encode_ticket(ticket)}

    def claim(self, params: Dict[str, Any]) -> Dict[str, Any]:
        worker = wire.get_field(params, "worker", (str,))
        lease = wire.get_field(params, "lease_seconds", (int, float),
                               required=False)
        job = self.broker.claim(worker, lease_seconds=lease)
        if job is None:
            return {"job": None}
        return {"job": wire.encode_claim(job, self.blobs, self.inline_limit)}

    def _decode_claim_stub(self, params: Dict[str, Any]) -> ClaimedJob:
        # heartbeat/fail only need identity fields (sweep, position,
        # attempts); the payload never travels back to the server.
        return ClaimedJob(
            sweep_id=wire.get_field(params, "sweep_id", (str,)),
            position=wire.get_field(params, "position", (int,)),
            key=wire.get_field(params, "key", (str,)),
            payload=b"",
            attempts=wire.get_field(params, "attempts", (int,)),
            lease_expiry=0.0)

    def heartbeat(self, params: Dict[str, Any]) -> Dict[str, Any]:
        claim = self._decode_claim_stub(params)
        lease = wire.get_field(params, "lease_seconds", (int, float),
                               required=False)
        alive = self.broker.heartbeat(claim, lease_seconds=lease)
        return {"alive": bool(alive)}

    def complete(self, params: Dict[str, Any]) -> Dict[str, Any]:
        key = wire.get_field(params, "key", (str,))
        worker = wire.get_field(params, "worker", (str,), required=False)
        payload = wire.unpack_blob(wire.get_field(params, "value", (dict,)),
                                   self.blobs, field="value")
        complete_bytes = getattr(self.broker, "complete_bytes", None)
        if complete_bytes is not None:
            recorded = complete_bytes(key, payload, worker=worker)
        else:
            # Fallback for third-party brokers without the byte-level hook;
            # requires the value's classes to be importable server-side.
            recorded = self.broker.complete(key, pickle.loads(payload),
                                            worker=worker)
        return {"recorded": bool(recorded)}

    def fail(self, params: Dict[str, Any]) -> Dict[str, Any]:
        claim = self._decode_claim_stub(params)
        error = wire.get_field(params, "error", (str,))
        transient = wire.get_field(params, "transient", (bool,),
                                   required=False, default=False)
        self.broker.fail(claim, error, transient=transient)
        return {"ok": True}

    def cancel(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sweep_id = wire.get_field(params, "sweep_id", (str,))
        return {"cancelled": self.broker.cancel(sweep_id)}

    def status(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sweep_id = wire.get_field(params, "sweep_id", (str,))
        return {"status": self.broker.status(sweep_id)}

    def sweeps(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"sweeps": self.broker.sweeps()}

    def finished_positions(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sweep_id = wire.get_field(params, "sweep_id", (str,))
        finished = self.broker.finished_positions(sweep_id)
        # JSON object keys are strings; the client converts back to int.
        return {"positions": {str(pos): state
                              for pos, state in finished.items()}}

    def retries(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sweep_id = wire.get_field(params, "sweep_id", (str,))
        return {"retries": self.broker.retries(sweep_id)}

    def fetch_results(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sweep_id = wire.get_field(params, "sweep_id", (str,))
        positions = wire.decode_positions(params)
        values = wire.get_field(params, "values", (bool,), required=False,
                                default=True)
        rows = self._result_rows(sweep_id, positions, values)
        encoded = [wire.encode_result_row(*row, store=self.blobs,
                                          inline_limit=self.inline_limit)
                   for row in rows]
        return {"results": encoded}

    def _result_rows(self, sweep_id: str, positions: Optional[List[int]],
                     values: bool) -> Iterable[Tuple]:
        fetch_rows = getattr(self.broker, "fetch_result_rows", None)
        if fetch_rows is not None:
            # Raw byte passthrough: value pickles are relayed verbatim,
            # never loaded into server objects.
            return fetch_rows(sweep_id, positions=positions, values=values)
        rows = []
        for res in self.broker.fetch_results(sweep_id, positions=positions):
            payload = None
            if values and res.state == "done":
                payload = pickle.dumps(res.value,
                                       protocol=pickle.HIGHEST_PROTOCOL)
            rows.append((res.position, res.key, res.state, res.meta,
                         res.error, res.worker, payload))
        return rows


def _error_body(kind: str, message: str,
                field: Optional[str] = None) -> Dict[str, Any]:
    error: Dict[str, Any] = {"type": kind, "message": message}
    if field is not None:
        error["field"] = field
    return {"version": wire.WIRE_VERSION, "error": error}


class _BrokerRequestHandler(BaseHTTPRequestHandler):
    # HTTP/1.1 keeps worker connections alive between claims and makes
    # Content-Length mandatory on our side, which we always set.
    protocol_version = "HTTP/1.1"
    server_version = "repro-broker"

    def log_message(self, fmt: str, *args: Any) -> None:
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    # -- plumbing ----------------------------------------------------------
    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, status: int, kind: str, message: str,
                    field: Optional[str] = None) -> None:
        self._send_json(status, _error_body(kind, message, field))

    def _read_body(self) -> Optional[bytes]:
        """Request body, or ``None`` after replying 413 for oversized ones."""
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.server.max_request_bytes:
            self._send_error(
                413, "oversized-request",
                f"request body of {length} bytes exceeds the server cap of "
                f"{self.server.max_request_bytes} bytes")
            # The oversized body was never read; the connection is unusable.
            self.close_connection = True
            return None
        return self.rfile.read(length)

    def _blob_digest_from_path(self) -> Optional[str]:
        prefix = "/v1/blobs/"
        if not self.path.startswith(prefix):
            return None
        return self.path[len(prefix):]

    # -- control plane -----------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if not self.path.startswith("/v1/"):
            self._send_error(404, "unknown-method",
                             f"no such endpoint {self.path!r}")
            return
        method = self.path[len("/v1/"):]
        handler = getattr(self.server.api, method, None)
        if method.startswith("_") or handler is None:
            self._send_error(404, "unknown-method",
                             f"no such broker method {method!r}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            message = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_error(400, "malformed-request",
                             "request body is not valid JSON")
            return
        try:
            wire.check_version(message)
        except wire.WireVersionError as exc:
            self._send_error(409, "wire-version-mismatch", str(exc))
            return
        params = message.get("params")
        if not isinstance(params, dict):
            self._send_error(400, "wire-error",
                             "wire field 'params' must be an object",
                             field="params")
            return
        try:
            result = handler(params)
        except wire.WireError as exc:
            self._send_error(400, "wire-error", str(exc), field=exc.field)
        except KeyError as exc:
            self._send_error(404, "unknown-sweep", str(exc.args[0]) if
                             exc.args else "unknown sweep")
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(500, "internal-error",
                             f"{type(exc).__name__}: {exc}")
        else:
            self._send_json(200, {"version": wire.WIRE_VERSION,
                                  "result": result})

    # -- blob plane --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/v1/ping":
            broker = self.server.api.broker
            self._send_json(200, {
                "version": wire.WIRE_VERSION,
                "result": {"service": "repro-broker",
                           "wire_version": wire.WIRE_VERSION,
                           "lease_seconds": float(getattr(
                               broker, "lease_seconds", 30.0))}})
            return
        digest = self._blob_digest_from_path()
        if digest is None:
            self._send_error(404, "unknown-method",
                             f"no such endpoint {self.path!r}")
            return
        try:
            data = self.server.api.blobs.get(digest)
        except KeyError:
            self._send_error(404, "unknown-blob",
                             f"no blob {digest!r} on this server")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_HEAD(self) -> None:  # noqa: N802
        digest = self._blob_digest_from_path()
        known = digest is not None and digest in self.server.api.blobs
        self.send_response(200 if known else 404)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_PUT(self) -> None:  # noqa: N802
        digest = self._blob_digest_from_path()
        if digest is None:
            self._send_error(404, "unknown-method",
                             f"no such endpoint {self.path!r}")
            return
        if not valid_digest(digest):
            self._send_error(400, "wire-error",
                             f"malformed blob digest {digest!r}",
                             field="digest")
            return
        body = self._read_body()
        if body is None:
            return
        if blob_digest(body) != digest:
            self._send_error(
                400, "digest-mismatch",
                f"body hashes to {blob_digest(body)[:12]}…, not the "
                f"addressed {digest[:12]}…")
            return
        self.server.api.blobs.put(body)
        self._send_json(200, {"version": wire.WIRE_VERSION,
                              "result": {"blob": digest, "size": len(body)}})


class BrokerServer:
    """A wire-speaking HTTP front for any :class:`Broker`.

    >>> server = BrokerServer(SQLiteBroker("sweeps.db")).start()
    >>> server.url
    'http://127.0.0.1:49301'

    ``port=0`` (the default) picks a free port — read it back from
    ``.url``.  ``start()`` serves from a daemon thread and returns the
    server; ``serve_forever()`` blocks (the CLI path).  Always ``close()``.
    """

    def __init__(self, broker: Broker, host: str = "127.0.0.1",
                 port: int = 0, *, blobs: Optional[BlobStore] = None,
                 memo=None, results=None,
                 inline_limit: int = DEFAULT_INLINE_LIMIT,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
                 quiet: bool = True) -> None:
        self.broker = broker
        self.blobs = blobs if blobs is not None else MemoryBlobStore()
        self.api = _BrokerAPI(broker, self.blobs, memo=memo, results=results,
                              inline_limit=inline_limit)
        self._httpd = ThreadingHTTPServer((host, port),
                                          _BrokerRequestHandler)
        self._httpd.daemon_threads = True
        self._httpd.api = self.api
        self._httpd.max_request_bytes = max_request_bytes
        self._httpd.quiet = quiet
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "BrokerServer":
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-broker-server",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------
_TRANSIENT_EXCS = (urllib.error.URLError, ConnectionError, socket.timeout,
                   TimeoutError)


class _Transport:
    """Shared retry/backoff plumbing for control and blob requests."""

    def __init__(self, base_url: str, *, timeout: float, retries: int,
                 backoff_seconds: float) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(1, int(retries))
        self.backoff_seconds = backoff_seconds

    def request(self, method: str, path: str, body: Optional[bytes] = None,
                headers: Optional[Dict[str, str]] = None
                ) -> Tuple[int, bytes]:
        """One HTTP exchange with retries; returns ``(status, body)``.

        4xx responses return normally (the caller interprets them); 5xx and
        transport-level failures are retried with exponential backoff and
        finally raised as :class:`BrokerUnavailable`.
        """
        url = f"{self.base_url}{path}"
        delay = self.backoff_seconds
        last: Optional[BaseException] = None
        for attempt in range(self.retries):
            if attempt:
                time.sleep(delay)
                delay *= 2
            req = urllib.request.Request(url, data=body, method=method,
                                         headers=headers or {})
            try:
                with urllib.request.urlopen(req, timeout=self.timeout) as rsp:
                    return rsp.status, rsp.read()
            except urllib.error.HTTPError as exc:
                payload = exc.read()
                if exc.code >= 500:
                    last = exc
                    continue
                return exc.code, payload
            except _TRANSIENT_EXCS as exc:
                last = exc
                continue
        raise BrokerUnavailable(
            f"broker at {self.base_url} unavailable after "
            f"{self.retries} attempt(s): {last}")


class HTTPBlobStore:
    """Client half of the server's ``/v1/blobs/<digest>`` endpoints."""

    def __init__(self, transport: _Transport) -> None:
        self._transport = transport

    def put(self, data: bytes) -> str:
        digest = blob_digest(data)
        status, body = self._transport.request(
            "PUT", f"/v1/blobs/{digest}", body=data,
            headers={"Content-Type": "application/octet-stream"})
        if status != 200:
            raise _decoded_error(status, body)
        return digest

    def get(self, digest: str) -> bytes:
        status, body = self._transport.request("GET", f"/v1/blobs/{digest}")
        if status == 404:
            raise KeyError(f"unknown blob {digest!r}")
        if status != 200:
            raise _decoded_error(status, body)
        if blob_digest(body) != digest:
            raise wire.WireError(
                "blob", f"bytes for {digest[:12]}… failed digest check")
        return body

    def __contains__(self, digest: str) -> bool:
        status, _ = self._transport.request("HEAD", f"/v1/blobs/{digest}")
        return status == 200


def _decoded_error(status: int, body: bytes) -> Exception:
    """Map an error response body to the typed exception it stands for."""
    try:
        message = json.loads(body.decode("utf-8"))
        error = message.get("error") or {}
        kind = error.get("type", "")
        text = error.get("message", "")
    except (ValueError, UnicodeDecodeError, AttributeError):
        kind, text = "", body.decode("utf-8", "replace")[:200]
    if kind == "wire-version-mismatch" or status == 409:
        return wire.WireVersionError(found=text or "unknown")
    if kind == "unknown-sweep":
        return KeyError(text or "unknown sweep")
    if kind in ("wire-error", "digest-mismatch", "oversized-request",
                "malformed-request"):
        exc = wire.WireError(error.get("field", kind), "was rejected")
        exc.args = (text or exc.args[0],)
        return exc
    return RuntimeError(
        f"broker rejected request with HTTP {status}: {text or kind}")


class HTTPBroker:
    """Network :class:`Broker`: same protocol, no shared filesystem.

    ``lease_seconds`` defaults to the *server's* configured lease (fetched
    lazily from ``/v1/ping``), so a fleet inherits one coherent lease policy
    from the broker it connects to.

    The ``memo``/``results`` arguments of :meth:`create_sweep` are accepted
    for protocol compatibility but ignored: fleet-wide dedup stores are
    attached to the *server* (``repro broker serve --cache-dir/--results``),
    because client-side store handles are local file paths that mean nothing
    across the network.  Local pre-submit memo consultation still happens in
    :class:`~repro.dist.runner.DistributedRunner` before items are enqueued.
    """

    def __init__(self, url: str, *, lease_seconds: Optional[float] = None,
                 timeout: float = 30.0, retries: int = 5,
                 backoff_seconds: float = 0.2,
                 inline_limit: int = DEFAULT_INLINE_LIMIT) -> None:
        self.url = url.rstrip("/")
        self._transport = _Transport(self.url, timeout=timeout,
                                     retries=retries,
                                     backoff_seconds=backoff_seconds)
        self.blobs = HTTPBlobStore(self._transport)
        self.inline_limit = inline_limit
        self._lease_seconds = lease_seconds

    # -- wire plumbing -----------------------------------------------------
    def _call(self, method: str, params: Dict[str, Any]) -> Dict[str, Any]:
        body = json.dumps({"version": wire.WIRE_VERSION,
                           "params": params}).encode("utf-8")
        status, payload = self._transport.request(
            "POST", f"/v1/{method}", body=body,
            headers={"Content-Type": "application/json"})
        if status != 200:
            raise _decoded_error(status, payload)
        message = json.loads(payload.decode("utf-8"))
        wire.check_version(message)
        return message["result"]

    def ping(self) -> Dict[str, Any]:
        """Server liveness + identity (wire version, lease policy)."""
        status, payload = self._transport.request("GET", "/v1/ping")
        if status != 200:
            raise _decoded_error(status, payload)
        message = json.loads(payload.decode("utf-8"))
        wire.check_version(message)
        return message["result"]

    @property
    def lease_seconds(self) -> float:
        if self._lease_seconds is None:
            self._lease_seconds = float(self.ping()["lease_seconds"])
        return self._lease_seconds

    def close(self) -> None:
        """No persistent connections to tear down; present for symmetry."""

    # -- Broker protocol ---------------------------------------------------
    def create_sweep(self, items: Sequence[WorkItem], label: str = "sweep",
                     spec: Optional[str] = None, memo=None,
                     results=None) -> SweepTicket:
        del memo, results  # server-side stores apply; see class docstring
        encoded = [wire.encode_work_item(item, self.blobs, self.inline_limit)
                   for item in items]
        result = self._call("create_sweep", {"items": encoded,
                                             "label": label, "spec": spec})
        return wire.decode_ticket(
            wire.get_field(result, "ticket", (dict,)))

    def claim(self, worker: str,
              lease_seconds: Optional[float] = None) -> Optional[ClaimedJob]:
        result = self._call("claim", {"worker": worker,
                                      "lease_seconds": lease_seconds})
        job = result.get("job")
        if job is None:
            return None
        return wire.decode_claim(job, self.blobs)

    def heartbeat(self, claim: ClaimedJob,
                  lease_seconds: Optional[float] = None) -> bool:
        result = self._call("heartbeat", {
            "sweep_id": claim.sweep_id, "position": claim.position,
            "key": claim.key, "attempts": claim.attempts,
            "lease_seconds": lease_seconds})
        return bool(result.get("alive"))

    def complete(self, key: str, value: Any,
                 worker: Optional[str] = None) -> bool:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        result = self._call("complete", {
            "key": key, "worker": worker,
            "value": wire.pack_blob(payload, self.blobs, self.inline_limit)})
        return bool(result.get("recorded"))

    def fail(self, claim: ClaimedJob, error: str,
             transient: bool = False) -> None:
        self._call("fail", {
            "sweep_id": claim.sweep_id, "position": claim.position,
            "key": claim.key, "attempts": claim.attempts,
            "error": error, "transient": transient})

    def cancel(self, sweep_id: str) -> int:
        result = self._call("cancel", {"sweep_id": sweep_id})
        return int(result.get("cancelled", 0))

    def status(self, sweep_id: str) -> Dict[str, Any]:
        return self._call("status", {"sweep_id": sweep_id})["status"]

    def sweeps(self) -> List[Dict[str, Any]]:
        return self._call("sweeps", {})["sweeps"]

    def finished_positions(self, sweep_id: str) -> Dict[int, str]:
        result = self._call("finished_positions", {"sweep_id": sweep_id})
        return {int(pos): state
                for pos, state in result["positions"].items()}

    def retries(self, sweep_id: str) -> int:
        return int(self._call("retries", {"sweep_id": sweep_id})["retries"])

    def fetch_results(self, sweep_id: str,
                      positions: Optional[Sequence[int]] = None, *,
                      values: bool = True) -> List[JobResult]:
        params: Dict[str, Any] = {"sweep_id": sweep_id, "values": values}
        if positions is not None:
            params["positions"] = [int(p) for p in positions]
        rows = self._call("fetch_results", params)["results"]
        return [wire.decode_result_row(obj, self.blobs) for obj in rows]
