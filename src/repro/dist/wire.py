"""Versioned JSON wire format for broker control messages.

The HTTP backend (:mod:`repro.dist.http`) does not invent a protocol of its
own — it speaks *this* module: one schema version, one envelope shape, one
blob encoding, shared by the client and the server so the contract lives in
exactly one place.

Envelope::

    request   POST /v1/<method>
              {"version": 1, "params": {...}}
    response  200
              {"version": 1, "result": ...}
    error     4xx/5xx
              {"version": 1, "error": {"type": "...", "message": "...",
                                       "field": "..."?}}

Control methods mirror the :class:`~repro.dist.broker.Broker` protocol:
``create_sweep``, ``claim``, ``heartbeat``, ``complete``, ``fail``,
``cancel``, ``status``, ``sweeps``, ``finished_positions``,
``fetch_results``, ``retries``.

Payloads and result values are opaque byte strings; on the wire they are a
*blob object*: ``{"inline": "<base64>"}`` for small blobs, or
``{"blob": "<sha256>", "size": N}`` for large ones, where the bytes travel
separately through a :class:`~repro.dist.blobs.BlobStore` (content-addressed
``PUT``/``GET`` endpoints on the server).  ``DEFAULT_INLINE_LIMIT`` (in
:mod:`repro.dist.blobs`) decides the split.

Validation is field-level, mirroring the service layer's
:class:`~repro.dist.service.SpecError`: a malformed message raises
:class:`WireError` naming the offending field, which the server maps to a
400 response carrying the same field name — submitters learn *what* was
wrong, not just that something was.  A peer speaking a different schema
version raises :class:`WireVersionError` (the
:class:`~repro.store.SchemaMismatchError`-style guard: fail loudly, never
guess).

Retry semantics note: ``complete``/``heartbeat``/``fail``/``cancel`` are
idempotent at the broker, so clients may retry them blindly on transient
transport failures.  ``create_sweep`` is not — a retried enqueue whose
first attempt actually landed creates a second sweep (its jobs still dedup
per key, so no work is repeated; only the ticket differs).
"""

from __future__ import annotations

import base64
import binascii
import pickle
from typing import Any, Dict, List, Optional, Tuple

from .blobs import DEFAULT_INLINE_LIMIT, BlobStore
from .broker import ClaimedJob, JobResult, SweepTicket, WorkItem

#: Bump on any incompatible change to the message shapes above.  Client and
#: server both refuse mismatched peers (WireVersionError / HTTP 409).
WIRE_VERSION = 1

#: Job states a finished-row message may carry.
_RESULT_STATES = ("done", "failed", "cancelled")


class WireError(ValueError):
    """A wire message failed validation; ``field`` names the culprit."""

    def __init__(self, field: str, problem: str) -> None:
        self.field = field
        super().__init__(f"wire field {field!r} {problem}")


class WireVersionError(RuntimeError):
    """Peer speaks a different wire schema version; upgrade the older side."""

    def __init__(self, found: Any, expected: int = WIRE_VERSION) -> None:
        self.found = found
        self.expected = expected
        super().__init__(
            f"wire schema version mismatch: peer speaks {found!r}, this "
            f"build speaks {expected} — upgrade the older side")


def check_version(message: Any) -> None:
    """Raise :class:`WireVersionError` unless ``message`` carries ours."""
    found = message.get("version") if isinstance(message, dict) else None
    if found != WIRE_VERSION:
        raise WireVersionError(found)


_TYPE_NAMES = {str: "a string", int: "an integer", float: "a number",
               bool: "a boolean", dict: "an object", list: "an array"}


def get_field(params: Any, name: str, kinds: Tuple[type, ...], *,
              required: bool = True, default: Any = None) -> Any:
    """Validated field access: raises :class:`WireError` naming ``name``.

    ``None``-valued fields count as absent (JSON ``null``), and booleans
    never satisfy an integer/number requirement (``True`` is not a lease
    duration).
    """
    if not isinstance(params, dict):
        raise WireError(name, "must live in an object")
    value = params.get(name)
    if value is None:
        if required:
            raise WireError(name, "is required")
        return default
    if isinstance(value, bool) and bool not in kinds:
        raise WireError(name, "must not be a boolean")
    if not isinstance(value, kinds):
        wanted = " or ".join(_TYPE_NAMES.get(kind, kind.__name__)
                             for kind in kinds)
        raise WireError(name, f"must be {wanted}")
    return value


# ---------------------------------------------------------------------------
# Blob objects: how opaque bytes travel
# ---------------------------------------------------------------------------
def pack_blob(data: bytes, store: Optional[BlobStore] = None,
              inline_limit: int = DEFAULT_INLINE_LIMIT) -> Dict[str, Any]:
    """Bytes -> wire blob object (inline base64, or a blob-store ref)."""
    if store is None or len(data) <= inline_limit:
        return {"inline": base64.b64encode(data).decode("ascii")}
    return {"blob": store.put(data), "size": len(data)}


def unpack_blob(obj: Any, store: Optional[BlobStore] = None,
                field: str = "payload") -> bytes:
    """Wire blob object -> bytes (fetching referenced blobs from ``store``)."""
    if not isinstance(obj, dict):
        raise WireError(field, "must be a blob object")
    if "inline" in obj:
        text = get_field(obj, "inline", (str,))
        try:
            return base64.b64decode(text.encode("ascii"), validate=True)
        except (ValueError, binascii.Error):
            raise WireError(field, "carries invalid base64") from None
    if "blob" in obj:
        digest = get_field(obj, "blob", (str,))
        if store is None:
            raise WireError(field, "references a blob but no blob store "
                                   "is attached")
        try:
            return store.get(digest)
        except KeyError:
            raise WireError(
                field, f"references unknown blob {digest[:12]}…") from None
    raise WireError(field, "must carry 'inline' or 'blob'")


# ---------------------------------------------------------------------------
# Message bodies: broker dataclasses <-> JSON-able dicts
# ---------------------------------------------------------------------------
def encode_work_item(item: WorkItem, store: Optional[BlobStore] = None,
                     inline_limit: int = DEFAULT_INLINE_LIMIT
                     ) -> Dict[str, Any]:
    return {"key": item.key,
            "payload": pack_blob(item.payload, store, inline_limit),
            "meta": item.meta}


def decode_work_item(obj: Any, store: Optional[BlobStore] = None) -> WorkItem:
    return WorkItem(
        key=get_field(obj, "key", (str,)),
        payload=unpack_blob(get_field(obj, "payload", (dict,)), store),
        meta=get_field(obj, "meta", (dict,), required=False))


def encode_ticket(ticket: SweepTicket) -> Dict[str, Any]:
    return {"sweep_id": ticket.sweep_id, "total": ticket.total,
            "already_done": ticket.already_done,
            "done_keys": sorted(ticket.done_keys)}


def decode_ticket(obj: Any) -> SweepTicket:
    keys = get_field(obj, "done_keys", (list,), required=False, default=[])
    if not all(isinstance(key, str) for key in keys):
        raise WireError("done_keys", "must be an array of strings")
    return SweepTicket(
        sweep_id=get_field(obj, "sweep_id", (str,)),
        total=get_field(obj, "total", (int,)),
        already_done=get_field(obj, "already_done", (int,)),
        done_keys=frozenset(keys))


def encode_claim(claim: ClaimedJob, store: Optional[BlobStore] = None,
                 inline_limit: int = DEFAULT_INLINE_LIMIT) -> Dict[str, Any]:
    return {"sweep_id": claim.sweep_id, "position": claim.position,
            "key": claim.key,
            "payload": pack_blob(claim.payload, store, inline_limit),
            "attempts": claim.attempts, "lease_expiry": claim.lease_expiry}


def decode_claim(obj: Any, store: Optional[BlobStore] = None) -> ClaimedJob:
    return ClaimedJob(
        sweep_id=get_field(obj, "sweep_id", (str,)),
        position=get_field(obj, "position", (int,)),
        key=get_field(obj, "key", (str,)),
        payload=unpack_blob(get_field(obj, "payload", (dict,)), store),
        attempts=get_field(obj, "attempts", (int,)),
        lease_expiry=float(get_field(obj, "lease_expiry", (int, float))))


def encode_result_row(position: int, key: str, state: str,
                      meta: Optional[Dict[str, Any]], error: Optional[str],
                      worker: Optional[str], payload: Optional[bytes],
                      store: Optional[BlobStore] = None,
                      inline_limit: int = DEFAULT_INLINE_LIMIT
                      ) -> Dict[str, Any]:
    """One finished job row -> wire dict (``payload`` = raw value pickle).

    The server relays stored value bytes verbatim — it never unpickles
    results, so it needs none of the classes the values are made of.
    """
    record: Dict[str, Any] = {"position": position, "key": key,
                              "state": state, "meta": meta, "error": error,
                              "worker": worker}
    if payload is not None:
        record["value"] = pack_blob(payload, store, inline_limit)
    return record


def decode_result_row(obj: Any, store: Optional[BlobStore] = None
                      ) -> JobResult:
    """Wire dict -> :class:`JobResult`, unpickling the value client-side."""
    state = get_field(obj, "state", (str,))
    if state not in _RESULT_STATES:
        raise WireError("state", f"must be one of {_RESULT_STATES}")
    value = None
    if obj.get("value") is not None:
        value = pickle.loads(unpack_blob(obj["value"], store, field="value"))
    return JobResult(
        position=get_field(obj, "position", (int,)),
        key=get_field(obj, "key", (str,)),
        state=state,
        meta=get_field(obj, "meta", (dict,), required=False),
        error=get_field(obj, "error", (str,), required=False),
        value=value,
        worker=get_field(obj, "worker", (str,), required=False))


def decode_positions(obj: Any) -> Optional[List[int]]:
    """The optional ``positions`` filter of ``fetch_results``."""
    positions = get_field(obj, "positions", (list,), required=False)
    if positions is None:
        return None
    if not all(isinstance(p, int) and not isinstance(p, bool)
               for p in positions):
        raise WireError("positions", "must be an array of integers")
    return positions
