"""`DistributedRunner`: the fleet executor behind the ``runner=`` seam.

Drop-in for :class:`~repro.exec.runner.SweepRunner` — same ``map`` contract
(results in input order, bit-identical to the serial path), same memoization
key, same stats/timings surface — but the points are executed by a fleet of
workers coordinated through a :class:`~repro.dist.broker.Broker` instead of
an in-process pool.  Everything already threaded through the seam
(``explore(runner=)``, the experiments, ``compare(runner=)``) distributes
without modification.

Per ``map`` call the runner:

1. consults the local/shared :class:`~repro.exec.cache.MemoCache` and
   resolves hits immediately (exactly like ``SweepRunner``),
2. enqueues the remaining *unique* keys as one broker sweep (the broker
   consults the fleet memo store again — a point any worker ever computed
   anywhere is served from cache, never re-simulated),
3. optionally spawns local worker processes (``workers=N``); with
   ``workers=0`` it relies on externally started ``repro worker`` processes
   and/or its own **drain** loop (``drain=True``, the default), in which the
   calling process claims jobs itself between polls — so progress is
   guaranteed even with no fleet at all,
4. streams results back incrementally as workers report them
   (:meth:`map_stream` exposes the stream; :meth:`map` collects it), and
5. propagates the first job failure eagerly: the sweep is cancelled at the
   broker, spawned workers are stopped, and a
   :class:`DistributedJobError` is raised — mirroring the pool runner's
   eager-failure semantics.

Retries are the broker's job (lease expiry for crashed workers, exponential
backoff for transient failures); the runner merely accounts for them in
``stats.retries``.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..exec.cache import MemoCache
from ..exec.keys import stable_key
from ..exec.runner import SweepRunner
from .broker import Broker, WorkItem, connect_broker
from .worker import Worker, worker_main


class DistributedJobError(RuntimeError):
    """A fleet job failed permanently; the sweep was cancelled."""

    def __init__(self, position: int, key: str, error: Optional[str]):
        super().__init__(f"distributed job {position} failed: "
                         f"{error or 'cancelled'} (key {key[:12]}…)")
        self.position = position
        self.key = key
        self.error = error


class DistributedRunner(SweepRunner):
    """Evaluate sweep points on a broker-coordinated worker fleet.

    Parameters
    ----------
    broker:
        A :class:`~repro.dist.broker.Broker`, or a broker URL for
        :func:`~repro.dist.broker.connect_broker` — a bare SQLite path
        (created on first use), ``sqlite:///path``, or ``http://host:port``.
    workers:
        Local worker processes to spawn per ``map`` call (0 = rely on
        external workers and/or the drain loop).
    cache:
        The shared fleet memo store.  When disk-backed, spawned workers
        attach to the same directory, so the single-process cache becomes
        the fleet's memo tier.
    drain:
        When True (default), the calling process claims and runs jobs
        itself whenever a poll finds nothing new — guaranteeing progress
        with zero workers and soaking up stragglers.
    timeout:
        Overall per-``map`` ceiling in seconds (None = wait forever).
    results:
        An optional :class:`~repro.store.ResultsStore` — the same seam as
        :class:`~repro.exec.runner.SweepRunner`: every resolved point is
        appended, and the broker consults the store at enqueue time so a
        point any past run ever persisted is adopted without re-execution.
    """

    def __init__(self, broker: Union[Broker, str, os.PathLike],
                 *, workers: int = 0,
                 cache: Optional[MemoCache] = None,
                 drain: bool = True,
                 lease_seconds: Optional[float] = None,
                 poll_interval: float = 0.02,
                 timeout: Optional[float] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 results: Optional[Any] = None):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if isinstance(broker, (str, os.PathLike)):
            broker = connect_broker(broker, **(
                {} if lease_seconds is None else
                {"lease_seconds": lease_seconds}))
        super().__init__(jobs=1, cache=cache, progress=progress,
                         results=results)
        self.broker = broker
        self.workers = workers
        self.drain = drain
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.timeout = timeout
        #: Worker processes spawned by the current ``map`` call (exposed so
        #: crash-recovery tests can kill one mid-run).
        self.worker_processes: List[Any] = []

    # ------------------------------------------------------------------ map
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            label: Optional[str] = None,
            coords: Optional[List[Dict[str, Any]]] = None) -> List[Any]:
        """Apply ``fn`` to every item via the fleet; input-order results."""
        items = list(items)
        results: List[Any] = [None] * len(items)
        for position, value in self.map_stream(fn, items, label=label,
                                               coords=coords):
            results[position] = value
        return results

    def map_stream(self, fn: Callable[[Any], Any], items: Iterable[Any],
                   label: Optional[str] = None,
                   coords: Optional[List[Dict[str, Any]]] = None
                   ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(position, result)`` pairs as points complete.

        Completion order, not input order — callers wanting partial
        consumption (e.g. a streaming service front-end) read pairs as they
        arrive; :meth:`map` reassembles input order.  ``coords`` labels each
        item for the attached results store, as in
        :meth:`SweepRunner.map`.
        """
        items = list(items)
        if coords is not None and len(coords) != len(items):
            raise ValueError("one coords mapping per item required")
        label = label or getattr(fn, "__name__", "sweep")
        started = time.perf_counter()
        self.stats.points_submitted += len(items)
        try:
            yield from self._stream(fn, items, label, coords)
        finally:
            elapsed = time.perf_counter() - started
            self.timings[label] = self.timings.get(label, 0.0) + elapsed
            if self.progress is not None:
                self.progress(
                    f"{label}: {len(items)} point(s) in {elapsed:.2f}s "
                    f"(distributed, workers={self.workers}, cumulative "
                    f"cache hits={self.stats.cache_hits})")

    # ------------------------------------------------------------- internal
    def _stream(self, fn: Callable[[Any], Any], items: List[Any],
                label: str,
                coords: Optional[List[Dict[str, Any]]] = None
                ) -> Iterator[Tuple[int, Any]]:
        try:
            keys = [stable_key(fn, item) for item in items]
            payloads = {position: pickle.dumps((fn, items[position]),
                                               protocol=pickle.HIGHEST_PROTOCOL)
                        for position in range(len(items))}
        except (TypeError, pickle.PicklingError, AttributeError):
            # Unkeyable or unshippable work cannot cross the fleet boundary;
            # evaluate locally — correctness first, distribution best-effort.
            for position, value in enumerate(self._evaluate(fn, items)):
                yield position, value
            return

        def resolve(position: int, value: Any) -> Tuple[int, Any]:
            # Every resolved point — memo hit, store hit or fleet-computed —
            # lands in the results store; (key, sha) dedup keeps it append-
            # once per commit.
            if self.results is not None:
                self.results.record(
                    keys[position], value, experiment=label,
                    coords=coords[position] if coords is not None else None,
                    kernel=getattr(getattr(items[position], "workload", None),
                                   "kernel", None))
            return position, value

        # Local memo consult first (identical to SweepRunner._map_memoized).
        pending: Dict[str, List[int]] = {}
        for position, key in enumerate(keys):
            if self.cache is not None and key in self.cache:
                self.stats.cache_hits += 1
                yield resolve(position, self.cache.get(key))
            else:
                pending.setdefault(key, []).append(position)
        if not pending:
            return

        # One broker job per unique key; in-call duplicates resolve locally.
        work = [WorkItem(key=key, payload=payloads[positions[0]],
                         meta={"position": positions[0]})
                for key, positions in pending.items()]
        # ``results=`` only when a store is attached: brokers predating the
        # results store (or overriding create_sweep without it) keep working.
        ticket = self.broker.create_sweep(
            work, label=label, memo=self.cache,
            **({} if self.results is None else {"results": self.results}))
        executed_keys = set(pending) - set(ticket.done_keys)
        # Hit accounting mirrors SweepRunner: every position of a fleet-
        # resolved key is a hit; an executed key counts its duplicates only.
        self.stats.cache_hits += sum(len(pending[key]) - 1
                                     for key in executed_keys)
        self.stats.cache_hits += sum(len(pending[key])
                                     for key in ticket.done_keys)
        self.stats.points_executed += len(executed_keys)

        self._spawn_workers(label)
        drainer = (Worker(self.broker, memo=self.cache,
                          worker_id=f"{label}-drain",
                          lease_seconds=self.lease_seconds)
                   if self.drain else None)
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        seen: set = set()
        try:
            while len(seen) < len(work):
                finished = self.broker.finished_positions(ticket.sweep_id)
                new = sorted(set(finished) - seen)
                if not new:
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"distributed sweep {ticket.sweep_id} timed out "
                            f"after {self.timeout}s "
                            f"({len(seen)}/{len(work)} jobs finished)")
                    if drainer is None or not drainer.run_one():
                        time.sleep(self.poll_interval)
                    continue
                for job in self.broker.fetch_results(ticket.sweep_id,
                                                     positions=new):
                    seen.add(job.position)
                    if job.state != "done":
                        self.stats.failed_jobs += 1
                        self._abort(ticket.sweep_id)
                        raise DistributedJobError(job.position, job.key,
                                                  job.error)
                    if job.key in executed_keys:
                        self.stats.count_tiers([job.value])
                    if self.cache is not None:
                        self.cache.put(job.key, job.value)
                    for position in pending[job.key]:
                        yield resolve(position, job.value)
            self.stats.retries += self.broker.retries(ticket.sweep_id)
        finally:
            self._stop_workers()

    # -------------------------------------------------------------- workers
    def _spawn_workers(self, label: str) -> None:
        if self.workers <= 0:
            return
        broker_url = getattr(self.broker, "url", None)
        if broker_url is None:
            raise ValueError(
                "spawning local workers requires a URL-addressable broker "
                "(one exposing .url, like SQLiteBroker or HTTPBroker); "
                "pass workers=0 and start workers yourself")
        cache_dir = (str(self.cache.path)
                     if self.cache is not None and self.cache.path is not None
                     else None)
        import multiprocessing
        context = multiprocessing.get_context()
        for index in range(self.workers):
            process = context.Process(
                target=worker_main,
                kwargs=dict(broker_url=str(broker_url),
                            cache_dir=cache_dir,
                            worker_id=f"{label}-w{index}",
                            lease_seconds=self.lease_seconds,
                            idle_grace=3600.0),   # runner stops them itself
                daemon=True)
            try:
                process.start()
            except OSError:
                # Restricted sandboxes without fork: the drain loop (or
                # external workers) still make progress.
                if self.progress is not None:
                    self.progress(f"{label}: could not spawn worker "
                                  f"{index} (continuing without it)")
                break
            self.worker_processes.append(process)

    def _stop_workers(self) -> None:
        for process in self.worker_processes:
            if process.is_alive():
                process.terminate()
        for process in self.worker_processes:
            process.join(timeout=10.0)
        self.worker_processes = []

    def _abort(self, sweep_id: str) -> None:
        try:
            self.broker.cancel(sweep_id)
        except Exception:
            pass

    # -------------------------------------------------------------- summary
    def summary(self) -> str:
        lines = [super().summary()]
        lines.append(f"  distributed: workers={self.workers} "
                     f"drain={self.drain} broker="
                     f"{getattr(self.broker, 'url', type(self.broker).__name__)}")
        return "\n".join(lines)
