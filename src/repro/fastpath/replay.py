"""Replay-tier entry points: run a workload through the fast path.

:func:`replay_svm` and :func:`replay_multiprocess` are drop-in peers of
:func:`repro.eval.harness.run_svm` / ``run_multiprocess``: they build the
*same* platform and synthesized system through the same harness helpers, run
every software-side cost (thread create, pinning, host TLB touches, context
switches, join) through the real components, and replace only the fabric
event loop with :func:`repro.fastpath.engine.replay_fabric` driven by a
cached replay program.  The engine's counters are written back into the real
statistic groups, so ``platform.snapshot()`` and the harness aggregation are
reused unchanged and the returned :class:`~repro.eval.harness.SVMResult` is
exactly what the event tier would have produced.

Eligibility is decided *before* running (:func:`svm_replay_blockers` /
:func:`mp_replay_blockers` return a human-readable reason or ``None``); a
surprise fault mid-replay raises :class:`~repro.fastpath.engine.ReplayFault`,
which ``tier="auto"`` callers treat as "fall back to the event tier".
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.recorder import HAVE_NUMPY
from .engine import ReplayContext, ReplaySpace, replay_fabric
from .record import program_for_plan, program_for_workload

__all__ = ["TierUnavailable", "svm_replay_blockers", "mp_replay_blockers",
           "replay_svm", "replay_multiprocess"]


class TierUnavailable(RuntimeError):
    """The replay tier cannot model this run (the reason says why)."""


# ---------------------------------------------------------------------------
# Eligibility
# ---------------------------------------------------------------------------
def svm_replay_blockers(spec, config, num_threads: int = 1) -> Optional[str]:
    """Why a single-process run cannot replay (``None`` = eligible)."""
    if not HAVE_NUMPY:
        return "numpy is unavailable, so streams cannot be recorded"
    if num_threads != 1:
        return (f"replay models a single hardware thread "
                f"(num_threads={num_threads})")
    if config.platform.arbiter != "round_robin":
        return (f"replay inlines the round-robin bus arbiter "
                f"(arbiter={config.platform.arbiter!r})")
    if spec.residency < 1.0 and not config.pin_all:
        return (f"non-resident pages would fault (residency="
                f"{spec.residency}); faults need the event tier")
    return None


def mp_replay_blockers(mp, config) -> Optional[str]:
    """Why a multi-process run cannot replay (``None`` = eligible)."""
    if not HAVE_NUMPY:
        return "numpy is unavailable, so streams cannot be recorded"
    from ..os.scheduler import get_policy
    if get_policy(mp.policy).adaptive:
        return (f"adaptive policy {mp.policy!r} replans from live telemetry "
                "slices, which only the event tier produces")
    if config.platform.arbiter != "round_robin":
        return (f"replay inlines the round-robin bus arbiter "
                f"(arbiter={config.platform.arbiter!r})")
    lazy = [s.name for s in mp.specs if s.residency < 1.0]
    if lazy and not config.pin_all:
        return (f"non-resident pages would fault (processes {lazy}); "
                "faults need the event tier")
    return None


# ---------------------------------------------------------------------------
# Stats write-back
# ---------------------------------------------------------------------------
def _merge_acc(group, name: str, acc) -> None:
    if acc.count == 0:
        # The event tier only creates an accumulator on its first sample;
        # keep the snapshot keys identical.
        return
    real = group.accumulator(name)
    real.count += acc.count
    real.total += acc.total
    if acc.minimum is not None:
        if real.minimum is None or acc.minimum < real.minimum:
            real.minimum = acc.minimum
    if acc.maximum is not None:
        if real.maximum is None or acc.maximum > real.maximum:
            real.maximum = acc.maximum


def _inc(group, name: str, amount: int) -> None:
    if amount:
        # Counters appear in the event tier's snapshot only once incremented;
        # skip zeros so both tiers export the same keys.
        group.counter(name).inc(amount)


def _export_counters(platform, synth, thread_name: str, out) -> None:
    """Write the engine's counters into the real component stat groups.

    After this, ``platform.snapshot()`` reports the run exactly as an
    event-tier execution would have.
    """
    stats = platform.sim.stats

    thread = stats.group(thread_name)
    thread.counter("starts").inc(1)
    _inc(thread, "compute_cycles", out.compute_cycles)
    _inc(thread, "mem_ops", out.mem_ops)
    _inc(thread, "mem_bytes", out.mem_bytes)
    thread.counter("completions").inc(1)
    thread.scalar("cycles").set(out.finish)
    _merge_acc(thread, "stall_cycles", out.stall_cycles)

    memif = synth.memif.stats
    _inc(memif, "ops", out.memif_ops)
    _inc(memif, "bytes", out.memif_bytes)
    _inc(memif, "transactions", out.transactions)

    mmu = synth.mmu.stats
    _inc(mmu, "translations", out.translations)
    _inc(mmu, "tlb_hits", out.tlb_hits)
    _inc(mmu, "tlb_misses", out.tlb_misses)
    _inc(mmu, "tlb_refills", out.tlb_refills)
    _inc(mmu, "prefetch_hits", out.prefetch_hits)
    _inc(mmu, "prefetches_issued", out.prefetches_issued)
    _inc(mmu, "prefetches_dropped", out.prefetches_dropped)
    _inc(mmu, "prefetch_fills", out.prefetch_fills)
    _inc(mmu, "context_switches", out.context_switches)
    _inc(mmu, "flushes", out.mmu_flushes)
    _merge_acc(mmu, "miss_latency", out.miss_latency)

    walker = synth.walker.stats
    _inc(walker, "walks_requested", out.walks_requested)
    _inc(walker, "levels_fetched", out.levels_fetched)
    _inc(walker, "walks_completed", out.walks_completed)
    _inc(walker, "walks_faulted", out.walks_faulted)
    _inc(walker, "walk_cycles", out.walk_cycles)
    _merge_acc(walker, "queue_wait", out.queue_wait)
    _merge_acc(walker, "walk_latency", out.walk_latency)

    bus = platform.bus.stats
    _inc(bus, "requests", out.bus_requests)
    _inc(bus, "busy_cycles", out.bus_busy_cycles)
    _inc(bus, "contended_grants", out.bus_contended_grants)
    walker_port = synth.walker.port.name
    memif_port = synth.memif.bus_port.name
    _inc(bus, f"requests_from.{walker_port}", out.bus_requests_walker)
    _inc(bus, f"requests_from.{memif_port}", out.bus_requests_memif)
    _merge_acc(bus, "queue_wait", out.bus_queue_wait)
    _merge_acc(bus, f"latency_for.{walker_port}", out.bus_latency_walker)
    _merge_acc(bus, f"latency_for.{memif_port}", out.bus_latency_memif)

    dram = platform.dram.stats
    _inc(dram, "requests", out.dram_reads + out.dram_writes)
    _inc(dram, "row_hits", out.dram_row_hits)
    _inc(dram, "row_misses", out.dram_row_misses)
    _inc(dram, "reads", out.dram_reads)
    _inc(dram, "writes", out.dram_writes)
    _inc(dram, "bytes_read", out.dram_bytes_read)
    _inc(dram, "bytes_written", out.dram_bytes_written)
    _merge_acc(dram, "latency", out.dram_latency)


# ---------------------------------------------------------------------------
# System execution
# ---------------------------------------------------------------------------
def _replay_space(space) -> ReplaySpace:
    table = space.page_table
    return ReplaySpace(asid=table.asid, page_table=table,
                       page_size=table.config.page_size,
                       vpn_limit=1 << table.config.vpn_bits,
                       pte_bytes=table.config.pte_bytes,
                       expected_levels=table.config.levels)


def replay_system_run(system, thread_name: str, program: list,
                      spaces: List[ReplaySpace],
                      flush_on_switch: bool = False,
                      on_switch_cost: Optional[Callable[[], int]] = None,
                      pin_all: bool = False, prefetch_pages: int = 0):
    """Mirror of :meth:`SynthesizedSystem.run` with a replayed fabric.

    The delegate lifecycle (create, pin, host TLB touches, prefetch, join)
    executes through the real components; at launch the pre-recorded program
    runs through :func:`replay_fabric` against the system's real TLB and page
    tables, and the completion/join events are scheduled at the exact cycles
    the event tier would produce.
    """
    from ..core.synthesis import SystemRunResult

    platform = system.platform
    sim = platform.sim
    synth = system.threads[thread_name]
    if platform.bus.num_masters != 2:
        raise TierUnavailable(
            f"replay models one walker + one memif bus master "
            f"(found {platform.bus.num_masters})")

    start_cycle = sim.now
    pinned_areas = list(synth.delegate.space.areas) if pin_all else None
    holder = {}

    def start_fabric(done: Callable[[], None]) -> None:
        thread_cfg = synth.spec.thread_config()
        memif_cfg = synth.memif.config
        bus_cfg = platform.bus.config
        dram_cfg = platform.dram.config
        limit = platform.config.max_cycles
        ctx = ReplayContext(
            spaces=spaces,
            tlb=synth.mmu.tlb,
            max_outstanding=thread_cfg.max_outstanding,
            start_latency=thread_cfg.start_latency,
            issue_latency=memif_cfg.issue_latency,
            hit_latency=synth.mmu.tlb.config.hit_latency,
            prefetch_depth=synth.mmu.config.prefetch_depth,
            per_level_overhead=synth.walker.config.per_level_overhead,
            bus_width_bytes=bus_cfg.bus_width_bytes,
            address_phase_cycles=bus_cfg.address_phase_cycles,
            bus_max_inflight=bus_cfg.max_outstanding_per_master,
            walker_master=synth.walker.port.index,
            memif_master=synth.memif.bus_port.index,
            dram_num_banks=dram_cfg.num_banks,
            dram_row_bytes=dram_cfg.row_bytes,
            dram_row_hit=dram_cfg.row_hit_latency,
            dram_row_miss=dram_cfg.row_miss_latency,
            dram_controller=dram_cfg.controller_latency,
            dram_bytes_per_cycle=dram_cfg.data_bus_bytes_per_cycle,
            dram_write_penalty=dram_cfg.write_latency_penalty,
            flush_on_switch=flush_on_switch,
            on_switch_cost=on_switch_cost,
            max_cycles=None if limit is None else limit - sim.now,
            initial_space=0)
        out = replay_fabric(program, ctx)
        holder["out"] = out
        sim.schedule(out.finish, done)
        if out.last_cycle > out.finish:
            # Stray prefetch walks outlive the thread in the event tier; the
            # platform's final cycle must match, so hold the sim open.
            sim.schedule(out.last_cycle, lambda: None)

    completion = synth.delegate.create_and_start(
        start_fabric, pinned_areas=pinned_areas,
        prefetch_pages=prefetch_pages)
    synth.completion = completion

    end_cycle = platform.run()

    out = holder["out"]
    _export_counters(platform, synth, thread_name, out)
    synth.mmu.export_stats()

    return SystemRunResult(
        total_cycles=end_cycle - start_cycle,
        per_thread_fabric_cycles={thread_name: completion.fabric_cycles or 0},
        per_thread_wall_cycles={thread_name: completion.wall_cycles or 0},
        aborted_threads=[],
        software_overhead_cycles=platform.kernel.software_overhead_cycles,
        stats=platform.snapshot())


# ---------------------------------------------------------------------------
# Harness-level entry points
# ---------------------------------------------------------------------------
def replay_svm(spec, config=None, num_threads: int = 1):
    """Replay-tier equivalent of :func:`repro.eval.harness.run_svm`."""
    from ..eval.harness import (HarnessConfig, _build_svm_system, _svm_result)
    config = config or HarnessConfig()
    blocker = svm_replay_blockers(spec, config, num_threads)
    if blocker is not None:
        raise TierUnavailable(blocker)

    platform, system, bound = _build_svm_system(spec, config, num_threads)
    synth = system.threads["hwt0"]
    program = program_for_workload(spec, bound[0], platform.page_size,
                                   synth.memif.config.max_burst_bytes)
    result = replay_system_run(
        system, "hwt0", program, [_replay_space(platform.space)],
        pin_all=config.pin_all, prefetch_pages=config.prefetch_pages)
    fabric = max(result.per_thread_fabric_cycles.values(), default=0)
    svm = _svm_result(result, fabric)
    svm.tier = "replay"
    return svm


def replay_multiprocess(mp, config=None, flush_on_switch: bool = False):
    """Replay-tier equivalent of :func:`repro.eval.harness.run_multiprocess`."""
    from ..eval.harness import (HarnessConfig, _build_mp_system, _svm_result)
    from ..workloads.multiprocess import slice_plan
    config = config or HarnessConfig()
    blocker = mp_replay_blockers(mp, config)
    if blocker is not None:
        raise TierUnavailable(blocker)

    platform, system, spaces, _handlers, op_lists = _build_mp_system(mp, config)
    synth = system.threads["hwt0"]
    plan = slice_plan(op_lists, quantum=mp.quantum, policy=mp.policy,
                      weights=mp.weights, page_size=config.platform.page_size)
    program = program_for_plan(mp, plan, platform.page_size,
                               synth.memif.config.max_burst_bytes)
    result = replay_system_run(
        system, "hwt0", program, [_replay_space(s) for s in spaces],
        flush_on_switch=flush_on_switch,
        on_switch_cost=platform.kernel.cost_context_switch,
        pin_all=config.pin_all, prefetch_pages=config.prefetch_pages)
    fabric = max(result.per_thread_fabric_cycles.values(), default=0)
    svm = _svm_result(result, fabric)
    svm.tier = "replay"
    return svm
