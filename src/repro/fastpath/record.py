"""Building (and caching) replay programs from recorded op streams.

A *replay program* is the engine-facing form of a kernel: a list of small
tuples (see :mod:`repro.fastpath.engine`) with every memory operation already
split into page/burst-bounded chunks — the work
:meth:`repro.hwthread.memif.MemoryInterface._split` would do per run happens
once here, vectorized over the recorded NumPy columns.

Programs are content-keyed alongside :class:`repro.exec.cache.MemoCache`'s
philosophy: the key is :func:`repro.exec.keys.stable_key` over the workload
spec and the two parameters the chunking depends on (page size, max burst),
so a spec's stream is recorded exactly once per workload *shape* no matter
how many sweep points replay it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence, Tuple

from ..exec.keys import stable_key
from ..sim.process import Operation
from ..sim.recorder import (HAVE_NUMPY, KIND_COMPUTE, KIND_FENCE, KIND_MEM,
                            KIND_SWITCH, KIND_YIELD, RecordedStream,
                            TraceRecorder)
from .engine import OP_COMPUTE, OP_FENCE, OP_MEM, OP_SWITCH, OP_YIELD

if HAVE_NUMPY:
    import numpy as _np

#: Cache capacity (programs; a default-scale program is a few hundred KB).
_CACHE_CAPACITY = 64

#: stable_key -> (RecordedStream, program).  FIFO-evicted at capacity.
_programs: "OrderedDict[str, Tuple[RecordedStream, list]]" = OrderedDict()

#: Monotonic counters exposed for runner/bench reporting.
record_stats = {"records": 0, "reuses": 0}


def clear_program_cache() -> None:
    """Drop every cached stream/program (tests and memory pressure)."""
    _programs.clear()


def split_chunks(addr: int, size: int, is_write: bool, page_size: int,
                 limit: int) -> List[Tuple[int, int, bool]]:
    """Split ``[addr, addr+size)`` at page and max-burst boundaries.

    Byte-identical to ``MemoryInterface._split`` (``limit`` is the
    pre-clamped ``min(max_burst_bytes, page_size)``).
    """
    chunks: List[Tuple[int, int, bool]] = []
    remaining = size
    cursor = addr
    while remaining > 0:
        page_left = page_size - (cursor % page_size)
        chunk = min(remaining, page_left, limit)
        chunks.append((cursor, chunk, is_write))
        cursor += chunk
        remaining -= chunk
    return chunks


def build_program(stream: RecordedStream, page_size: int,
                  max_burst_bytes: int) -> list:
    """Lower a recorded stream into engine op tuples.

    The common case — a memory op that fits one chunk — is detected for the
    whole stream at once on the NumPy columns; only boundary-crossing ops go
    through the scalar splitter.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("building a replay program requires numpy")
    limit = min(max_burst_bytes, page_size)
    kinds = stream.kinds
    # Vectorized single-chunk test: fits the burst limit and does not cross
    # a page boundary.
    mem = kinds == KIND_MEM
    single = _np.zeros(len(kinds), dtype=bool)
    if mem.any():
        addrs = stream.addrs
        sizes = stream.sizes
        single[mem] = ((sizes[mem] <= limit)
                       & ((addrs[mem] % page_size) + sizes[mem] <= page_size)
                       & (sizes[mem] > 0))

    program: list = []
    append = program.append
    rows = zip(kinds.tolist(), stream.addrs.tolist(), stream.sizes.tolist(),
               stream.writes.tolist(), stream.cycles.tolist(),
               single.tolist())
    for kind, addr, size, write, cycles, one in rows:
        if kind == KIND_MEM:
            if one:
                append((OP_MEM, [(addr, size, write)], size))
            else:
                append((OP_MEM, split_chunks(addr, size, write, page_size,
                                             limit), size))
        elif kind == KIND_COMPUTE:
            append((OP_COMPUTE, cycles))
        elif kind == KIND_FENCE:
            append((OP_FENCE,))
        elif kind == KIND_YIELD:
            append((OP_YIELD,))
        else:   # KIND_SWITCH (addr column carries the process index)
            append((OP_SWITCH, addr))
    return program


def _cache_put(key: str, value: Tuple[RecordedStream, list]) -> None:
    if len(_programs) >= _CACHE_CAPACITY:
        _programs.popitem(last=False)
    _programs[key] = value


def program_for_workload(spec, bound, page_size: int,
                         max_burst_bytes: int) -> list:
    """The replay program of one bound single-process workload.

    ``spec`` must fully determine the op stream given the page size (binding
    a workload spec into a fresh address space is deterministic), so the
    cache key never needs the space itself.
    """
    key = stable_key("fastpath-svm", spec, page_size, max_burst_bytes)
    hit = _programs.get(key)
    if hit is not None:
        _programs.move_to_end(key)
        record_stats["reuses"] += 1
        return hit[1]
    record_stats["records"] += 1
    stream = TraceRecorder.capture(bound.make_kernel())
    program = build_program(stream, page_size, max_burst_bytes)
    _cache_put(key, (stream, program))
    return program


def program_for_plan(mp, plan: Sequence[Tuple[int, List[Operation]]],
                     page_size: int, max_burst_bytes: int,
                     initial_process: int = 0) -> list:
    """The replay program of a static multi-process slice plan.

    Mirrors :func:`repro.workloads.multiprocess.time_sliced_kernel`: a
    process boundary becomes ``Fence`` + an ``OP_SWITCH`` marker (the engine
    performs the MMU re-point and charges the context-switch stall when it
    reaches the marker, exactly when the generator's switch hook would run).
    """
    key = stable_key("fastpath-mp", mp, page_size, max_burst_bytes,
                     initial_process)
    hit = _programs.get(key)
    if hit is not None:
        _programs.move_to_end(key)
        record_stats["reuses"] += 1
        return hit[1]
    record_stats["records"] += 1
    recorder = TraceRecorder()
    current = initial_process
    for process, ops in plan:
        if process != current:
            recorder._append(KIND_FENCE, 0, 0, False, 0)
            recorder._append(KIND_SWITCH, process, 0, False, 0)
            current = process
        for op in ops:
            recorder.on_op(op)
    stream = recorder.finish()
    program = build_program(stream, page_size, max_burst_bytes)
    _cache_put(key, (stream, program))
    return program


def stream_for_ops(ops) -> RecordedStream:
    """Record an operation iterable (generator or list) without caching."""
    return TraceRecorder.capture(ops)
