"""Replay micro-simulator: the event loop of one SVM hardware thread, flattened.

The component-based event tier executes a kernel through ~10 Python objects
(thread → memif → MMU → TLB → walker → bus → DRAM), each interaction a
closure on the global heap.  This engine replays a pre-recorded operation
stream (:mod:`repro.fastpath.record`) through *one* dispatch loop whose
events are small tuples ``(cycle, seq, code, payload)`` and whose component
state lives in local variables.

Exactness is by construction, not by approximation: the engine mirrors every
``Simulator.schedule`` call the real components would make — same delays,
same order within an event, same synchronous call chains — so the heap pops
in the identical order and every counter, stall and completion cycle comes
out identical to the event tier.  The set-associative ASID-tagged TLB state
is kept in the *real* :class:`~repro.vm.tlb.TLB` object (handed in by the
caller, pre-warmed by any host-side pinning touches), manipulated inline with
the exact semantics of ``lookup``/``insert``/``flush``; page-table walks read
the real :class:`~repro.vm.pagetable.PageTable` nodes.

The engine refuses to service a translation fault (`ReplayFault`): the replay
tier's eligibility rules only admit runs whose pages are all present, and a
surprise fault means the caller must fall back to the event tier.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.engine import SimulationError

__all__ = ["ReplayFault", "ReplaySpace", "ReplayContext", "ReplayOutput",
           "replay_fabric"]

# Program op codes (first element of a program tuple).
OP_COMPUTE = 0     # (0, cycles)
OP_MEM = 1         # (1, chunks, total_bytes)  chunks: [(vaddr, size, is_write)]
OP_FENCE = 2       # (2,)
OP_YIELD = 3       # (3,)
OP_SWITCH = 4      # (4, process_index)

# Event codes (third element of a heap tuple).
_EV_ADVANCE = 0        # thread fetches/dispatches the next program op
_EV_TRANSLATED = 1     # TLB-hit latency elapsed -> memif issue()
_EV_BUS_ISSUE = 2      # memif issue latency elapsed -> bus submit
_EV_BUS_FORWARD = 3    # bus occupancy elapsed -> DRAM access + next grant
_EV_DRAM_DONE = 4      # DRAM transaction complete -> route to requester
_EV_WALK_STEP = 5      # walker per-level overhead elapsed -> next level

# Bus/DRAM payload routing (first element of a request payload).
_REQ_DATA = 0
_REQ_WALK = 1


class ReplayFault(RuntimeError):
    """The replayed stream hit a translation fault the fast path cannot model."""


@dataclass(frozen=True)
class ReplaySpace:
    """Per-process translation state the engine switches between."""

    asid: int
    page_table: object            # real repro.vm.pagetable.PageTable
    page_size: int
    vpn_limit: int                # 1 << vpn_bits
    pte_bytes: int
    expected_levels: int


@dataclass
class _Acc:
    """Mirror of :class:`repro.sim.stats.Accumulator` content."""

    count: int = 0
    total: int = 0
    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def add(self, sample: int) -> None:
        self.count += 1
        self.total += sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample


@dataclass
class ReplayContext:
    """Everything the engine needs about the synthesized system."""

    spaces: List[ReplaySpace]
    tlb: object                   # real repro.vm.tlb.TLB (possibly pre-warmed)
    # Thread / memif timing.
    max_outstanding: int
    start_latency: int
    issue_latency: int
    # MMU / walker timing.
    hit_latency: int
    prefetch_depth: int
    per_level_overhead: int
    # Bus.
    bus_width_bytes: int
    address_phase_cycles: int
    bus_max_inflight: int
    walker_master: int            # bus master index of the walker port
    memif_master: int             # bus master index of the thread's memif port
    # DRAM.
    dram_num_banks: int
    dram_row_bytes: int
    dram_row_hit: int
    dram_row_miss: int
    dram_controller: int
    dram_bytes_per_cycle: int
    dram_write_penalty: int
    # Context switching (multi-process programs only).
    flush_on_switch: bool = False
    #: Returns the switch stall in cycles; the caller wires this to the real
    #: ``HostKernel.cost_context_switch`` so software overhead is charged
    #: identically to the event tier.
    on_switch_cost: Optional[Callable[[], int]] = None
    max_cycles: Optional[int] = None
    initial_space: int = 0


@dataclass
class ReplayOutput:
    """Counters and timing of one replayed fabric execution.

    All cycle values are relative to the fabric launch (micro-time 0).
    ``finish`` is the thread-completion cycle; ``last_cycle`` is the final
    event (stray prefetch walks may outlive the thread).
    """

    finish: int
    last_cycle: int
    events: int
    # mmu.*
    translations: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    tlb_refills: int = 0
    prefetch_hits: int = 0
    prefetches_issued: int = 0
    prefetches_dropped: int = 0
    prefetch_fills: int = 0
    context_switches: int = 0
    mmu_flushes: int = 0
    miss_latency: _Acc = field(default_factory=_Acc)
    # ptw.*
    walks_requested: int = 0
    levels_fetched: int = 0
    walks_completed: int = 0
    walks_faulted: int = 0
    walk_cycles: int = 0
    queue_wait: _Acc = field(default_factory=_Acc)
    walk_latency: _Acc = field(default_factory=_Acc)
    # thread / memif
    compute_cycles: int = 0
    mem_ops: int = 0
    mem_bytes: int = 0
    stall_cycles: _Acc = field(default_factory=_Acc)
    memif_ops: int = 0
    memif_bytes: int = 0
    transactions: int = 0
    # bus / dram
    bus_requests: int = 0
    bus_busy_cycles: int = 0
    bus_requests_walker: int = 0
    bus_requests_memif: int = 0
    bus_contended_grants: int = 0
    bus_queue_wait: _Acc = field(default_factory=_Acc)
    bus_latency_walker: _Acc = field(default_factory=_Acc)
    bus_latency_memif: _Acc = field(default_factory=_Acc)
    dram_latency: _Acc = field(default_factory=_Acc)
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0


_HUGE = 1 << 62


def _make_acc(count: int, total: int, minimum: int, maximum: int) -> _Acc:
    """Freeze a localized (count, total, min, max) quad into an :class:`_Acc`."""
    acc = _Acc()
    if count:
        acc.count = count
        acc.total = total
        acc.minimum = minimum
        acc.maximum = maximum
    return acc


def replay_fabric(program: List[tuple], ctx: ReplayContext) -> ReplayOutput:
    """Execute a replay program; returns exact counters and completion cycles.

    The heavy lifting is one ``while heap`` loop over integer-coded events.
    Mutable scalars live in enclosing-scope cells; the hot TLB probe/refill
    path is inlined against the real TLB's set structures with semantics
    identical to ``TLB.lookup``/``TLB.insert``.  Hot counters accumulate in
    plain locals and are written back to ``out`` once at the end; the
    per-chunk hit path (probe → translated → bus → DRAM → completion) runs
    entirely inside the dispatch branches without a single helper call.
    """
    out = ReplayOutput(finish=-1, last_cycle=0, events=0)

    for sp in ctx.spaces:
        if sp.page_size <= 0 or sp.page_size & (sp.page_size - 1):
            raise ReplayFault(
                f"page size {sp.page_size} is not a power of two; the replay "
                "fast path assumes shift/mask page arithmetic")

    heap: List[tuple] = []
    push = heapq.heappush
    pop = heapq.heappop
    seq = 0
    now = 0
    limit = ctx.max_cycles if ctx.max_cycles is not None else _HUGE

    # ----- thread state -------------------------------------------------
    pc = 0
    nops = len(program)
    outstanding = 0
    waiting_slot = False
    waiting_fence = False
    stalled_chunks: Optional[list] = None
    stalled_bytes = 0
    stall_started = 0
    exhausted = False
    finish = -1
    max_outstanding = ctx.max_outstanding
    issue_latency = ctx.issue_latency
    hit_latency = ctx.hit_latency

    # ----- per-space translation state ---------------------------------
    spaces = ctx.spaces
    space = spaces[ctx.initial_space]
    cur_asid = space.asid
    cur_table = space.page_table
    cur_page_size = space.page_size
    cur_shift = cur_page_size.bit_length() - 1
    cur_mask = cur_page_size - 1
    cur_vpn_limit = space.vpn_limit
    cur_pte_bytes = space.pte_bytes
    cur_levels = space.expected_levels

    # ----- TLB state, inlined against the real object -------------------
    tlb = ctx.tlb
    tlb_cfg = tlb.config
    tlb_sets = tlb._sets
    num_sets = tlb_cfg.num_sets
    ways = tlb_cfg.ways
    policy = tlb_cfg.replacement      # "lru" | "fifo" | "random"
    is_lru = policy == "lru"
    rng = tlb._rng
    tick = tlb._tick
    tlb_hits = tlb.hits
    tlb_misses = tlb.misses
    tlb_evictions = tlb.evictions
    from ..vm.tlb import TLBEntry

    # ----- prefetcher state (mirrors MMU) -------------------------------
    prefetch_depth = ctx.prefetch_depth
    recent_misses: deque = deque(maxlen=8)
    prefetch_score = 16               # MMU.PREFETCH_SCORE_INIT
    prefetches_inflight: set = set()

    # ----- walker state -------------------------------------------------
    walk_queue: deque = deque()
    walker_busy = False
    per_level_overhead = ctx.per_level_overhead
    # The page tables are immutable during a replay (faults are rejected, no
    # OS activity runs), so per-vpn walk addresses and leaf PTEs memoize.
    wa_cache: Dict[tuple, list] = {}
    pte_cache: Dict[tuple, object] = {}
    _missing = object()

    # ----- bus state ----------------------------------------------------
    walker_master = ctx.walker_master
    memif_master = ctx.memif_master
    bus_queue_w: deque = deque()      # walker-port queue
    bus_queue_m: deque = deque()      # memif-port queue
    inflight_w = 0
    inflight_m = 0
    bus_busy = False
    bus_last = -1                     # RoundRobinArbiter._last_granted
    bus_max_inflight = ctx.bus_max_inflight
    bus_width = ctx.bus_width_bytes
    addr_phase = ctx.address_phase_cycles

    # ----- DRAM state ---------------------------------------------------
    num_banks = ctx.dram_num_banks
    row_bytes = ctx.dram_row_bytes
    row_span = row_bytes * num_banks
    row_hit_lat = ctx.dram_row_hit
    row_miss_lat = ctx.dram_row_miss
    controller = ctx.dram_controller
    dram_bpc = ctx.dram_bytes_per_cycle
    write_penalty = ctx.dram_write_penalty
    open_rows: List[Optional[int]] = [None] * num_banks
    bank_free = [0] * num_banks
    data_bus_free = 0

    # ----- localized hot counters (written back to ``out`` at the end) --
    c_translations = 0
    c_mmu_hits = 0
    c_mmu_misses = 0
    c_refills = 0
    c_transactions = 0
    c_mem_ops = 0
    c_mem_bytes = 0
    c_memif_ops = 0
    c_memif_bytes = 0
    c_compute = 0
    c_bus_requests = 0
    c_breq_w = 0
    c_breq_m = 0
    c_busy = 0
    c_contended = 0
    c_row_hits = 0
    c_row_misses = 0
    c_reads = 0
    c_writes = 0
    c_bytes_r = 0
    c_bytes_w = 0
    c_walks_req = 0
    c_levels = 0
    c_walks_done = 0
    c_walks_faulted = 0
    c_walk_cycles = 0
    # Accumulator quads: (count, total, min, max).
    qw_cnt = qw_tot = 0; qw_min = _HUGE; qw_max = -1     # bus queue wait
    blw_cnt = blw_tot = 0; blw_min = _HUGE; blw_max = -1  # bus latency (walker)
    blm_cnt = blm_tot = 0; blm_min = _HUGE; blm_max = -1  # bus latency (memif)
    dl_cnt = dl_tot = 0; dl_min = _HUGE; dl_max = -1      # dram latency
    st_cnt = st_tot = 0; st_min = _HUGE; st_max = -1      # thread stall
    wq_cnt = wq_tot = 0; wq_min = _HUGE; wq_max = -1      # walker queue wait
    wl_cnt = wl_tot = 0; wl_min = _HUGE; wl_max = -1      # walk latency
    ml_cnt = ml_tot = 0; ml_min = _HUGE; ml_max = -1      # mmu miss latency

    # ------------------------------------------------------------- helpers
    def bus_grant() -> None:
        nonlocal bus_busy, bus_last, inflight_w, inflight_m, seq
        nonlocal c_busy, c_contended, qw_cnt, qw_tot, qw_min, qw_max
        cand_w = bool(bus_queue_w) and inflight_w < bus_max_inflight
        cand_m = bool(bus_queue_m) and inflight_m < bus_max_inflight
        if not (cand_w or cand_m):
            bus_busy = False
            return
        bus_busy = True
        # RoundRobinArbiter.choose over ascending candidate indices: first
        # index greater than the last grant, else wrap to the lowest.
        if cand_w and cand_m:
            lo, hi = ((walker_master, memif_master)
                      if walker_master < memif_master
                      else (memif_master, walker_master))
            chosen = lo if (bus_last < lo or bus_last >= hi) else hi
        elif cand_w:
            chosen = walker_master
        else:
            chosen = memif_master
        bus_last = chosen
        if chosen == walker_master:
            payload, issued = bus_queue_w.popleft()
            inflight_w += 1
        else:
            payload, issued = bus_queue_m.popleft()
            inflight_m += 1
        wait = now - issued
        qw_cnt += 1
        qw_tot += wait
        if wait < qw_min:
            qw_min = wait
        if wait > qw_max:
            qw_max = wait
        if wait > 0:
            c_contended += 1
        beats = (payload[2] + bus_width - 1) // bus_width
        if beats < 1:
            beats = 1
        occupancy = addr_phase + beats
        c_busy += occupancy
        push(heap, (now + occupancy, seq, 3, (chosen, payload)))  # BUS_FORWARD
        seq += 1

    # Walk request tuples: demand -> (0, vpn, space, issue_payload, started,
    # issued_at); prefetch -> (1, vpn, space, (key, stride), 0, issued_at).
    def walker_walk(request: tuple) -> None:
        nonlocal c_walks_req
        c_walks_req += 1
        walk_queue.append(request)
        if not walker_busy:
            walker_start_next()

    def walker_start_next() -> None:
        nonlocal walker_busy, wq_cnt, wq_tot, wq_min, wq_max
        if not walk_queue:
            walker_busy = False
            return
        walker_busy = True
        request = walk_queue.popleft()
        wait = now - request[5]
        wq_cnt += 1
        wq_tot += wait
        if wait < wq_min:
            wq_min = wait
        if wait > wq_max:
            wq_max = wait
        wa_key = (request[2].asid, request[1])
        addresses = wa_cache.get(wa_key)
        if addresses is None:
            addresses = request[2].page_table.walk_addresses(request[1])
            wa_cache[wa_key] = addresses
        walk_do(request, addresses, 0, now)

    def walk_do(request: tuple, addresses: list, level: int,
                started_at: int) -> None:
        nonlocal c_levels, c_bus_requests, c_breq_w
        if level >= len(addresses):
            walk_finish(request, addresses, started_at)
            return
        c_levels += 1
        # Walker-port bus submit, inlined.
        c_bus_requests += 1
        c_breq_w += 1
        bus_queue_w.append(((_REQ_WALK, addresses[level],
                             request[2].pte_bytes, False, request, addresses,
                             level, started_at), now))
        if not bus_busy:
            bus_grant()

    def walk_finish(request: tuple, addresses: list, started_at: int) -> None:
        nonlocal tick, tlb_evictions, seq, c_walks_done, c_walks_faulted
        nonlocal c_walk_cycles, c_refills, c_transactions
        nonlocal wl_cnt, wl_tot, wl_min, wl_max, ml_cnt, ml_tot, ml_min, ml_max
        req_space = request[2]
        vpn = request[1]
        if len(addresses) == req_space.expected_levels:
            pte_key = (req_space.asid, vpn)
            entry = pte_cache.get(pte_key, _missing)
            if entry is _missing:
                entry = req_space.page_table.entry(vpn)
                pte_cache[pte_key] = entry
        else:
            entry = None
        wc = now - started_at
        c_walks_done += 1
        c_walk_cycles += wc
        wl_cnt += 1
        wl_tot += wc
        if wc < wl_min:
            wl_min = wc
        if wc > wl_max:
            wl_max = wc
        if entry is None:
            # Prefetch probe beyond the mapped range: the walker records the
            # faulted walk; the MMU will just drop the prefetch.
            c_walks_faulted += 1

        if request[0] == _REQ_DATA:       # demand walk
            if (entry is None or not entry.present
                    or (request[3][2] and not entry.writable)):
                raise ReplayFault(
                    f"translation fault on vpn {vpn:#x} (asid "
                    f"{req_space.asid}); the replay tier cannot service "
                    "faults — run this workload on the event tier")
            # TLB.insert under the *currently active* ASID (mirrors the MMU,
            # which tags demand refills with its active page table).
            key = (cur_asid, vpn)
            tlb_set = tlb_sets[vpn % num_sets]
            resident = tlb_set.get(key)
            if resident is not None:
                resident.frame = entry.frame
                resident.writable = entry.writable
                resident.prefetched = False
            else:
                if len(tlb_set) >= ways:
                    tlb_evictions += 1
                    if policy == "lru":
                        tlb_set.popitem(last=False)
                    elif policy == "fifo":
                        victim = min(tlb_set,
                                     key=lambda v: tlb_set[v].inserted_at)
                        del tlb_set[victim]
                    else:
                        del tlb_set[rng.choice(list(tlb_set))]
                tick += 1
                tlb_set[key] = TLBEntry(vpn=vpn, frame=entry.frame,
                                        writable=entry.writable,
                                        asid=cur_asid, inserted_at=tick,
                                        last_used=tick)
            c_refills += 1
            entry.accessed = True
            issue_payload = request[3]    # (offset, size, is_write, chunks, i)
            if issue_payload[2]:
                entry.dirty = True
            miss = now - request[4]
            ml_cnt += 1
            ml_tot += miss
            if miss < ml_min:
                ml_min = miss
            if miss > ml_max:
                ml_max = miss
            paddr = entry.frame * req_space.page_size + issue_payload[0]
            c_transactions += 1
            push(heap, (now + issue_latency, seq, 2,      # BUS_ISSUE
                        (_REQ_DATA, paddr, issue_payload[1], issue_payload[2],
                         issue_payload[3], issue_payload[4])))
            seq += 1
        else:                             # prefetch walk
            key, stride = request[3]
            prefetches_inflight.discard(key)
            if entry is None or not entry.present:
                out.prefetches_dropped += 1
            else:
                entry.accessed = True
                # TLB.insert(prefetched=True) + stride tag, inlined.
                tlb_set = tlb_sets[vpn % num_sets]
                resident = tlb_set.get(key)
                if resident is not None:
                    resident.frame = entry.frame
                    resident.writable = entry.writable
                    # entry.prefetched and True -> unchanged
                    resident.prefetch_stride = stride
                else:
                    if len(tlb_set) >= ways:
                        tlb_evictions += 1
                        if policy == "lru":
                            tlb_set.popitem(last=False)
                        elif policy == "fifo":
                            victim = min(tlb_set,
                                         key=lambda v: tlb_set[v].inserted_at)
                            del tlb_set[victim]
                        else:
                            del tlb_set[rng.choice(list(tlb_set))]
                    tick += 1
                    installed = TLBEntry(vpn=vpn, frame=entry.frame,
                                         writable=entry.writable, asid=key[0],
                                         inserted_at=tick, last_used=tick,
                                         prefetched=True)
                    installed.prefetch_stride = stride
                    tlb_set[key] = installed
                out.prefetch_fills += 1
        walker_start_next()

    def maybe_prefetch(vpn: int, stride: int) -> None:
        nonlocal prefetch_score
        if prefetch_depth <= 0 or prefetch_score < 8:   # SCORE_GATE
            return
        table = cur_table
        asid = cur_asid
        limit = cur_vpn_limit
        space_now = space
        for ahead in range(1, prefetch_depth + 1):
            target = vpn + stride * ahead
            if not 0 <= target < limit:
                continue
            key = (asid, target)
            if key in tlb_sets[target % num_sets] or key in prefetches_inflight:
                continue
            prefetches_inflight.add(key)
            prefetch_score -= 1
            out.prefetches_issued += 1
            walker_walk((_REQ_WALK, target, space_now, (key, stride), 0, now))

    def translate(vaddr: int, size: int, is_write: bool, chunks: list,
                  index: int) -> None:
        """Mirror of ``MMU.translate`` + the memif issue that follows a hit.

        The dispatch loop inlines the clean-hit fast path and only calls in
        here for misses, prefetched hits, write-protection upgrades, and the
        cold issue sites (stall release); the two implementations must stay
        semantically identical.
        """
        nonlocal tick, tlb_hits, tlb_misses, prefetch_score, seq
        nonlocal c_translations, c_mmu_hits, c_mmu_misses
        vpn = vaddr >> cur_shift
        c_translations += 1
        # TLB.lookup, inlined.
        tick += 1
        tlb_set = tlb_sets[vpn % num_sets]
        key = (cur_asid, vpn)
        entry = tlb_set.get(key)
        if entry is not None:
            tlb_hits += 1
            entry.last_used = tick
            if is_lru:
                tlb_set.move_to_end(key)
        else:
            tlb_misses += 1
        if entry is not None and (not is_write or entry.writable):
            c_mmu_hits += 1
            if entry.prefetched:
                entry.prefetched = False
                out.prefetch_hits += 1
                prefetch_score = min(31, prefetch_score + 4)  # MAX, HIT_BONUS
                maybe_prefetch(vpn, entry.prefetch_stride)
            push(heap, (now + hit_latency, seq, 1,            # TRANSLATED
                        (_REQ_DATA,
                         (entry.frame << cur_shift) | (vaddr & cur_mask),
                         size, is_write, chunks, index)))
            seq += 1
            return
        c_mmu_misses += 1
        walker_walk((_REQ_DATA, vpn, space,
                     (vaddr & cur_mask, size, is_write, chunks, index),
                     now, now))
        # _miss_stride: continue the closest recent stream, else next-page.
        stride = 1
        for recent in reversed(recent_misses):
            delta = vpn - recent
            if delta != 0 and -3 <= delta <= 3:     # MAX_PREFETCH_STRIDE
                stride = delta
                break
        recent_misses.append(vpn)
        maybe_prefetch(vpn, stride)

    # ------------------------------------------------------------ main loop
    push(heap, (ctx.start_latency, seq, 0, None))             # ADVANCE
    seq += 1

    events = 0
    while heap:
        now_, _, code, payload = pop(heap)
        if now_ > limit:
            raise SimulationError(
                f"simulation exceeded max_cycles={ctx.max_cycles} "
                f"(next event at {now_})")
        now = now_
        events += 1

        if code == 1:                   # _EV_TRANSLATED
            # Hit latency elapsed -> memif.issue(): one transaction.  The
            # payload is already in BUS_ISSUE form.
            c_transactions += 1
            push(heap, (now + issue_latency, seq, 2, payload))
            seq += 1
        elif code == 4:                 # _EV_DRAM_DONE
            master, request, service = payload
            if master == walker_master:
                inflight_w -= 1
                blw_cnt += 1
                blw_tot += service
                if service < blw_min:
                    blw_min = service
                if service > blw_max:
                    blw_max = service
            else:
                inflight_m -= 1
                blm_cnt += 1
                blm_tot += service
                if service < blm_min:
                    blm_min = service
                if service > blm_max:
                    blm_max = service
            if request[0] == _REQ_DATA:
                chunks = request[4]
                index = request[5] + 1
                if index < len(chunks):
                    # Next chunk of a multi-chunk op: inline clean-hit probe.
                    vaddr, size, is_write = chunks[index]
                    vpn = vaddr >> cur_shift
                    key = (cur_asid, vpn)
                    tlb_set = tlb_sets[vpn % num_sets]
                    entry = tlb_set.get(key)
                    if (entry is not None and not entry.prefetched
                            and (not is_write or entry.writable)):
                        tick += 1
                        tlb_hits += 1
                        entry.last_used = tick
                        if is_lru:
                            tlb_set.move_to_end(key)
                        c_translations += 1
                        c_mmu_hits += 1
                        push(heap, (now + hit_latency, seq, 1,
                                    (_REQ_DATA,
                                     (entry.frame << cur_shift)
                                     | (vaddr & cur_mask),
                                     size, is_write, chunks, index)))
                        seq += 1
                    else:
                        translate(vaddr, size, is_write, chunks, index)
                else:
                    # Operation retired -> hardware thread _on_mem_done.
                    outstanding -= 1
                    if waiting_slot:
                        waiting_slot = False
                        stall = now - stall_started
                        st_cnt += 1
                        st_tot += stall
                        if stall < st_min:
                            st_min = stall
                        if stall > st_max:
                            st_max = stall
                        outstanding += 1
                        c_memif_ops += 1
                        c_memif_bytes += stalled_bytes
                        vaddr, size, is_write = stalled_chunks[0]
                        vpn = vaddr >> cur_shift
                        key = (cur_asid, vpn)
                        tlb_set = tlb_sets[vpn % num_sets]
                        entry = tlb_set.get(key)
                        if (entry is not None and not entry.prefetched
                                and (not is_write or entry.writable)):
                            tick += 1
                            tlb_hits += 1
                            entry.last_used = tick
                            if is_lru:
                                tlb_set.move_to_end(key)
                            c_translations += 1
                            c_mmu_hits += 1
                            push(heap, (now + hit_latency, seq, 1,
                                        (_REQ_DATA,
                                         (entry.frame << cur_shift)
                                         | (vaddr & cur_mask),
                                         size, is_write, stalled_chunks, 0)))
                            seq += 1
                        else:
                            translate(vaddr, size, is_write, stalled_chunks, 0)
                        push(heap, (now, seq, 0, None))       # ADVANCE
                        seq += 1
                    elif waiting_fence and outstanding == 0:
                        waiting_fence = False
                        push(heap, (now, seq, 0, None))       # ADVANCE
                        seq += 1
                    elif exhausted and outstanding == 0 and finish < 0:
                        finish = now
            else:
                push(heap, (now + per_level_overhead, seq, 5,  # WALK_STEP
                            (request[4], request[5], request[6] + 1,
                             request[7])))
                seq += 1
            if not bus_busy:
                # Bus grant, inlined (see ``bus_grant`` for the commented
                # form; repeated at each hot call site to avoid call costs).
                cand_w = bus_queue_w and inflight_w < bus_max_inflight
                cand_m = bus_queue_m and inflight_m < bus_max_inflight
                if cand_w or cand_m:
                    bus_busy = True
                    if cand_w and cand_m:
                        lo, hi = ((walker_master, memif_master)
                                  if walker_master < memif_master
                                  else (memif_master, walker_master))
                        chosen = lo if (bus_last < lo or bus_last >= hi) else hi
                    elif cand_w:
                        chosen = walker_master
                    else:
                        chosen = memif_master
                    bus_last = chosen
                    if chosen == walker_master:
                        gpayload, issued = bus_queue_w.popleft()
                        inflight_w += 1
                    else:
                        gpayload, issued = bus_queue_m.popleft()
                        inflight_m += 1
                    wait = now - issued
                    qw_cnt += 1
                    qw_tot += wait
                    if wait < qw_min:
                        qw_min = wait
                    if wait > qw_max:
                        qw_max = wait
                    if wait > 0:
                        c_contended += 1
                    beats = (gpayload[2] + bus_width - 1) // bus_width
                    if beats < 1:
                        beats = 1
                    occupancy = addr_phase + beats
                    c_busy += occupancy
                    push(heap, (now + occupancy, seq, 3, (chosen, gpayload)))
                    seq += 1
        elif code == 2:                 # _EV_BUS_ISSUE (memif-port submit)
            c_bus_requests += 1
            c_breq_m += 1
            bus_queue_m.append((payload, now))
            if not bus_busy:
                # Bus grant, inlined.
                cand_w = bus_queue_w and inflight_w < bus_max_inflight
                cand_m = inflight_m < bus_max_inflight
                if cand_w or cand_m:
                    bus_busy = True
                    if cand_w and cand_m:
                        lo, hi = ((walker_master, memif_master)
                                  if walker_master < memif_master
                                  else (memif_master, walker_master))
                        chosen = lo if (bus_last < lo or bus_last >= hi) else hi
                    elif cand_w:
                        chosen = walker_master
                    else:
                        chosen = memif_master
                    bus_last = chosen
                    if chosen == walker_master:
                        gpayload, issued = bus_queue_w.popleft()
                        inflight_w += 1
                    else:
                        gpayload, issued = bus_queue_m.popleft()
                        inflight_m += 1
                    wait = now - issued
                    qw_cnt += 1
                    qw_tot += wait
                    if wait < qw_min:
                        qw_min = wait
                    if wait > qw_max:
                        qw_max = wait
                    if wait > 0:
                        c_contended += 1
                    beats = (gpayload[2] + bus_width - 1) // bus_width
                    if beats < 1:
                        beats = 1
                    occupancy = addr_phase + beats
                    c_busy += occupancy
                    push(heap, (now + occupancy, seq, 3, (chosen, gpayload)))
                    seq += 1
        elif code == 3:                 # _EV_BUS_FORWARD -> DRAM access
            master, request = payload
            addr = request[1]
            size = request[2]
            bank = (addr // row_bytes) % num_banks
            start = now + controller
            free_at = bank_free[bank]
            if free_at > start:
                start = free_at
            row = addr // row_span
            if open_rows[bank] == row:
                latency = row_hit_lat
                c_row_hits += 1
            else:
                latency = row_miss_lat
                open_rows[bank] = row
                c_row_misses += 1
            transfer = (size + dram_bpc - 1) // dram_bpc
            if transfer < 1:
                transfer = 1
            data_start = start + latency
            if data_bus_free > data_start:
                data_start = data_bus_free
            finish_at = data_start + transfer
            if request[3]:
                finish_at += write_penalty
                c_writes += 1
                c_bytes_w += size
            else:
                c_reads += 1
                c_bytes_r += size
            bank_free[bank] = finish_at
            data_bus_free = data_start + transfer
            # The DRAM resets the request's issue cycle, so the bus's
            # ``latency_for`` sample equals the DRAM service latency.
            service = finish_at - now
            dl_cnt += 1
            dl_tot += service
            if service < dl_min:
                dl_min = service
            if service > dl_max:
                dl_max = service
            push(heap, (finish_at, seq, 4, (master, request, service)))
            seq += 1
            # Bus grant, inlined (the occupancy window just ended, so the
            # bus idles unless a queued request can be granted now).
            cand_w = bus_queue_w and inflight_w < bus_max_inflight
            cand_m = bus_queue_m and inflight_m < bus_max_inflight
            if not (cand_w or cand_m):
                bus_busy = False
            else:
                bus_busy = True
                if cand_w and cand_m:
                    lo, hi = ((walker_master, memif_master)
                              if walker_master < memif_master
                              else (memif_master, walker_master))
                    chosen = lo if (bus_last < lo or bus_last >= hi) else hi
                elif cand_w:
                    chosen = walker_master
                else:
                    chosen = memif_master
                bus_last = chosen
                if chosen == walker_master:
                    gpayload, issued = bus_queue_w.popleft()
                    inflight_w += 1
                else:
                    gpayload, issued = bus_queue_m.popleft()
                    inflight_m += 1
                wait = now - issued
                qw_cnt += 1
                qw_tot += wait
                if wait < qw_min:
                    qw_min = wait
                if wait > qw_max:
                    qw_max = wait
                if wait > 0:
                    c_contended += 1
                beats = (gpayload[2] + bus_width - 1) // bus_width
                if beats < 1:
                    beats = 1
                occupancy = addr_phase + beats
                c_busy += occupancy
                push(heap, (now + occupancy, seq, 3, (chosen, gpayload)))
                seq += 1
        elif code == 0:                 # _EV_ADVANCE
            while True:
                if pc >= nops:
                    exhausted = True
                    if outstanding == 0 and finish < 0:
                        finish = now
                    break
                op = program[pc]
                pc += 1
                kind = op[0]
                if kind == OP_MEM:
                    c_mem_ops += 1
                    c_mem_bytes += op[2]
                    if outstanding >= max_outstanding:
                        waiting_slot = True
                        stalled_chunks = op[1]
                        stalled_bytes = op[2]
                        stall_started = now
                        break
                    outstanding += 1
                    c_memif_ops += 1
                    c_memif_bytes += op[2]
                    chunks = op[1]
                    vaddr, size, is_write = chunks[0]
                    # Inline clean-hit probe (misses and prefetched hits take
                    # the full translate path).
                    vpn = vaddr >> cur_shift
                    key = (cur_asid, vpn)
                    tlb_set = tlb_sets[vpn % num_sets]
                    entry = tlb_set.get(key)
                    if (entry is not None and not entry.prefetched
                            and (not is_write or entry.writable)):
                        tick += 1
                        tlb_hits += 1
                        entry.last_used = tick
                        if is_lru:
                            tlb_set.move_to_end(key)
                        c_translations += 1
                        c_mmu_hits += 1
                        push(heap, (now + hit_latency, seq, 1,
                                    (_REQ_DATA,
                                     (entry.frame << cur_shift)
                                     | (vaddr & cur_mask),
                                     size, is_write, chunks, 0)))
                        seq += 1
                    else:
                        translate(vaddr, size, is_write, chunks, 0)
                    if heap and heap[0][0] == now:
                        # Another event fires this cycle before the thread's
                        # zero-delay advance would pop; defer via the heap to
                        # preserve the event order.
                        push(heap, (now, seq, 0, None))       # ADVANCE
                        seq += 1
                        break
                    continue
                if kind == OP_COMPUTE:
                    c_compute += op[1]
                    push(heap, (now + op[1], seq, 0, None))
                    seq += 1
                    break
                if kind == OP_FENCE:
                    if outstanding == 0:
                        if heap and heap[0][0] == now:
                            push(heap, (now, seq, 0, None))
                            seq += 1
                            break
                        continue
                    waiting_fence = True
                    break
                if kind == OP_YIELD:
                    push(heap, (now + 1, seq, 0, None))
                    seq += 1
                    break
                # OP_SWITCH: runs inside this advance, like the generator's
                # switch hook; a positive stall behaves as a Compute op.
                space = spaces[op[1]]
                if ctx.flush_on_switch:
                    for tlb_set in tlb_sets:
                        tlb_set.clear()
                    tlb.flushes += 1
                    out.mmu_flushes += 1
                cur_asid = space.asid
                cur_table = space.page_table
                cur_page_size = space.page_size
                cur_shift = cur_page_size.bit_length() - 1
                cur_mask = cur_page_size - 1
                cur_vpn_limit = space.vpn_limit
                cur_pte_bytes = space.pte_bytes
                cur_levels = space.expected_levels
                recent_misses.clear()
                prefetch_score = 16
                out.context_switches += 1
                stall = ctx.on_switch_cost() if ctx.on_switch_cost else 0
                if stall > 0:
                    c_compute += stall
                    push(heap, (now + stall, seq, 0, None))
                    seq += 1
                    break
                # zero-stall switch: fall through to the next program op
        else:   # _EV_WALK_STEP (per-level overhead elapsed; walk_do inlined)
            request, addresses, level, started_at = payload
            if level >= len(addresses):
                walk_finish(request, addresses, started_at)
            else:
                c_levels += 1
                c_bus_requests += 1
                c_breq_w += 1
                bus_queue_w.append(((_REQ_WALK, addresses[level],
                                     request[2].pte_bytes, False, request,
                                     addresses, level, started_at), now))
                if not bus_busy:
                    # Bus grant, inlined (walker queue is non-empty).
                    cand_w = inflight_w < bus_max_inflight
                    cand_m = bus_queue_m and inflight_m < bus_max_inflight
                    if cand_w or cand_m:
                        bus_busy = True
                        if cand_w and cand_m:
                            lo, hi = ((walker_master, memif_master)
                                      if walker_master < memif_master
                                      else (memif_master, walker_master))
                            chosen = (lo if (bus_last < lo or bus_last >= hi)
                                      else hi)
                        elif cand_w:
                            chosen = walker_master
                        else:
                            chosen = memif_master
                        bus_last = chosen
                        if chosen == walker_master:
                            gpayload, issued = bus_queue_w.popleft()
                            inflight_w += 1
                        else:
                            gpayload, issued = bus_queue_m.popleft()
                            inflight_m += 1
                        wait = now - issued
                        qw_cnt += 1
                        qw_tot += wait
                        if wait < qw_min:
                            qw_min = wait
                        if wait > qw_max:
                            qw_max = wait
                        if wait > 0:
                            c_contended += 1
                        beats = (gpayload[2] + bus_width - 1) // bus_width
                        if beats < 1:
                            beats = 1
                        occupancy = addr_phase + beats
                        c_busy += occupancy
                        push(heap, (now + occupancy, seq, 3,
                                    (chosen, gpayload)))
                        seq += 1

    if finish < 0:
        raise SimulationError(
            "replay quiesced without completing the thread "
            f"(outstanding={outstanding}, pc={pc}/{nops})")

    # Write the inlined TLB state back to the real object.
    tlb._tick = tick
    tlb.hits = tlb_hits
    tlb.misses = tlb_misses
    tlb.evictions = tlb_evictions

    # Fold the localized counters back into the output record.
    out.translations = c_translations
    out.tlb_hits = c_mmu_hits
    out.tlb_misses = c_mmu_misses
    out.tlb_refills = c_refills
    out.transactions = c_transactions
    out.mem_ops = c_mem_ops
    out.mem_bytes = c_mem_bytes
    out.memif_ops = c_memif_ops
    out.memif_bytes = c_memif_bytes
    out.compute_cycles = c_compute
    out.bus_requests = c_bus_requests
    out.bus_requests_walker = c_breq_w
    out.bus_requests_memif = c_breq_m
    out.bus_busy_cycles = c_busy
    out.bus_contended_grants = c_contended
    out.dram_row_hits = c_row_hits
    out.dram_row_misses = c_row_misses
    out.dram_reads = c_reads
    out.dram_writes = c_writes
    out.dram_bytes_read = c_bytes_r
    out.dram_bytes_written = c_bytes_w
    out.walks_requested = c_walks_req
    out.levels_fetched = c_levels
    out.walks_completed = c_walks_done
    out.walks_faulted = c_walks_faulted
    out.walk_cycles = c_walk_cycles
    out.bus_queue_wait = _make_acc(qw_cnt, qw_tot, qw_min, qw_max)
    out.bus_latency_walker = _make_acc(blw_cnt, blw_tot, blw_min, blw_max)
    out.bus_latency_memif = _make_acc(blm_cnt, blm_tot, blm_min, blm_max)
    out.dram_latency = _make_acc(dl_cnt, dl_tot, dl_min, dl_max)
    out.stall_cycles = _make_acc(st_cnt, st_tot, st_min, st_max)
    out.queue_wait = _make_acc(wq_cnt, wq_tot, wq_min, wq_max)
    out.walk_latency = _make_acc(wl_cnt, wl_tot, wl_min, wl_max)
    out.miss_latency = _make_acc(ml_cnt, ml_tot, ml_min, ml_max)

    out.finish = finish
    out.last_cycle = now
    out.events = events
    return out
