"""Record/replay fast path: the second tier of two-tier execution.

The event tier (:mod:`repro.sim` + :mod:`repro.core.synthesis`) simulates
every memory operation through the full component graph.  This package
replays a *recorded* operation stream (:mod:`repro.sim.recorder`) through a
flattened micro-simulator (:mod:`repro.fastpath.engine`) that models the
set-associative ASID-tagged TLB, the radix page-table walker with per-level
cycle accounting, the stride prefetcher, and flush/context-switch semantics
with event-graph fidelity — same schedule calls, same order, identical
counters — at a fraction of the event tier's Python overhead.

Tier selection lives in the harness (``run_svm(..., tier=...)``) and the
experiment/CLI layers; this package only answers "can this run replay?"
(:func:`svm_replay_blockers` / :func:`mp_replay_blockers`) and "replay it"
(:func:`replay_svm` / :func:`replay_multiprocess`).
"""

from .engine import (ReplayContext, ReplayFault, ReplayOutput, ReplaySpace,
                     replay_fabric)
from .record import (build_program, clear_program_cache, program_for_plan,
                     program_for_workload, record_stats, split_chunks,
                     stream_for_ops)
from .replay import (TierUnavailable, mp_replay_blockers, replay_multiprocess,
                     replay_svm, svm_replay_blockers)

__all__ = [
    "ReplayContext", "ReplayFault", "ReplayOutput", "ReplaySpace",
    "replay_fabric",
    "build_program", "clear_program_cache", "program_for_plan",
    "program_for_workload", "record_stats", "split_chunks", "stream_for_ops",
    "TierUnavailable", "mp_replay_blockers", "replay_multiprocess",
    "replay_svm", "svm_replay_blockers",
]
