"""Tests for the wire format and the blob-store seam."""

import pickle

import pytest

from repro.dist import (DirBlobStore, MemoryBlobStore, SQLiteBroker,
                        WireError, WireVersionError, connect_broker)
from repro.dist import wire
from repro.dist.blobs import blob_digest, valid_digest
from repro.dist.broker import ClaimedJob, SweepTicket, WorkItem


# ---------------------------------------------------------------------------
# Blob stores
# ---------------------------------------------------------------------------
@pytest.fixture(params=["memory", "dir"])
def blob_store(request, tmp_path):
    if request.param == "memory":
        return MemoryBlobStore()
    return DirBlobStore(tmp_path / "blobs")


def test_blob_store_roundtrip(blob_store):
    store = blob_store
    data = b"\x80hello blob"
    digest = store.put(data)
    assert valid_digest(digest) and digest == blob_digest(data)
    assert digest in store
    assert store.get(digest) == data
    # Idempotent: same bytes, same digest, no error.
    assert store.put(data) == digest
    assert len(store) == 1


def test_blob_store_unknown_and_malformed_digests(tmp_path):
    for store in (MemoryBlobStore(), DirBlobStore(tmp_path / "blobs")):
        with pytest.raises(KeyError):
            store.get("0" * 64)
        with pytest.raises(KeyError):
            store.get("../../../etc/passwd")     # traversal-safe
        assert "not-a-digest" not in store


def test_dir_blob_store_shards_and_lists(tmp_path):
    store = DirBlobStore(tmp_path / "blobs")
    digests = {store.put(bytes([i]) * 10) for i in range(5)}
    assert set(store.digests()) == digests
    for digest in digests:
        assert (tmp_path / "blobs" / digest[:2] / digest).is_file()


# ---------------------------------------------------------------------------
# Envelope: version guard and field validation
# ---------------------------------------------------------------------------
def test_check_version_accepts_current_and_rejects_others():
    wire.check_version({"version": wire.WIRE_VERSION})
    for bad in ({"version": 999}, {"version": "1"}, {}, None, "x"):
        with pytest.raises(WireVersionError) as err:
            wire.check_version(bad)
        assert err.value.expected == wire.WIRE_VERSION
        assert "upgrade" in str(err.value)


def test_get_field_names_the_offending_field():
    with pytest.raises(WireError, match="'worker' is required"):
        wire.get_field({}, "worker", (str,))
    with pytest.raises(WireError, match="'total' must be an integer"):
        wire.get_field({"total": "five"}, "total", (int,))
    with pytest.raises(WireError, match="'lease' must not be a boolean"):
        wire.get_field({"lease": True}, "lease", (int, float))
    assert wire.get_field({"x": None}, "x", (str,), required=False,
                          default="d") == "d"
    assert err_field("worker") == "worker"


def err_field(name):
    try:
        wire.get_field({}, name, (str,))
    except WireError as exc:
        return exc.field


# ---------------------------------------------------------------------------
# Blob objects
# ---------------------------------------------------------------------------
def test_pack_blob_inlines_small_and_offloads_large():
    store = MemoryBlobStore()
    small = wire.pack_blob(b"tiny", store, inline_limit=1024)
    assert "inline" in small and len(store) == 0
    big = wire.pack_blob(b"x" * 2048, store, inline_limit=1024)
    assert big["blob"] == blob_digest(b"x" * 2048) and big["size"] == 2048
    assert len(store) == 1
    assert wire.unpack_blob(small) == b"tiny"
    assert wire.unpack_blob(big, store) == b"x" * 2048


def test_unpack_blob_rejects_bad_shapes():
    with pytest.raises(WireError, match="must be a blob object"):
        wire.unpack_blob("nope")
    with pytest.raises(WireError, match="invalid base64"):
        wire.unpack_blob({"inline": "!!!not base64!!!"})
    with pytest.raises(WireError, match="no blob store"):
        wire.unpack_blob({"blob": "0" * 64})
    with pytest.raises(WireError, match="unknown blob"):
        wire.unpack_blob({"blob": "0" * 64}, MemoryBlobStore())
    with pytest.raises(WireError, match="'inline' or 'blob'"):
        wire.unpack_blob({})


# ---------------------------------------------------------------------------
# Message bodies roundtrip
# ---------------------------------------------------------------------------
def test_work_item_roundtrip():
    item = WorkItem(key="k0", payload=pickle.dumps((min, 1)),
                    meta={"position": 3})
    decoded = wire.decode_work_item(wire.encode_work_item(item))
    assert decoded == item


def test_ticket_roundtrip():
    ticket = SweepTicket(sweep_id="abc", total=5, already_done=2,
                         done_keys=frozenset({"k1", "k0"}))
    decoded = wire.decode_ticket(wire.encode_ticket(ticket))
    assert decoded == ticket


def test_claim_roundtrip_through_store():
    store = MemoryBlobStore()
    claim = ClaimedJob(sweep_id="s", position=2, key="k",
                       payload=b"\x80" * 4096, attempts=2,
                       lease_expiry=123.5)
    encoded = wire.encode_claim(claim, store, inline_limit=64)
    assert "blob" in encoded["payload"]          # forced through the store
    assert wire.decode_claim(encoded, store) == claim


def test_result_row_roundtrip_and_state_validation():
    payload = pickle.dumps({"cycles": 42})
    encoded = wire.encode_result_row(1, "k", "done", {"coords": {}}, None,
                                     "w0", payload)
    result = wire.decode_result_row(encoded)
    assert result.position == 1 and result.value == {"cycles": 42}
    assert result.worker == "w0" and result.error is None

    failed = wire.encode_result_row(2, "k2", "failed", None, "boom", None,
                                    None)
    assert "value" not in failed
    decoded = wire.decode_result_row(failed)
    assert decoded.state == "failed" and decoded.value is None

    with pytest.raises(WireError, match="'state' must be one of"):
        wire.decode_result_row({**encoded, "state": "leased"})


def test_decode_positions_validates_integer_arrays():
    assert wire.decode_positions({"positions": [3, 1]}) == [3, 1]
    assert wire.decode_positions({}) is None
    with pytest.raises(WireError, match="array of integers"):
        wire.decode_positions({"positions": [1, "two"]})
    with pytest.raises(WireError, match="array of integers"):
        wire.decode_positions({"positions": [True]})


# ---------------------------------------------------------------------------
# connect_broker URL parsing
# ---------------------------------------------------------------------------
def test_connect_broker_sqlite_forms(tmp_path):
    for url in (str(tmp_path / "a.db"),
                f"sqlite://{tmp_path / 'b.db'}",
                f"SQLITE://{tmp_path / 'c.db'}"):
        broker = connect_broker(url)
        assert isinstance(broker, SQLiteBroker)
        broker.close()


def test_connect_broker_passes_options(tmp_path):
    broker = connect_broker(str(tmp_path / "a.db"), lease_seconds=7.0)
    assert broker.lease_seconds == 7.0
    broker.close()


def test_connect_broker_rejects_unknown_scheme_and_empty_path():
    with pytest.raises(ValueError, match="unknown broker URL scheme"):
        connect_broker("redis://localhost:6379")
    with pytest.raises(ValueError, match="names no database path"):
        connect_broker("sqlite://")


def test_connect_broker_http_is_lazy():
    from repro.dist import HTTPBroker
    broker = connect_broker("http://127.0.0.1:1")   # no network touched
    assert isinstance(broker, HTTPBroker)
    assert broker.url == "http://127.0.0.1:1"


def test_register_broker_scheme_extends_the_registry(tmp_path):
    from repro.dist import broker_schemes, register_broker_scheme

    calls = {}

    def factory(url, **options):
        calls["url"] = url
        return SQLiteBroker(tmp_path / "fake.db")

    register_broker_scheme("fake", factory)
    try:
        broker = connect_broker("fake://whatever")
        assert calls["url"] == "fake://whatever"
        assert "fake" in broker_schemes()
        broker.close()
    finally:
        from repro.dist.broker import _BROKER_SCHEMES
        _BROKER_SCHEMES.pop("fake", None)


# ---------------------------------------------------------------------------
# SQLiteBroker behind the blob seam
# ---------------------------------------------------------------------------
def test_sqlite_broker_offloads_large_payloads(tmp_path):
    store = MemoryBlobStore()
    broker = SQLiteBroker(tmp_path / "b.db", blobs=store, inline_limit=64)
    try:
        payload = pickle.dumps((min, list(range(200))))
        assert len(payload) > 64
        broker.create_sweep([WorkItem(key="k0", payload=payload)])
        assert len(store) == 1                   # payload went to the store
        claim = broker.claim("w1")
        assert claim.payload == payload          # transparently rehydrated
        broker.complete(claim.key, list(range(200)), worker="w1")
        assert len(store) == 2                   # the value pickle too
        (result,) = broker.fetch_results(claim.sweep_id)
        assert result.value == list(range(200))
    finally:
        broker.close()


def test_sqlite_broker_complete_bytes_matches_complete(tmp_path):
    broker = SQLiteBroker(tmp_path / "b.db")
    try:
        broker.create_sweep([WorkItem(key="k0", payload=b"\x80x")])
        raw = pickle.dumps({"cycles": 9})
        assert broker.complete_bytes("k0", raw, worker="w1") is True
        assert broker.complete_bytes("k0", raw, worker="w2") is False
        (result,) = broker.fetch_results(broker.sweeps()[0]["sweep_id"])
        assert result.value == {"cycles": 9} and result.worker == "w1"
    finally:
        broker.close()


def test_sqlite_broker_fetch_result_rows_returns_raw_bytes(tmp_path):
    broker = SQLiteBroker(tmp_path / "b.db")
    try:
        ticket = broker.create_sweep([WorkItem(key="k0", payload=b"\x80x")])
        raw = pickle.dumps(1234)
        broker.complete_bytes("k0", raw)
        ((_, key, state, _, _, _, blob),) = broker.fetch_result_rows(
            ticket.sweep_id)
        assert key == "k0" and state == "done" and blob == raw
        ((_, _, _, _, _, _, none),) = broker.fetch_result_rows(
            ticket.sweep_id, values=False)
        assert none is None
    finally:
        broker.close()
