"""Tests for the pluggable execution-model registry (repro.models).

The headline property: a fifth model registers and runs through jobs,
``compare()``, sweeps and the CLI without modifying ``exec/jobs.py``,
``eval/harness.py`` or ``cli.py``.
"""

import pickle

import pytest

from repro.eval.harness import HarnessConfig, compare
from repro.eval.sweep import Grid
from repro.exec.jobs import ExperimentJob, run_job
from repro.models import (
    CANONICAL_MODELS,
    DuplicateModelError,
    RunOutcome,
    UnknownModelError,
    get_model,
    register_model,
    registered_models,
    unregister_model,
)
from repro.workloads import workload

TINY = workload("vecadd", scale="tiny")


# ---------------------------------------------------------------------------
# Registry basics and error paths
# ---------------------------------------------------------------------------
def test_canonical_models_are_registered():
    assert set(CANONICAL_MODELS) <= set(registered_models())
    for name in CANONICAL_MODELS:
        assert get_model(name).name == name


def test_unknown_model_lookup_raises_with_known_names():
    with pytest.raises(UnknownModelError, match="warpdrive"):
        get_model("warpdrive")
    with pytest.raises(UnknownModelError, match="svm"):
        get_model("warpdrive")


def test_duplicate_registration_raises():
    with pytest.raises(DuplicateModelError, match="svm"):
        @register_model("svm")
        class Clashing:
            def run(self, spec, config=None, num_threads=1):
                raise NotImplementedError


def test_register_rejects_bad_names_and_runless_models():
    with pytest.raises(ValueError):
        register_model("")
    with pytest.raises(TypeError):
        register_model("runless")(object())
    assert "runless" not in registered_models()


def test_unregister_unknown_model_raises():
    with pytest.raises(UnknownModelError):
        unregister_model("never_registered")


def test_job_construction_validates_kind_against_registry():
    with pytest.raises(UnknownModelError):
        ExperimentJob("warpdrive", TINY, HarnessConfig())
    with pytest.raises(ValueError):
        ExperimentJob("svm", TINY, HarnessConfig(), num_threads=0)


# ---------------------------------------------------------------------------
# RunOutcome schema
# ---------------------------------------------------------------------------
def test_run_outcomes_are_uniform_and_picklable():
    config = HarnessConfig(tlb_entries=16)
    for name in CANONICAL_MODELS:
        outcome = run_job(ExperimentJob(name, TINY, config))
        assert isinstance(outcome, RunOutcome)
        assert outcome.model == name
        assert outcome.total_cycles >= outcome.fabric_cycles > 0
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone == outcome


def test_run_outcome_marshalling_and_translation_fields():
    config = HarnessConfig(tlb_entries=16)
    svm = run_job(ExperimentJob("svm", TINY, config))
    assert svm.tlb_hit_rate > 0 and svm.tlb_misses > 0
    assert svm.marshalling_cycles == 0
    copydma = run_job(ExperimentJob("copydma", TINY, config))
    assert copydma.tlb_hit_rate == 0.0
    assert copydma.marshalling_cycles == (
        copydma.breakdown["alloc_cycles"]
        + copydma.breakdown["copy_in_cycles"]
        + copydma.breakdown["copy_out_cycles"])
    assert copydma.total_cycles == (copydma.marshalling_cycles
                                    + copydma.fabric_cycles)


def test_run_outcome_rejects_negative_cycles():
    with pytest.raises(ValueError):
        RunOutcome(model="x", total_cycles=-1, fabric_cycles=0)


# ---------------------------------------------------------------------------
# The fifth model: register and sweep without touching any existing module
# ---------------------------------------------------------------------------
@pytest.fixture
def toy_model():
    """A deterministic fake model registered for the duration of one test."""

    @register_model("toy")
    class ToyModel:
        """Closed-form model: one cycle per item, flat thread scaling."""

        def run(self, spec, config=None, num_threads=1):
            cycles = spec.work_items * num_threads
            return RunOutcome(model="toy", total_cycles=cycles + 100,
                              fabric_cycles=cycles)

    yield ToyModel
    unregister_model("toy")


def test_fifth_model_runs_as_a_job(toy_model):
    outcome = run_job(ExperimentJob("toy", TINY, None, num_threads=2))
    assert outcome.model == "toy"
    assert outcome.fabric_cycles == TINY.work_items * 2


def test_fifth_model_through_compare(toy_model):
    result = compare(TINY, HarnessConfig(tlb_entries=16),
                     models=CANONICAL_MODELS + ("toy",))
    row = result.as_row()
    assert row["toy"] == TINY.work_items + 100   # extra column, no new code
    assert row["speedup_sw"] > 0                 # canonical metrics intact
    assert result["toy"].model == "toy"


def test_fifth_model_through_a_sweep(toy_model):
    sizes = (128, 256)
    grid = Grid(n=sizes, model=("toy",))
    sweep = grid.sweep(lambda n, model: ExperimentJob(
        model, workload("vecadd", scale="tiny", n=n), None))
    outcomes = sweep.run()
    assert outcomes.series("n", "fabric_cycles", model="toy") == list(sizes)


def test_fifth_model_visible_to_cli(toy_model, capsys):
    from repro.cli import main
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "toy" in out and "Closed-form model" in out
