"""Oracle suite for the adaptive DSE explorers (``repro.dse``).

The contract pinned here: on fidelity-consistent ladders — every cheap
rung's objectives a strictly monotone transform of the full-fidelity ones —
successive halving with a sufficient budget recovers the exhaustive Pareto
front *bit-exactly*; under any budget it never exceeds the cap and the same
seed replays the identical evaluation sequence; and rows adopted from a
results store (warm starts) are never re-dispatched.  The synthetic oracle
is hypothesis-randomized; a pinned real fig14 sub-space plus a differential
re-run of its front against the raw stats-registry counters then ties the
oracle to the actual telemetry plumbing.
"""

import functools
import itertools
import math
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dse import DesignSpaceExplorer, SweepAxes, pareto_front
from repro.core.resources import ResourceEstimate
from repro.core.spec import SystemSpec, ThreadSpec
from repro.dse import (BudgetExhaustedError, DesignSpace, DseObjectives,
                       Exploration, ExplorationPoint, FidelityRung,
                       SuccessiveHalvingExplorer, evaluation_metrics,
                       explorer_names, get_explorer, pareto_points)
from repro.exec import SweepRunner, stable_key
from repro.store import ResultsStore

OBJ = DseObjectives(("cycles", "luts"))


# ---------------------------------------------------------------------------
# Synthetic spaces
# ---------------------------------------------------------------------------
def _hash_eval(candidate, factor=1):
    """Deterministic synthetic objectives (module-level: content-addressable,
    so warm-start keys and runner memo keys both work)."""
    basis = sum((i + 1) * int(v)
                for i, (_, v) in enumerate(sorted(candidate.items())))
    return {"cycles": factor * ((basis * 7919) % 23),
            "luts": factor * ((basis * 104729 + 5) % 19)}


HASH_AXES = {"tlb": (0, 1, 2, 3), "burst": (0, 1, 2), "walker": (0, 1)}


def _hash_space(factors=(1, 10)):
    """24-candidate space whose cheap rung is full-values scaled by 1/10."""
    ladder = tuple(
        FidelityRung(f"x{factor}", functools.partial(_hash_eval,
                                                     factor=factor))
        for factor in factors)
    return DesignSpace.from_axes(HASH_AXES, ladder)


def _table_space(axes, table, scales=(1, 7)):
    """Space over ``axes`` whose full-fidelity objectives come from
    ``table`` (one (cycles, luts) pair per candidate, in grid order) and
    whose cheaper rungs are monotone scalings of them."""
    names = list(axes)
    index = {}
    for i, values in enumerate(itertools.product(*(axes[n] for n in names))):
        index[tuple(sorted(zip(names, values)))] = table[i]

    def rung(scale):
        def evaluate(candidate):
            cycles, luts = index[tuple(sorted(candidate.items()))]
            return {"cycles": scale * cycles, "luts": scale * luts}
        return FidelityRung(f"scale{scale}", evaluate)

    return DesignSpace.from_axes(axes, tuple(rung(s) for s in scales))


@st.composite
def synthetic_spaces(draw):
    """Small randomized grids with heavily tie-prone objective tables."""
    sizes = draw(st.lists(st.integers(min_value=2, max_value=3),
                          min_size=1, max_size=3))
    axes = {f"k{i}": tuple(range(n)) for i, n in enumerate(sizes)}
    total = math.prod(sizes)
    table = draw(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                          min_size=total, max_size=total))
    return axes, table


def _front_key(exploration):
    return [(p.coords, p.values) for p in exploration.front]


# ---------------------------------------------------------------------------
# Oracle: halving recovers the exhaustive front bit-exactly
# ---------------------------------------------------------------------------
class TestOracleFrontRecovery:
    @given(case=synthetic_spaces(), seed=st.integers(0, 2**16))
    @settings(max_examples=120, deadline=None)
    def test_sufficient_budget_recovers_exhaustive_front(self, case, seed):
        axes, table = case
        space = _table_space(axes, table)
        exhaustive = get_explorer("exhaustive").explore(space, objectives=OBJ)
        budget = len(space.ladder) * space.size()   # never subsamples
        adaptive = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=budget, seed=seed)
        assert _front_key(adaptive) == _front_key(exhaustive)

    @given(case=synthetic_spaces(), seed=st.integers(0, 2**16),
           data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_budget_is_a_hard_cap_and_seed_replays_the_log(self, case, seed,
                                                           data):
        axes, table = case
        space = _table_space(axes, table)
        budget = data.draw(st.integers(min_value=len(space.ladder),
                                       max_value=2 * space.size()))
        first = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=budget, seed=seed)
        again = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=budget, seed=seed)
        assert first.evaluations <= budget
        assert len(first.log) == first.evaluations
        assert first.log == again.log
        assert _front_key(first) == _front_key(again)

    @pytest.mark.parametrize("margin", [0.0, 0.5, 1.0, 3.0])
    def test_margin_never_changes_an_unsampled_front(self, margin):
        # Every true-front candidate is on every round's front under a
        # monotone ladder, so it survives regardless of the margin.
        space = _hash_space()
        exhaustive = get_explorer("exhaustive").explore(space, objectives=OBJ)
        adaptive = SuccessiveHalvingExplorer(margin=margin).explore(
            space, objectives=OBJ, budget=len(space.ladder) * space.size())
        assert _front_key(adaptive) == _front_key(exhaustive)

    def test_unlimited_budget_matches_exhaustive(self):
        space = _hash_space()
        adaptive = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=None)
        exhaustive = get_explorer("exhaustive").explore(space, objectives=OBJ)
        assert _front_key(adaptive) == _front_key(exhaustive)
        # Trusted points are full-fidelity only.
        assert all(p.fidelity == space.full.name for p in adaptive.points)

    def test_three_rung_ladder_recovers_the_front_too(self):
        space = _hash_space(factors=(1, 3, 9))
        exhaustive = get_explorer("exhaustive").explore(space, objectives=OBJ)
        adaptive = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=3 * space.size())
        assert _front_key(adaptive) == _front_key(exhaustive)


# ---------------------------------------------------------------------------
# Budget errors, registry, bookkeeping
# ---------------------------------------------------------------------------
class TestBudgetsAndRegistry:
    def test_exhaustive_raises_when_budget_cannot_cover_the_pool(self):
        space = _hash_space()
        with pytest.raises(BudgetExhaustedError):
            get_explorer("exhaustive").explore(space, objectives=OBJ,
                                               budget=space.size() - 1)

    def test_halving_raises_when_budget_is_below_the_ladder_depth(self):
        space = _hash_space()        # two rungs
        with pytest.raises(BudgetExhaustedError):
            get_explorer("successive-halving").explore(space, objectives=OBJ,
                                                       budget=1)

    def test_registry_lists_both_backends(self):
        assert explorer_names() == ["exhaustive", "successive-halving"]

    def test_get_explorer_rejects_unknowns_and_passes_instances_through(self):
        with pytest.raises(KeyError, match="successive-halving"):
            get_explorer("simulated-annealing")
        backend = SuccessiveHalvingExplorer()
        assert get_explorer(backend) is backend
        with pytest.raises(TypeError):
            get_explorer(42)

    def test_negative_margin_is_rejected(self):
        with pytest.raises(ValueError):
            SuccessiveHalvingExplorer(margin=-0.1)

    def test_as_dict_summarizes_the_exploration(self):
        space = _hash_space()
        budget = 2 * space.size()
        summary = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=budget).as_dict()
        assert summary["objectives"] == ["cycles", "luts"]
        assert summary["space_size"] == space.size()
        assert summary["budget"] == budget
        assert summary["explored_fraction"] == round(
            summary["evaluations"] / space.size(), 6)
        assert [r["fidelity"] for r in summary["rounds"]] == ["x1", "x10"]
        for row in summary["front"]:
            assert set(row) == {"params", "source", "cycles", "luts"}


# ---------------------------------------------------------------------------
# Objectives
# ---------------------------------------------------------------------------
class TestObjectives:
    def test_axes_must_be_nonempty_and_unique(self):
        with pytest.raises(ValueError):
            DseObjectives(())
        with pytest.raises(ValueError):
            DseObjectives(("cycles", "cycles"))

    def test_missing_axis_names_the_axis(self):
        with pytest.raises(KeyError, match="fairness"):
            DseObjectives(("cycles", "fairness")).extract({"cycles": 1})

    def test_fairness_is_maximized(self):
        objectives = DseObjectives(("cycles", "fairness"))
        fair = ExplorationPoint((("i", 0),), (100, 0.9), "full")
        unfair = ExplorationPoint((("i", 1),), (100, 0.5), "full")
        assert objectives.dominates(fair.values, unfair.values)
        assert not objectives.dominates(unfair.values, fair.values)
        assert pareto_points([unfair, fair], objectives) == [fair]

    def test_extract_aliases_total_cycles_to_cycles(self):
        values = OBJ.extract({"total_cycles": 123, "luts": 4})
        assert values == (123, 4)

    def test_metrics_from_legacy_runtime_resources_tuple(self):
        metrics = evaluation_metrics((456, ResourceEstimate(luts=7,
                                                            bram_kb=1.5)))
        assert metrics["cycles"] == 456
        assert metrics["luts"] == 7
        assert metrics["bram_kb"] == 1.5

    def test_metrics_from_outcome_derive_telemetry_objectives(self):
        outcome = SimpleNamespace(
            total_cycles=2000, fabric_cycles=1500, tlb_misses=9, faults=2,
            breakdown={"miss_stall_cycles": 40, "epochs": 3,
                       "host_tlb_refills": 6, "epoch_fairness": 0.75})
        metrics = evaluation_metrics(outcome)
        assert metrics["cycles"] == 2000
        assert metrics["miss_stall_cycles"] == 40
        assert metrics["host_refill_rate"] == 1000.0 * 6 / 2000
        assert metrics["fairness"] == 0.75

    def test_metrics_reject_unrecognized_payloads(self):
        with pytest.raises(TypeError):
            evaluation_metrics("not an evaluation")


# ---------------------------------------------------------------------------
# Warm starts from the results store
# ---------------------------------------------------------------------------
def _seed_store(store, space, indices):
    full = space.full.evaluator
    for i in indices:
        store.record(stable_key(full, space.candidates[i]),
                     full(space.candidates[i]), experiment="seed",
                     coords=dict(space.coords[i]))


class TestWarmStart:
    def test_store_rows_are_adopted_and_never_redispatched(self, tmp_path):
        space = _hash_space()
        store = ResultsStore(tmp_path / "results.db")
        seeded = (0, 5, 11)
        _seed_store(store, space, seeded)
        exploration = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=2 * space.size(), results=store)
        assert exploration.warm_hits == 3
        warm_coords = {space.coords[i] for i in seeded}
        assert warm_coords.isdisjoint(c for _, c in exploration.log)
        assert ({p.coords for p in exploration.points
                 if p.source == "warm-start"} == warm_coords)
        cold = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=2 * space.size())
        assert _front_key(exploration) == _front_key(cold)

    def test_fully_seeded_store_needs_zero_budget(self, tmp_path):
        space = _hash_space()
        store = ResultsStore(tmp_path / "results.db")
        _seed_store(store, space, range(space.size()))
        for name in explorer_names():
            exploration = get_explorer(name).explore(
                space, objectives=OBJ, budget=0, results=store)
            assert exploration.evaluations == 0
            assert exploration.warm_hits == space.size()
            assert _front_key(exploration) == _front_key(
                get_explorer("exhaustive").explore(space, objectives=OBJ))

    def test_rows_from_other_package_versions_are_ignored(self, tmp_path,
                                                          monkeypatch):
        space = _hash_space()
        store = ResultsStore(tmp_path / "results.db")
        _seed_store(store, space, range(space.size()))
        monkeypatch.setattr("repro.__version__", "0.0.0+stale")
        exploration = get_explorer("exhaustive").explore(
            space, objectives=OBJ, results=store)
        assert exploration.warm_hits == 0
        assert exploration.evaluations == space.size()

    def test_non_addressable_evaluators_disable_warm_start_cleanly(
            self, tmp_path):
        store = ResultsStore(tmp_path / "results.db")
        space = DesignSpace.from_axes(
            {"k": (0, 1, 2)},
            (FidelityRung("full", lambda c: {"cycles": c["k"], "luts": 1}),))
        exploration = get_explorer("exhaustive").explore(
            space, objectives=OBJ, results=store)
        assert exploration.warm_hits == 0
        assert exploration.evaluations == 3

    def test_runner_recorded_results_warm_start_the_next_exploration(
            self, tmp_path):
        space = _hash_space()
        store = ResultsStore(tmp_path / "results.db")
        runner = SweepRunner(results=store)
        first = get_explorer("successive-halving").explore(
            space, objectives=OBJ, runner=runner, budget=2 * space.size(),
            results=store)
        full_evals = {c for rung, c in first.log if rung == space.full.name}
        assert runner.stats.explore_evaluations == first.evaluations
        again = get_explorer("successive-halving").explore(
            space, objectives=OBJ, budget=2 * space.size(), results=store)
        assert again.warm_hits == len(full_evals)
        assert {c for _, c in again.log}.isdisjoint(full_evals)
        assert _front_key(again) == _front_key(first)


# ---------------------------------------------------------------------------
# Runner budget accounting
# ---------------------------------------------------------------------------
class TestRunnerAccounting:
    def test_runner_stats_mirror_the_exploration(self):
        runner = SweepRunner()
        space = _hash_space()
        exploration = get_explorer("successive-halving").explore(
            space, objectives=OBJ, runner=runner, budget=2 * space.size())
        assert runner.stats.explore_evaluations == exploration.evaluations
        assert runner.stats.explore_warm_hits == 0
        summary = runner.stats.as_dict()
        assert summary["explore_evaluations"] == exploration.evaluations
        assert summary["explore_warm_hits"] == 0

    def test_runner_and_serial_paths_agree(self):
        space = _hash_space()
        serial = get_explorer("exhaustive").explore(space, objectives=OBJ)
        threaded = get_explorer("exhaustive").explore(
            space, objectives=OBJ, runner=SweepRunner(jobs=2))
        assert _front_key(serial) == _front_key(threaded)
        assert serial.log == threaded.log


# ---------------------------------------------------------------------------
# Core DSE integration (the classic grid and the adaptive path agree)
# ---------------------------------------------------------------------------
def _spec_eval(spec):
    thread = spec.threads[0]
    runtime = (thread.tlb_entries * 11 + thread.max_burst_bytes
               + (37 if spec.shared_walker else 0))
    luts = 4 * thread.tlb_entries + (64 if spec.shared_walker else 128)
    return runtime, ResourceEstimate(luts=luts)


CORE_AXES = SweepAxes(tlb_entries=(8, 16, 32), max_burst_bytes=(64, 256),
                      max_outstanding=(2,), shared_walker=(False, True),
                      tlb_prefetch=(0,))


def _core_base():
    return SystemSpec(name="oracle",
                      threads=[ThreadSpec(name="hwt0", kernel="vecadd")])


class TestCoreExplorerIntegration:
    def test_adaptive_exhaustive_matches_the_legacy_grid_bit_for_bit(self):
        explorer = DesignSpaceExplorer(_spec_eval)
        legacy = explorer.explore(_core_base(), CORE_AXES)
        adaptive = explorer.explore(_core_base(), CORE_AXES,
                                    explorer="exhaustive")
        assert isinstance(adaptive, Exploration)
        assert ([p.values for p in adaptive.points]
                == [(pt.runtime_cycles, pt.luts) for pt in legacy])
        assert ([p.coords for p in adaptive.points]
                == [tuple(sorted(pt.parameters)) for pt in legacy])
        legacy_front = {(tuple(sorted(pt.parameters)),
                         (pt.runtime_cycles, pt.luts))
                        for pt in pareto_front(legacy)}
        assert set(_front_key(adaptive)) == legacy_front

    def test_budgeted_halving_through_the_core_api(self):
        explorer = DesignSpaceExplorer(_spec_eval)
        budget = CORE_AXES.size() // 2
        exploration = explorer.explore(_core_base(), CORE_AXES,
                                       explorer="successive-halving",
                                       budget=budget, seed=3)
        assert exploration.evaluations <= budget
        assert exploration.front      # something survives

    def test_core_budget_overrun_raises(self):
        explorer = DesignSpaceExplorer(_spec_eval)
        with pytest.raises(BudgetExhaustedError):
            explorer.explore(_core_base(), CORE_AXES, explorer="exhaustive",
                             budget=3)


# ---------------------------------------------------------------------------
# Pinned real space: fig14 telemetry objectives, end to end
# ---------------------------------------------------------------------------
#: Small-but-real corner of the fig14 space (8 candidates, every policy
#: adaptive so telemetry objectives are always defined).
FIG14_PINNED_AXES = {
    "tlb_entries": (8, 32),
    "tlb_associativity": (4,),
    "max_outstanding": (4,),
    "max_burst_bytes": (256,),
    "shared_walker": (False,),
    "tlb_prefetch": (0, 1),
    "policy": ("adaptive-fault", "miss-fair"),
    "processes": (2,),
    "quantum": (5_000,),
}


@pytest.fixture(scope="module")
def fig14_pinned():
    from repro.eval import experiments as exp
    adaptive = exp.fig14_adaptive_dse(axes=FIG14_PINNED_AXES, budget=24,
                                      seed=0)
    exhaustive = exp.fig14_adaptive_dse(axes=FIG14_PINNED_AXES,
                                        explorer="exhaustive", budget=None)
    return adaptive, exhaustive


class TestFig14Pinned:
    def test_default_space_is_large_and_the_budget_is_tiny(self):
        from repro.eval.experiments import EXPERIMENTS, FIG14_AXES
        size = math.prod(len(v) for v in FIG14_AXES.values())
        assert size >= 100_000
        budget = EXPERIMENTS["fig14"].defaults["budget"]
        assert budget <= 0.05 * size

    def test_halving_recovers_the_exhaustive_front_on_a_real_space(
            self, fig14_pinned):
        adaptive, exhaustive = fig14_pinned
        assert adaptive["front"] == exhaustive["front"]
        assert adaptive["evaluations"] <= adaptive["budget"]
        assert exhaustive["evaluations"] == 8

    def test_front_objectives_agree_with_a_direct_rerun(self, fig14_pinned):
        # Differential oracle: every telemetry-derived objective on the
        # front must equal what the raw stats registry + telemetry trace of
        # an independent re-run of that candidate report.
        from repro.eval.harness import HarnessConfig, run_multiprocess
        from repro.os.telemetry import epoch_fairness
        from repro.sim.stats import sum_matching
        from repro.workloads.multiprocess import MultiProcessSpec
        from repro.workloads.suite import workload

        adaptive, _ = fig14_pinned
        assert adaptive["front"], "pinned space must yield a front"
        for row in adaptive["front"]:
            params = row["params"]
            count = params["processes"]
            specs = [workload("random_access", scale="tiny", residency=0.5,
                              seed=7)]
            specs += [workload("vecadd", scale="tiny", residency=0.5,
                               seed=11 + i) for i in range(count - 1)]
            mp = MultiProcessSpec(name=f"fig14-{count}p", specs=tuple(specs),
                                  quantum=params["quantum"],
                                  policy=params["policy"])
            config = HarnessConfig(
                tlb_entries=params["tlb_entries"],
                tlb_associativity=params["tlb_associativity"],
                max_outstanding=params["max_outstanding"],
                max_burst_bytes=params["max_burst_bytes"],
                shared_walker=params["shared_walker"],
                tlb_prefetch=params["tlb_prefetch"],
                host_shares_tlb=True)
            result = run_multiprocess(mp, config, flush_on_switch=False)
            snapshot = result.system_result.stats
            assert row["cycles"] == result.total_cycles
            assert row["miss_stall_cycles"] == sum_matching(
                snapshot, "mmu.", "miss_latency.total")
            refills = result.telemetry.totals()["host_tlb_refills"]
            assert refills == snapshot.get("os.kernel.host_tlb_refills", 0)
            assert row["host_refill_rate"] == (1000.0 * refills
                                               / result.total_cycles)
            assert row["fairness"] == epoch_fairness(result.telemetry)
