"""Unit tests for the hardware page-table walker."""

import pytest

from repro.mem.dram import DRAMModel
from repro.mem.bus import SystemBus
from repro.mem.port import LatencyPipe
from repro.sim.engine import Simulator
from repro.vm.pagetable import PageTable, PageTableConfig
from repro.vm.walker import PageTableWalker, WalkerConfig


def make_walker(levels=2, with_port=True, latency=10):
    sim = Simulator()
    table = PageTable(PageTableConfig(levels=levels))
    port = LatencyPipe(sim, latency=latency) if with_port else None
    walker = PageTableWalker(sim, port=port)
    return sim, table, walker, port


def test_walk_returns_mapped_entry():
    sim, table, walker, _ = make_walker()
    table.map(vpn=4, frame=44)
    results = []
    walker.walk(4, table, lambda entry, cycles: results.append((entry, cycles)))
    sim.run()
    entry, cycles = results[0]
    assert entry is not None and entry.frame == 44
    assert cycles > 0
    assert walker.stats.counter("walks_completed").value == 1


def test_walk_issues_one_memory_read_per_level():
    for levels in (1, 2, 3):
        sim, table, walker, port = make_walker(levels=levels)
        table.map(vpn=1, frame=1)
        walker.walk(1, table, lambda e, c: None)
        sim.run()
        assert len(port.requests) == levels
        assert all(not r.is_write for r in port.requests)


def test_walk_unmapped_leaf_returns_none():
    sim, table, walker, _ = make_walker()
    table.map(vpn=100, frame=1)      # creates intermediate node
    results = []
    walker.walk(101, table, lambda entry, cycles: results.append(entry))
    sim.run()
    assert results == [None]
    assert walker.stats.counter("walks_faulted").value == 1


def test_walk_missing_intermediate_node_is_shorter_and_faults():
    sim, table, walker, port = make_walker()
    results = []
    walker.walk(0x55555, table, lambda entry, cycles: results.append(entry))
    sim.run()
    assert results == [None]
    assert len(port.requests) == 1   # only the root level was readable


def test_serial_walker_queues_concurrent_walks():
    sim, table, walker, _ = make_walker(latency=50)
    for vpn in range(4):
        table.map(vpn, frame=vpn)
    finish_times = []
    for vpn in range(4):
        walker.walk(vpn, table, lambda e, c, now=sim: finish_times.append(now.now))
    assert walker.pending >= 1
    sim.run()
    assert len(finish_times) == 4
    assert finish_times == sorted(finish_times)
    assert len(set(finish_times)) == 4
    assert walker.stats.accumulators["queue_wait"].maximum > 0


def test_fixed_latency_mode_without_port():
    sim, table, walker, _ = make_walker(with_port=False)
    table.map(vpn=9, frame=9)
    results = []
    walker.walk(9, table, lambda entry, cycles: results.append(cycles))
    sim.run()
    cfg = walker.config
    expected_min = 2 * cfg.fixed_level_latency
    assert results[0] >= expected_min


def test_walker_through_real_memory_hierarchy():
    sim = Simulator()
    dram = DRAMModel(sim)
    bus = SystemBus(sim, dram)
    table = PageTable()
    walker = PageTableWalker(sim, port=bus.attach_master("ptw"))
    table.map(vpn=3, frame=33)
    results = []
    walker.walk(3, table, lambda entry, cycles: results.append((entry, cycles)))
    sim.run()
    entry, cycles = results[0]
    assert entry.frame == 33
    assert cycles > dram.config.row_miss_latency   # at least one DRAM access


def test_invalid_walker_config_rejected():
    with pytest.raises(ValueError):
        WalkerConfig(per_level_overhead=-1)
    with pytest.raises(ValueError):
        WalkerConfig(fixed_level_latency=-5)
