"""Tests for the declarative sweep API (repro.eval.sweep)."""

import pytest

from repro.eval.harness import HarnessConfig
from repro.eval.sweep import Grid, Point, Sweep, SweepOutcomes, make_coords
from repro.exec import MemoCache, SweepRunner
from repro.exec.jobs import ExperimentJob, run_job
from repro.workloads import workload


def _job(kernel="vecadd", entries=16, **spec_overrides):
    return ExperimentJob("svm", workload(kernel, scale="tiny", **spec_overrides),
                         HarnessConfig(tlb_entries=entries))


# ---------------------------------------------------------------------------
# Coordinates and points
# ---------------------------------------------------------------------------
def test_make_coords_is_order_independent():
    assert make_coords({"b": 2, "a": 1}) == make_coords({"a": 1, "b": 2})
    with pytest.raises(ValueError):
        make_coords({})


def test_make_coords_accepts_pair_iterables():
    # repro.dse candidates carry coords as sorted pair tuples already;
    # re-canonicalising them must be a no-op.
    pairs = (("b", 2), ("a", 1))
    assert make_coords(pairs) == make_coords({"a": 1, "b": 2})
    assert make_coords(make_coords(pairs)) == make_coords(pairs)
    with pytest.raises(ValueError):
        make_coords(())


def test_point_coord_lookup():
    point = Point(coords=make_coords({"kernel": "vecadd", "n": 4}), job=None)
    assert point.coord("n") == 4
    with pytest.raises(KeyError):
        point.coord("missing")


def test_sweep_rejects_duplicate_coordinates():
    sweep = Sweep()
    sweep.add(_job(), kernel="vecadd", tlb_entries=16)
    with pytest.raises(ValueError, match="duplicate"):
        sweep.add(_job(), tlb_entries=16, kernel="vecadd")
    assert len(sweep) == 1


# ---------------------------------------------------------------------------
# Grid expansion
# ---------------------------------------------------------------------------
def test_grid_expands_cartesian_product_in_declaration_order():
    grid = Grid(kernel=("vecadd", "saxpy"), tlb_entries=(8, 16))
    assert grid.size() == 4
    sweep = grid.sweep(lambda kernel, tlb_entries: _job(kernel, tlb_entries))
    coords = [dict(p.coords) for p in sweep.points]
    assert coords == [
        {"kernel": "vecadd", "tlb_entries": 8},
        {"kernel": "vecadd", "tlb_entries": 16},
        {"kernel": "saxpy", "tlb_entries": 8},
        {"kernel": "saxpy", "tlb_entries": 16},
    ]


def test_grid_factory_can_skip_points():
    grid = Grid(n=(1, 2, 3))
    sweep = grid.sweep(lambda n: None if n == 2 else _job())
    # Coordinates differ only in n, but n=2 was skipped.
    assert [p.coord("n") for p in sweep.points] == [1, 3]


def test_grid_validates_axes():
    with pytest.raises(ValueError):
        Grid()
    with pytest.raises(ValueError):
        Grid(kernel=())


# ---------------------------------------------------------------------------
# Coordinate-keyed outcomes
# ---------------------------------------------------------------------------
def test_outcomes_keyed_by_coords_match_positional_results():
    """The sweep regroups exactly as the old iter()/next() dance did."""
    kernels = ("vecadd", "random_access")
    tlb_sizes = (4, 16)
    specs = {k: workload(k, scale="tiny") for k in kernels}

    # Old style: flatten positionally, evaluate, regroup by arithmetic.
    jobs = [ExperimentJob("svm", specs[k], HarnessConfig(tlb_entries=e))
            for k in kernels for e in tlb_sizes]
    positional = SweepRunner(jobs=1).map(run_job, jobs)

    # New style: same grid, declared, keyed by coordinates.
    grid = Grid(kernel=kernels, tlb_entries=tlb_sizes)
    outcomes = grid.sweep(
        lambda kernel, tlb_entries: ExperimentJob(
            "svm", specs[kernel], HarnessConfig(tlb_entries=tlb_entries))).run()

    for i, kernel in enumerate(kernels):
        for j, entries in enumerate(tlb_sizes):
            expected = positional[i * len(tlb_sizes) + j]
            assert outcomes.get(kernel=kernel, tlb_entries=entries) == expected


def test_outcomes_lookup_and_errors():
    sweep = Sweep()
    sweep.add(_job(entries=8), entries=8)
    outcomes = sweep.run()
    assert outcomes.get(entries=8).total_cycles > 0
    with pytest.raises(KeyError, match="axes"):
        outcomes.get(entries=99)
    assert len(outcomes) == 1
    assert make_coords({"entries": 8}) in outcomes


def test_outcomes_axes_series_and_select():
    grid = Grid(kernel=("vecadd", "saxpy"), n=(256, 512))
    outcomes = grid.sweep(lambda kernel, n: _job(kernel, n=n)).run()

    assert outcomes.axes() == {"kernel": ["vecadd", "saxpy"], "n": [256, 512]}
    assert outcomes.axis("n") == [256, 512]
    with pytest.raises(KeyError):
        outcomes.axis("missing")

    cycles = outcomes.series("n", "total_cycles", kernel="vecadd")
    assert len(cycles) == 2 and all(c > 0 for c in cycles)
    # callable extraction
    doubled = outcomes.series("n", lambda o: 2 * o.total_cycles,
                              kernel="vecadd")
    assert doubled == [2 * c for c in cycles]
    # raw outcomes
    raw = outcomes.series("n", kernel="vecadd")
    assert [o.total_cycles for o in raw] == cycles

    sub = outcomes.select(kernel="saxpy")
    assert len(sub) == 2 and sub.axes()["n"] == [256, 512]
    assert sub.get(kernel="saxpy", n=256) == outcomes.get(kernel="saxpy", n=256)


def test_sweep_run_with_runner_matches_serial():
    grid = Grid(kernel=("vecadd",), tlb_entries=(4, 8))
    build = lambda kernel, tlb_entries: _job(kernel, tlb_entries)   # noqa: E731
    serial = grid.sweep(build).run()
    runner = SweepRunner(jobs=2, cache=MemoCache())
    parallel = grid.sweep(build).run(runner)
    assert serial.outcomes() == parallel.outcomes()
    assert runner.stats.points_submitted == 2


def test_outcomes_items_iterate_in_sweep_order():
    grid = Grid(n=(256, 128))
    outcomes = grid.sweep(lambda n: _job(n=n)).run()
    assert [coords["n"] for coords, _ in outcomes.items()] == [256, 128]
    assert [dict(c)["n"] for c in outcomes] == [256, 128]


def test_sweep_outcomes_requires_aligned_results():
    with pytest.raises(ValueError):
        SweepOutcomes([Point(make_coords({"a": 1}), None)], [])


# ---------------------------------------------------------------------------
# Canonical records and table rendering
# ---------------------------------------------------------------------------
def test_outcomes_to_records_emit_coords_plus_canonical_fields():
    from repro.models import RECORD_FIELDS

    grid = Grid(kernel=("vecadd",), tlb_entries=(4, 8))
    outcomes = grid.sweep(lambda kernel, tlb_entries:
                          _job(kernel, tlb_entries)).run()
    records = outcomes.to_records()
    assert len(records) == 2
    for record, (coords, outcome) in zip(records, outcomes.items()):
        assert record["kernel"] == coords["kernel"]
        assert record["tlb_entries"] == coords["tlb_entries"]
        assert record["total_cycles"] == outcome.total_cycles
        assert set(RECORD_FIELDS) <= set(record)


def test_outcomes_to_records_wrap_non_record_outcomes():
    outcomes = SweepOutcomes([Point(make_coords({"n": 1}), None)], [42])
    assert outcomes.to_records() == [{"n": 1, "value": 42}]


def test_outcomes_to_table_formats():
    import csv
    import io
    import json

    grid = Grid(tlb_entries=(4, 8))
    outcomes = grid.sweep(lambda tlb_entries: _job(entries=tlb_entries)).run()

    table = outcomes.to_table(title="TLB sweep")
    assert "TLB sweep" in table and "total_cycles" in table

    rows = list(csv.DictReader(io.StringIO(outcomes.to_table(fmt="csv"))))
    assert [row["tlb_entries"] for row in rows] == ["4", "8"]

    data = json.loads(outcomes.to_table(fmt="json",
                                        columns=["tlb_entries", "tier"]))
    assert data == [{"tlb_entries": 4, "tier": data[0]["tier"]},
                    {"tlb_entries": 8, "tier": data[1]["tier"]}]


def test_runner_without_coords_support_still_works():
    """Sweeps probe the runner's map signature: a minimal custom runner
    without the coords parameter keeps working unchanged."""

    class MinimalRunner:
        def map(self, fn, items, label=None):
            return [fn(item) for item in items]

    grid = Grid(tlb_entries=(4, 8))
    outcomes = grid.sweep(lambda tlb_entries:
                          _job(entries=tlb_entries)).run(MinimalRunner())
    assert len(outcomes) == 2
    assert all(o.total_cycles > 0 for _, o in outcomes.items())
