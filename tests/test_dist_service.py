"""Tests for the sweep service front-end (spec expansion, submit/poll, CLI)."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.dist import (SQLiteBroker, SpecError, Worker, expand_spec,
                        iter_results, submit_sweep, sweep_status)
from repro.eval.harness import HarnessConfig
from repro.exec import ExperimentJob, run_job
from repro.workloads import workload


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Keep CLI/service cache writes out of the repository working tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture()
def broker(tmp_path):
    broker = SQLiteBroker(tmp_path / "service.db")
    yield broker
    broker.close()


SPEC = {
    "label": "fig5-grid",
    "models": ["svm"],
    "kernels": ["vecadd"],
    "scale": "tiny",
    "axes": {"tlb_entries": [8, 16, 32]},
}


# ---------------------------------------------------------------------------
# Spec validation and expansion
# ---------------------------------------------------------------------------
def test_expand_spec_builds_the_expected_grid():
    sweep = expand_spec(SPEC)
    assert sweep.label == "fig5-grid"
    assert len(sweep) == 3
    coords = [dict(point.coords) for point in sweep.points]
    assert coords == [
        {"model": "svm", "kernel": "vecadd", "tlb_entries": 8},
        {"model": "svm", "kernel": "vecadd", "tlb_entries": 16},
        {"model": "svm", "kernel": "vecadd", "tlb_entries": 32},
    ]
    job = sweep.points[0].job
    assert job.kind == "svm" and job.config.tlb_entries == 8


def test_expand_spec_applies_fixed_config_and_tier():
    sweep = expand_spec({**SPEC, "config": {"shared_walker": True},
                         "tier": "event", "num_threads": 2})
    for point in sweep.points:
        assert point.job.config.shared_walker is True
        assert point.job.tier == "event"
        assert point.job.num_threads == 2


@pytest.mark.parametrize("mutation, fragment", [
    ({"models": ["nope"]}, "unknown execution model"),
    ({"kernels": ["nope"]}, "unknown kernel"),
    ({"models": []}, "non-empty list"),
    ({"axes": {"no_such_knob": [1]}}, "unknown HarnessConfig field"),
    ({"config": {"no_such_knob": 1}}, "unknown HarnessConfig field"),
    ({"axes": {"model": ["svm"]}}, "reserved"),
    ({"axes": {"tlb_entries": []}}, "non-empty list"),
    ({"axes": {"tlb_entries": [8]}, "config": {"tlb_entries": 16}}, "both"),
    ({"tier": "warp"}, "tier"),
    ({"num_threads": 0}, "positive integer"),
    ({"surprise": True}, "unknown spec field"),
])
def test_expand_spec_rejects_bad_specs(mutation, fragment):
    with pytest.raises(SpecError) as excinfo:
        expand_spec({**SPEC, **mutation})
    assert fragment in str(excinfo.value)


def test_expand_spec_rejects_non_object():
    with pytest.raises(SpecError):
        expand_spec(["not", "a", "spec"])


# ---------------------------------------------------------------------------
# Submit / status / results round-trip
# ---------------------------------------------------------------------------
def test_submit_drain_results_roundtrip(broker):
    ticket = submit_sweep(broker, SPEC)
    assert ticket.total == 3 and ticket.already_done == 0
    status = sweep_status(broker, ticket.sweep_id)
    assert status["label"] == "fig5-grid" and status["pending"] == 3
    assert json.loads(status["spec"])["axes"] == SPEC["axes"]

    Worker(broker, worker_id="w1").run_until_idle()

    records = list(iter_results(broker, ticket.sweep_id))
    assert [r["position"] for r in records] == [0, 1, 2]
    for record, entries in zip(records, (8, 16, 32)):
        assert record["state"] == "done"
        assert record["coords"] == {"model": "svm", "kernel": "vecadd",
                                    "tlb_entries": entries}
        direct = run_job(ExperimentJob(
            "svm", workload("vecadd", scale="tiny"),
            HarnessConfig(tlb_entries=entries)))
        assert record["outcome"] == dataclasses.asdict(direct)


def test_submitted_keys_match_in_process_runs(broker, tmp_path):
    """A library run's memo entries resolve a later service submission."""
    from repro.exec import MemoCache, SweepRunner

    cache = MemoCache(path=tmp_path / "shared")
    SweepRunner(jobs=1, cache=cache).map(
        run_job,
        [ExperimentJob("svm", workload("vecadd", scale="tiny"),
                       HarnessConfig(tlb_entries=entries))
         for entries in (8, 16, 32)])

    ticket = submit_sweep(broker, SPEC, memo=cache)
    assert ticket.already_done == 3              # no worker needed at all
    assert sweep_status(broker, ticket.sweep_id)["finished"]


def test_iter_results_follow_terminates_and_times_out(broker):
    ticket = submit_sweep(broker, SPEC)
    with pytest.raises(TimeoutError):
        list(iter_results(broker, ticket.sweep_id, follow=True,
                          poll_interval=0.01, timeout=0.2))
    Worker(broker, worker_id="w1").run_until_idle()
    records = list(iter_results(broker, ticket.sweep_id, follow=True,
                                timeout=10.0))
    assert len(records) == 3


def test_iter_results_unknown_sweep_raises(broker):
    with pytest.raises(KeyError):
        list(iter_results(broker, "nope"))


# ---------------------------------------------------------------------------
# CLI round-trip
# ---------------------------------------------------------------------------
def test_cli_submit_worker_results_roundtrip(tmp_path, capsys):
    broker_path = str(tmp_path / "cli.db")
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))

    assert main(["sweep", "submit", "--broker", broker_path,
                 str(spec_path), "--id-only"]) == 0
    sweep_id = capsys.readouterr().out.strip()
    assert sweep_id

    assert main(["sweep", "status", "--broker", broker_path, sweep_id]) == 0
    assert "3 pending" in capsys.readouterr().out

    assert main(["worker", "--broker", broker_path]) == 0
    assert "executed 3 job(s)" in capsys.readouterr().err

    assert main(["sweep", "results", "--broker", broker_path, sweep_id,
                 "--follow", "--timeout", "60"]) == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines() if line]
    assert [r["position"] for r in lines] == [0, 1, 2]
    direct = run_job(ExperimentJob("svm", workload("vecadd", scale="tiny"),
                                   HarnessConfig(tlb_entries=16)))
    assert lines[1]["outcome"] == dataclasses.asdict(direct)

    assert main(["sweep", "status", "--broker", broker_path, sweep_id,
                 "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["finished"] and status["done"] == 3

    assert main(["sweep", "list", "--broker", broker_path]) == 0
    assert sweep_id in capsys.readouterr().out


def test_cli_worker_uses_shared_cache(tmp_path, capsys):
    """A second identical submission is resolved without re-execution."""
    broker_path = str(tmp_path / "cli.db")
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))

    for _ in range(2):
        assert main(["sweep", "submit", "--broker", broker_path,
                     str(spec_path), "--id-only"]) == 0
    first_id, second_id = capsys.readouterr().out.split()

    assert main(["worker", "--broker", broker_path]) == 0
    capsys.readouterr()
    # One drain resolved both sweeps: identical keys, one execution each.
    for sweep_id in (first_id, second_id):
        assert main(["sweep", "status", "--broker", broker_path, sweep_id,
                     "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["finished"]


def test_cli_submit_rejects_invalid_spec(tmp_path, capsys):
    broker_path = str(tmp_path / "cli.db")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({**SPEC, "models": ["nope"]}))
    assert main(["sweep", "submit", "--broker", broker_path,
                 str(bad)]) == 2
    assert "invalid sweep spec" in capsys.readouterr().err

    notjson = tmp_path / "notjson.json"
    notjson.write_text("{")
    assert main(["sweep", "submit", "--broker", broker_path,
                 str(notjson)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_cli_status_unknown_sweep(tmp_path, capsys):
    broker_path = str(tmp_path / "cli.db")
    assert main(["sweep", "status", "--broker", broker_path, "nope"]) == 2
    assert "unknown sweep" in capsys.readouterr().err
    assert main(["sweep", "results", "--broker", broker_path, "nope"]) == 2


# ---------------------------------------------------------------------------
# Results store through the service boundary
# ---------------------------------------------------------------------------
def test_submit_adopts_results_store_rows(broker, tmp_path):
    """Points a past run persisted resolve at submit, without a worker."""
    from repro.exec.keys import stable_key
    from repro.store import ResultsStore

    store = ResultsStore(tmp_path / "results.db", sha="feed" * 3)
    for point in expand_spec(SPEC).points:
        store.record(stable_key(run_job, point.job), run_job(point.job),
                     experiment="past")

    ticket = submit_sweep(broker, SPEC, results=store)
    assert ticket.already_done == 3
    assert sweep_status(broker, ticket.sweep_id)["finished"]
    records = list(iter_results(broker, ticket.sweep_id))
    assert {r["worker"] for r in records} == {"store"}


def test_cli_submit_with_results_db_and_table_output(tmp_path, capsys):
    import csv as csv_mod
    import io

    broker_path = str(tmp_path / "cli.db")
    db = str(tmp_path / "results.db")
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))

    assert main(["sweep", "submit", "--broker", broker_path,
                 "--results-db", db, str(spec_path), "--id-only"]) == 0
    sweep_id = capsys.readouterr().out.strip()
    assert main(["worker", "--broker", broker_path]) == 0
    capsys.readouterr()

    assert main(["sweep", "results", "--broker", broker_path, sweep_id,
                 "--follow", "--timeout", "60", "--format", "csv"]) == 0
    rows = list(csv_mod.DictReader(io.StringIO(capsys.readouterr().out)))
    assert [row["tlb_entries"] for row in rows] == ["8", "16", "32"]
    assert all(row["state"] == "done" for row in rows)
    assert all(int(row["total_cycles"]) > 0 for row in rows)

    assert main(["sweep", "results", "--broker", broker_path, sweep_id,
                 "--format", "table"]) == 0
    out = capsys.readouterr().out
    assert f"Sweep {sweep_id}" in out and "total_cycles" in out

    # Seed the store from an in-process run (the worker loop itself does
    # not write stores), then submit to a *fresh* broker with the memo
    # cache disabled: every point adopts from the results store alone.
    from repro.exec import SweepRunner
    from repro.store import ResultsStore

    store = ResultsStore(db)
    SweepRunner(results=store).map(
        run_job, [point.job for point in expand_spec(SPEC).points],
        label="seed")
    assert main(["sweep", "submit", "--broker", str(tmp_path / "fresh.db"),
                 "--no-cache", "--results-db", db, str(spec_path)]) == 0
    assert "3 already resolved" in capsys.readouterr().out
