"""Unit tests for the event-driven simulation engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_schedule_and_run_orders_events_by_time():
    sim = Simulator()
    order = []
    sim.schedule(10, lambda: order.append("b"))
    sim.schedule(5, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 20


def test_same_cycle_events_run_in_insertion_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(7, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_zero_delay_event_runs_in_same_cycle():
    sim = Simulator()
    seen = []

    def outer():
        sim.schedule(0, lambda: seen.append(sim.now))

    sim.schedule(3, outer)
    sim.run()
    assert seen == [3]


def test_nested_scheduling_advances_clock():
    sim = Simulator()
    times = []

    def step():
        times.append(sim.now)
        if len(times) < 4:
            sim.schedule(5, step)

    sim.schedule(0, step)
    sim.run()
    assert times == [0, 5, 10, 15]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_rejects_past():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_schedule_at_absolute_cycle():
    sim = Simulator()
    seen = []
    sim.schedule_at(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda: seen.append(5))
    sim.schedule(50, lambda: seen.append(50))
    stopped_at = sim.run(until=10)
    assert seen == [5]
    assert stopped_at == 10
    # The remaining event still runs when the simulation resumes.
    sim.run()
    assert seen == [5, 50]


def test_event_cancellation():
    sim = Simulator()
    seen = []
    handle = sim.schedule(5, lambda: seen.append("cancelled"))
    sim.schedule(6, lambda: seen.append("kept"))
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert seen == ["kept"]


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda: seen.append(1))
    sim.schedule(2, lambda: seen.append(2))
    assert sim.step() is True
    assert seen == [1]
    assert sim.step() is True
    assert sim.step() is False
    assert seen == [1, 2]


def test_max_cycles_guard_raises():
    sim = Simulator(max_cycles=100)
    sim.schedule(200, lambda: None)
    with pytest.raises(SimulationError):
        sim.run()


def test_pending_events_counts_queue():
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_clock_does_not_go_backwards():
    sim = Simulator()
    observed = []

    def record():
        observed.append(sim.now)

    for delay in (30, 10, 20, 10, 0):
        sim.schedule(delay, record)
    sim.run()
    assert observed == sorted(observed)


def test_step_honours_max_cycles():
    sim = Simulator(max_cycles=100)
    sim.schedule(50, lambda: None)
    sim.schedule(200, lambda: None)
    assert sim.step() is True          # event at 50 is fine
    with pytest.raises(SimulationError):
        sim.step()                     # event at 200 trips the guard


def test_run_rejects_backwards_until():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    assert sim.now == 10
    with pytest.raises(ValueError):
        sim.run(until=5)
    assert sim.now == 10               # clock untouched


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1, lambda: None)
    drop = sim.schedule(2, lambda: None)
    assert sim.pending_events == 2
    drop.cancel()
    assert sim.pending_events == 1
    drop.cancel()                      # double-cancel must not double-count
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0
    assert keep.cycle == 1


def test_pending_events_after_stepping_past_cancelled():
    sim = Simulator()
    sim.schedule(1, lambda: None).cancel()
    sim.schedule(2, lambda: None)
    assert sim.pending_events == 1
    assert sim.step() is True          # skips the cancelled event
    assert sim.pending_events == 0
    assert sim.step() is False


def test_cancel_after_execution_does_not_corrupt_pending_count():
    sim = Simulator()
    handle = sim.schedule(1, lambda: None)
    sim.run()                          # event executed
    handle.cancel()                    # too late: must be a no-op
    assert sim.pending_events == 0
    sim.schedule(2, lambda: None)
    assert sim.pending_events == 1     # live event not masked
