"""Suite-wide pytest wiring.

One flag: ``--update-golden`` switches every golden-pinned suite from
asserting against ``tests/golden/`` to regenerating it from the current
code (see ``tests/README``).  The regenerating fixtures live next to their
tests; this hook only registers the option so it is available to the whole
suite.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the pinned data under tests/golden/ from the "
             "current code instead of asserting against it")
