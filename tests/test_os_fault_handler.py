"""Unit tests for the OS demand-paging fault handler."""

import pytest

from repro.mem.layout import Region
from repro.os.address_space import AddressSpace
from repro.os.fault_handler import DemandPagingHandler, FaultHandlerConfig
from repro.os.frames import FrameAllocator
from repro.sim.engine import Simulator
from repro.vm.types import AccessType, FaultType, PageFault


def make_handler(num_frames=64, **config_overrides):
    sim = Simulator()
    region = Region("dram", 0x2000000, num_frames * 4096)
    space = AddressSpace(FrameAllocator(region))
    config = FaultHandlerConfig(**config_overrides) if config_overrides else None
    handler = DemandPagingHandler(sim, space, config=config)
    return sim, space, handler


def raise_fault(sim, handler, vaddr, fault_type=FaultType.NOT_PRESENT,
                access=AccessType.READ):
    outcomes = []
    fault = PageFault(vaddr=vaddr, access=access, fault_type=fault_type,
                      thread="hwt0", cycle=sim.now)
    handler.handle_fault(fault, lambda ok: outcomes.append((ok, sim.now)))
    sim.run()
    assert len(outcomes) == 1
    return outcomes[0]


def test_not_present_fault_is_resolved_and_page_becomes_resident():
    sim, space, handler = make_handler()
    area = space.mmap(4 * 4096, residency=0.0)
    ok, _ = raise_fault(sim, handler, area.start)
    assert ok
    assert space.resident_pages(area) == 1
    assert handler.faults_resolved == 1


def test_not_mapped_fault_is_fatal():
    sim, _, handler = make_handler()
    ok, _ = raise_fault(sim, handler, 0xDEAD0000, FaultType.NOT_MAPPED)
    assert not ok
    assert handler.stats.counter("faults_fatal").value == 1


def test_service_takes_configured_time():
    sim, space, handler = make_handler(interrupt_latency=100,
                                       service_cycles=200, zero_fill_cycles=50)
    area = space.mmap(4096, residency=0.0)
    ok, finished_at = raise_fault(sim, handler, area.start)
    assert ok
    assert finished_at >= 100 + 200 + 50


def test_protection_fault_upgraded_when_area_allows_writes():
    sim, space, handler = make_handler()
    area = space.mmap(4096, writable=True)
    # Simulate a stale read-only PTE (e.g. after copy-on-write fork).
    vpn = area.start // 4096
    space.page_table.protect(vpn, writable=False)
    ok, _ = raise_fault(sim, handler, area.start, FaultType.PROTECTION,
                        AccessType.WRITE)
    assert ok
    assert space.page_table.entry(vpn).writable


def test_protection_fault_fatal_when_area_is_readonly():
    sim, space, handler = make_handler()
    area = space.mmap(4096, writable=False)
    ok, _ = raise_fault(sim, handler, area.start, FaultType.PROTECTION,
                        AccessType.WRITE)
    assert not ok


def test_concurrent_faults_are_serviced_serially():
    sim, space, handler = make_handler(interrupt_latency=10,
                                       service_cycles=100, zero_fill_cycles=0)
    area = space.mmap(8 * 4096, residency=0.0)
    completions = []
    for i in range(4):
        fault = PageFault(vaddr=area.start + i * 4096, access=AccessType.READ,
                          fault_type=FaultType.NOT_PRESENT)
        handler.handle_fault(fault, lambda ok, i=i: completions.append((i, sim.now)))
    sim.run()
    assert len(completions) == 4
    times = [t for _, t in completions]
    assert times == sorted(times)
    # Serial servicing: the last fault finishes at least 3 service times later.
    assert times[-1] - times[0] >= 3 * 100
    assert space.resident_pages(area) == 4


def test_queue_overflow_drops_and_fails():
    sim, space, handler = make_handler(max_queue_depth=2)
    area = space.mmap(16 * 4096, residency=0.0)
    outcomes = []
    for i in range(5):
        fault = PageFault(vaddr=area.start + i * 4096, access=AccessType.READ,
                          fault_type=FaultType.NOT_PRESENT)
        handler.handle_fault(fault, lambda ok: outcomes.append(ok))
    sim.run()
    assert outcomes.count(False) >= 1
    assert handler.stats.counter("faults_dropped").value >= 1


def test_out_of_memory_makes_fault_fatal():
    sim, space, handler = make_handler(num_frames=2)
    # The two frames are consumed by page-table/mapping needs immediately:
    area = space.mmap(4 * 4096, residency=0.5)     # uses both frames
    assert space.frames.frames_free == 0
    missing_vpns = [vpn for vpn in space.vpns_of(area)
                    if not space.page_table.entry(vpn).present]
    ok, _ = raise_fault(sim, handler, missing_vpns[0] * 4096)
    assert not ok
    assert handler.stats.counter("oom").value == 1


def test_fault_log_records_everything():
    sim, space, handler = make_handler()
    area = space.mmap(2 * 4096, residency=0.0)
    raise_fault(sim, handler, area.start)
    raise_fault(sim, handler, area.start + 4096)
    assert len(handler.fault_log) == 2
    assert handler.pending == 0


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        FaultHandlerConfig(interrupt_latency=-1)
    with pytest.raises(ValueError):
        FaultHandlerConfig(max_queue_depth=0)
