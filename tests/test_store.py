"""Tests for the append-only results store (repro.store)."""

import sqlite3

import pytest

import repro
from repro.eval.harness import HarnessConfig
from repro.exec.jobs import ExperimentJob, run_job
from repro.exec.keys import stable_key
from repro.models import RECORD_FIELDS, RunOutcome
from repro.store import (ResultsStore, SCHEMA_VERSION, SchemaMismatchError,
                         open_results_store)
from repro.workloads import workload


def _outcome(total=100, fabric=80, model="svm", tier="event", **breakdown):
    return RunOutcome(model=model, total_cycles=total, fabric_cycles=fabric,
                      tlb_hit_rate=0.5, tlb_misses=4, faults=1,
                      software_overhead_cycles=10,
                      breakdown=breakdown or None, tier=tier)


def _store(tmp_path, **kwargs):
    kwargs.setdefault("clock", lambda: 1_000_000.0)
    kwargs.setdefault("sha", "abc123def456")
    return ResultsStore(tmp_path / "results.db", **kwargs)


# ---------------------------------------------------------------------------
# Canonical record schema
# ---------------------------------------------------------------------------
def test_record_fields_schema_is_pinned():
    """The flat record schema is an API: changing it needs SCHEMA_VERSION
    thought, golden updates and a deliberate edit here."""
    assert RECORD_FIELDS == (
        "model", "tier", "total_cycles", "fabric_cycles", "tlb_hit_rate",
        "tlb_misses", "faults", "software_overhead_cycles",
        "marshalling_cycles", "walks", "walker_levels", "walker_cycles",
        "miss_stall_cycles", "prefetches_issued", "prefetch_hits",
        "context_switches", "epochs")


def test_to_record_covers_every_pinned_field():
    record = _outcome(walks=7).to_record()
    assert set(record) == set(RECORD_FIELDS)
    assert record["model"] == "svm"
    assert record["total_cycles"] == 100
    assert record["walks"] == 7
    assert record["epochs"] == 0                 # absent breakdown -> 0


def test_to_record_merges_coords_without_clobbering_outcome_fields():
    record = _outcome().to_record({"tlb_entries": 8, "model": "WRONG"})
    assert record["tlb_entries"] == 8
    assert record["model"] == "svm"              # outcome wins on collision


# ---------------------------------------------------------------------------
# Recording and dedup
# ---------------------------------------------------------------------------
def test_record_and_query_round_trip(tmp_path):
    store = _store(tmp_path)
    assert store.record("k1" * 32, _outcome(walks=3), experiment="fig5",
                        coords={"tlb_entries": 8}, kernel="vecadd")
    rows = store.query()
    assert len(rows) == 1
    row = rows[0]
    assert row["experiment"] == "fig5"
    assert row["kernel"] == "vecadd"
    assert row["tlb_entries"] == 8
    assert row["total_cycles"] == 100
    assert row["walks"] == 3
    assert row["git_sha"] == "abc123def456"
    assert row["package_version"] == repro.__version__
    assert row["created"] == "1970-01-12T13:46:40Z"


def test_record_is_idempotent_per_key_and_sha(tmp_path):
    store = _store(tmp_path)
    key = "a" * 64
    assert store.record(key, _outcome()) is True
    assert store.record(key, _outcome()) is False      # same (key, sha): no-op
    assert len(store) == 1
    other = ResultsStore(tmp_path / "results.db", sha="fffff1111112",
                         clock=lambda: 2_000_000.0)
    assert other.record(key, _outcome(total=101)) is True   # new sha: new row
    assert len(other) == 2


def test_query_filters(tmp_path):
    store = _store(tmp_path)
    store.record("a" * 64, _outcome(model="svm"), experiment="fig5",
                 coords={"tlb_entries": 8}, kernel="vecadd")
    store.record("b" * 64, _outcome(model="copydma"), experiment="fig5",
                 coords={"tlb_entries": 16}, kernel="matmul")
    store.record("c" * 64, _outcome(model="svm"), experiment="fig8",
                 kernel="vecadd")

    assert len(store.query(experiment="fig5")) == 2
    assert len(store.query(model="copydma")) == 1
    assert len(store.query(kernel="vecadd")) == 2
    assert len(store.query(experiment="fig5", kernel="vecadd")) == 1
    # Coord values match after str(): CLI-supplied strings find stored ints.
    assert len(store.query(coords={"tlb_entries": "16"})) == 1
    assert store.query(coords={"tlb_entries": 99}) == []
    assert len(store.query(limit=2)) == 2
    assert len(store.query(sha="abc123def456")) == 3
    assert store.query(sha="nope") == []


def test_query_time_bounds(tmp_path):
    ticks = iter([100.0, 200.0, 300.0])
    store = ResultsStore(tmp_path / "r.db", clock=lambda: next(ticks),
                         sha="s1")
    for i in range(3):
        store.record(f"{i}" * 64, _outcome())
    assert len(store.query(since=150.0)) == 2
    assert len(store.query(until=250.0)) == 2
    assert len(store.query(since=150.0, until=250.0)) == 1


def test_trend_aggregates_per_sha(tmp_path):
    path = tmp_path / "r.db"
    for sha, totals in (("sha1" * 3, (100, 200)), ("sha2" * 3, (300, 500))):
        store = ResultsStore(path, sha=sha, clock=lambda: 1.0)
        for i, total in enumerate(totals):
            store.record(f"{sha}{i}", _outcome(total=total))
        store.close()
    trend = ResultsStore(path, sha="x" * 12).trend("total_cycles")
    assert [row["git_sha"] for row in trend] == ["sha1" * 3, "sha2" * 3]
    assert trend[0]["runs"] == 2
    assert trend[0]["total_cycles_min"] == 100
    assert trend[0]["total_cycles_mean"] == 150
    assert trend[1]["total_cycles_max"] == 500


def test_arbitrary_outcomes_become_records(tmp_path):
    store = _store(tmp_path)
    store.record("a" * 64, {"total_cycles": 5, "model": "m"},
                 experiment="dicts")
    store.record("b" * 64, 42, experiment="scalars")
    rows = store.query(experiment="dicts")
    assert rows[0]["total_cycles"] == 5 and rows[0]["model"] == "m"
    assert store.query(experiment="scalars")[0]["value"] == 42


# ---------------------------------------------------------------------------
# get_value: the broker/runner adoption path
# ---------------------------------------------------------------------------
def test_get_value_round_trips_the_outcome(tmp_path):
    store = _store(tmp_path)
    outcome = _outcome(walks=9)
    store.record("k" * 64, outcome)
    assert store.get_value("k" * 64) == outcome
    assert "k" * 64 in store
    assert store.get_value("missing" * 9 + "x", "fallback") == "fallback"


def test_get_value_ignores_rows_from_other_package_versions(tmp_path):
    store = _store(tmp_path)
    store.record("k" * 64, _outcome())
    # Rewrite the row's provenance as if an older release had written it.
    with sqlite3.connect(store.path) as db:
        db.execute("UPDATE runs SET package_version = '0.0.1'")
    assert store.get_value("k" * 64) is None
    assert ("k" * 64 in store) is False
    # Still visible to queries — history is never hidden, only not adopted.
    assert len(store.query()) == 1


def test_warm_values_bulk_fetches_current_version_rows_only(tmp_path):
    store = _store(tmp_path)
    outcomes = {f"{i}" * 64: _outcome(total=100 + i) for i in range(3)}
    for key, outcome in outcomes.items():
        store.record(key, outcome)
    # Age one row out: other-version rows are queryable but never adopted.
    with sqlite3.connect(store.path) as db:
        db.execute("UPDATE runs SET package_version = '0.0.1' WHERE key = ?",
                   ("2" * 64,))
    found = store.warm_values(list(outcomes) + ["missing" * 9 + "x"])
    assert found == {"0" * 64: outcomes["0" * 64],
                     "1" * 64: outcomes["1" * 64]}


def test_warm_values_newest_row_wins_across_shas(tmp_path):
    store = _store(tmp_path)
    store.record("k" * 64, _outcome(total=100))
    later = ResultsStore(tmp_path / "results.db", sha="fffff1111112",
                         clock=lambda: 2_000_000.0)
    later.record("k" * 64, _outcome(total=222))
    assert later.warm_values(["k" * 64])["k" * 64].total_cycles == 222


def test_warm_values_spans_query_chunks(tmp_path):
    # One call with more keys than a single SQLite IN(...) chunk holds.
    store = _store(tmp_path)
    for i in range(450):
        store.record(f"{i:064d}", _outcome(total=i))
    found = store.warm_values([f"{i:064d}" for i in range(500)])
    assert len(found) == 450
    assert found[f"{49:064d}"].total_cycles == 49


# ---------------------------------------------------------------------------
# Schema versioning
# ---------------------------------------------------------------------------
def test_schema_mismatch_raises_clear_error(tmp_path):
    store = _store(tmp_path)
    store.close()
    with sqlite3.connect(tmp_path / "results.db") as db:
        db.execute("UPDATE meta SET value = ? WHERE key = 'schema_version'",
                   (str(SCHEMA_VERSION + 1),))
    with pytest.raises(SchemaMismatchError, match="schema version"):
        ResultsStore(tmp_path / "results.db")


# ---------------------------------------------------------------------------
# Concurrent multi-process writers (the CI/fleet scenario)
# ---------------------------------------------------------------------------
def _store_stress_worker(args):
    """One process appending its own keys plus contended shared keys."""
    path, worker, rounds = args
    from repro.store import ResultsStore

    store = ResultsStore(path, sha="stress" * 2)
    try:
        for i in range(rounds):
            store.record(f"own-{worker}-{i}", {"worker": worker, "i": i},
                         experiment="own")
            # Every process races to insert the same shared key; the
            # (key, sha) unique index must let exactly one in.
            store.record(f"shared-{i}", {"i": i}, experiment="shared")
        return "ok"
    except Exception as exc:                     # pragma: no cover - failure
        return f"{type(exc).__name__}: {exc}"
    finally:
        store.close()


def test_concurrent_writers_append_without_corruption(tmp_path):
    import concurrent.futures

    path = str(tmp_path / "results.db")
    rounds = 25
    jobs = [(path, worker, rounds) for worker in range(4)]
    try:
        with concurrent.futures.ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(_store_stress_worker, jobs))
    except OSError:
        pytest.skip("sandbox does not allow worker processes")
    assert outcomes == ["ok"] * 4
    store = ResultsStore(path, sha="stress" * 2)
    assert len(store.query(experiment="own")) == 4 * rounds
    # The contended keys deduped down to one row each.
    assert len(store.query(experiment="shared")) == rounds


# ---------------------------------------------------------------------------
# open_results_store: the strictly-opt-in env seam
# ---------------------------------------------------------------------------
def test_open_results_store_is_opt_in(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_DB", raising=False)
    assert open_results_store() is None
    monkeypatch.setenv("REPRO_RESULTS_DB", str(tmp_path / "env.db"))
    store = open_results_store()
    assert store is not None
    # Same path -> the same process-global store instance.
    assert open_results_store(tmp_path / "env.db") is store


# ---------------------------------------------------------------------------
# End-to-end: runner -> store carries real simulation outcomes
# ---------------------------------------------------------------------------
def test_runner_recorded_rows_match_inprocess_outcomes(tmp_path):
    from repro.exec import SweepRunner

    store = _store(tmp_path)
    jobs = [ExperimentJob("svm", workload("vecadd", scale="tiny"),
                          HarnessConfig(tlb_entries=entries))
            for entries in (4, 8)]
    coords = [{"tlb_entries": 4}, {"tlb_entries": 8}]
    runner = SweepRunner(results=store)
    outcomes = runner.map(run_job, jobs, label="fig5", coords=coords)

    rows = store.query(experiment="fig5")
    assert len(rows) == 2
    for row, outcome, coord in zip(rows, outcomes, coords):
        assert row["total_cycles"] == outcome.total_cycles
        assert row["fabric_cycles"] == outcome.fabric_cycles
        assert row["tlb_entries"] == coord["tlb_entries"]
        assert row["kernel"] == "vecadd"
        assert row["key"] == stable_key(run_job, jobs[coords.index(coord)])
    # Stored pickles round-trip bit-identically for warm-start adoption.
    for job, outcome in zip(jobs, outcomes):
        assert store.get_value(stable_key(run_job, job)) == outcome
    # A warm re-run (cache hit or recompute) appends nothing new.
    runner.map(run_job, jobs, label="fig5", coords=coords)
    assert len(store.query(experiment="fig5")) == 2


def test_record_json_survives_unserializable_values(tmp_path):
    store = _store(tmp_path)
    store.record("u" * 64, {"weird": object()}, experiment="odd")
    row = store.query(experiment="odd")[0]
    assert "weird" in row                        # stringified, not dropped
    assert isinstance(row["weird"], str)
