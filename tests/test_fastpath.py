"""Unit tests for the two-tier record/replay subsystem and the tracer.

The differential suite (``test_differential_models.py``) pins the headline
guarantee — replay results equal event-simulator results exactly.  These
tests cover the mechanisms underneath: stream recording (functional and
live), the content-keyed program cache, tier selection plumbing through
jobs/runner/harness, and the zero-cost tracing contract.
"""

import pytest

from repro.eval.harness import (HarnessConfig, _build_svm_system,
                                run_multiprocess, run_svm)
from repro.exec.jobs import ExperimentJob, run_job
from repro.exec.runner import SweepRunner
from repro.fastpath.record import clear_program_cache, record_stats
from repro.fastpath.replay import (TierUnavailable, mp_replay_blockers,
                                   svm_replay_blockers)
from repro.sim.process import Access, Burst, Compute, Fence, Yield
from repro.sim.recorder import (HAVE_NUMPY, KIND_COMPUTE, KIND_FENCE,
                                KIND_MEM, KIND_YIELD, TraceRecorder,
                                UnrecordableOperation)
from repro.sim.trace import Tracer
from repro.workloads import contention, workload

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="replay tier requires numpy")


# ---------------------------------------------------------------------------
# Stream recording
# ---------------------------------------------------------------------------
@needs_numpy
class TestTraceRecorder:
    def test_capture_encodes_every_operation_kind(self):
        stream = TraceRecorder.capture([
            Compute(cycles=3),
            Access(addr=0x1000, size=8, is_write=True),
            Burst(addr=0x2000, count=4, size=16),
            Fence(),
            Yield(),
        ])
        assert stream.kinds.tolist() == [KIND_COMPUTE, KIND_MEM, KIND_MEM,
                                         KIND_FENCE, KIND_YIELD]
        # Access rows carry the byte range; a burst is recorded by its
        # total footprint (the memory interface re-derives the chunking).
        assert stream.addrs.tolist()[1:3] == [0x1000, 0x2000]
        assert stream.sizes.tolist()[1:3] == [8, 4 * 16]
        assert stream.writes.tolist()[1:3] == [True, False]
        assert stream.cycles.tolist()[0] == 3

    def test_unrecordable_operation_raises(self):
        class Strange:
            pass

        with pytest.raises(UnrecordableOperation):
            TraceRecorder.capture([Strange()])

    def test_live_recording_matches_functional_capture(self):
        """The memif hook sees exactly the mem ops the kernel yields.

        A live recording attached to a running system must agree with a
        functional (no-simulation) capture of the same bound workload —
        this is what lets the program cache record streams functionally
        and replay them in place of real runs.
        """
        import numpy as np

        spec = workload("vecadd", scale="tiny", n=512)
        config = HarnessConfig(tlb_entries=16)
        _, system, bound = _build_svm_system(spec, config, 1)
        recorder = TraceRecorder()
        system.threads["hwt0"].memif.attach_recorder(recorder)
        system.run({"hwt0": bound[0].make_kernel()})
        live = recorder.finish()

        _, _, bound2 = _build_svm_system(spec, config, 1)
        functional = TraceRecorder.capture(bound2[0].make_kernel())
        mem = functional.kinds == KIND_MEM
        assert live.num_ops == int(mem.sum()) > 0
        assert bool(np.all(live.kinds == KIND_MEM))
        assert np.array_equal(live.addrs, functional.addrs[mem])
        assert np.array_equal(live.sizes, functional.sizes[mem])
        assert np.array_equal(live.writes, functional.writes[mem])

    def test_stream_is_compact(self):
        """The columnar encoding stays far below object-per-op cost."""
        stream = TraceRecorder.capture(
            Access(addr=0x1000 + 8 * i, size=8) for i in range(1000))
        # 8+8+1+1+8 bytes per row ≈ 26 B/op, orders below Python objects.
        assert stream.nbytes < 64 * stream.num_ops


# ---------------------------------------------------------------------------
# Program cache
# ---------------------------------------------------------------------------
@needs_numpy
class TestProgramCache:
    def test_stream_recorded_once_then_reused(self):
        spec = workload("vecadd", scale="tiny", n=512)
        config = HarnessConfig(tlb_entries=16)
        clear_program_cache()
        before = dict(record_stats)
        run_svm(spec, config, tier="replay")
        after_first = dict(record_stats)
        run_svm(spec, config, tier="replay")
        after_second = dict(record_stats)
        assert after_first["records"] == before["records"] + 1
        assert after_second["records"] == after_first["records"]
        assert after_second["reuses"] == after_first["reuses"] + 1


# ---------------------------------------------------------------------------
# Tier selection plumbing
# ---------------------------------------------------------------------------
class TestTierPlumbing:
    def test_job_rejects_unknown_tier(self):
        spec = workload("vecadd", scale="tiny", n=256)
        with pytest.raises(ValueError, match="tier"):
            ExperimentJob(kind="svm", workload=spec,
                          config=HarnessConfig(), tier="warp")

    def test_event_only_models_ignore_the_tier_request(self):
        """Mixed-model sweeps accept any tier: single-tier models run the
        event simulator regardless of what the job asks for."""
        spec = workload("vecadd", scale="tiny", n=256)
        job = ExperimentJob(kind="ideal", workload=spec,
                            config=HarnessConfig(), tier="replay")
        outcome = run_job(job)
        assert outcome.tier == "event"

    @needs_numpy
    def test_replay_capable_models_honor_the_tier_request(self):
        spec = workload("vecadd", scale="tiny", n=256)
        job = ExperimentJob(kind="svm", workload=spec,
                            config=HarnessConfig(tlb_entries=16),
                            tier="replay")
        outcome = run_job(job)
        assert outcome.tier == "replay"

    def test_strict_replay_raises_on_ineligible_run(self):
        spec = workload("vecadd", scale="tiny", n=256)
        with pytest.raises(TierUnavailable, match="num_threads"):
            run_svm(spec, HarnessConfig(tlb_entries=16), num_threads=2,
                    tier="replay")

    def test_auto_falls_back_and_says_why(self):
        spec = workload("vecadd", scale="tiny", n=256)
        result = run_svm(spec, HarnessConfig(tlb_entries=16), num_threads=2,
                         tier="auto")
        assert result.tier == "event"
        assert result.tier_reason is not None
        assert "num_threads" in result.tier_reason

    def test_adaptive_policies_fall_back_explicitly(self):
        mp = contention(["vecadd"] * 2, scale="tiny", quantum=2000,
                        policy="adaptive-fault", n=1024)
        result = run_multiprocess(mp, HarnessConfig(tlb_entries=32),
                                  tier="auto")
        assert result.tier == "event"
        assert result.tier_reason is not None
        assert "adaptive" in result.tier_reason

    def test_blockers_report_none_for_eligible_runs(self):
        spec = workload("vecadd", scale="tiny", n=256)
        config = HarnessConfig(tlb_entries=16)
        if HAVE_NUMPY:
            assert svm_replay_blockers(spec, config, 1) is None
        assert svm_replay_blockers(spec, config, 2) is not None
        mp = contention(["vecadd"] * 2, scale="tiny", policy="round-robin",
                        n=1024)
        if HAVE_NUMPY:
            assert mp_replay_blockers(mp, config) is None

    @needs_numpy
    def test_runner_stats_count_tiers(self):
        spec = workload("vecadd", scale="tiny", n=256)
        config = HarnessConfig(tlb_entries=16)
        runner = SweepRunner(jobs=1)
        runner.map(run_job, [
            ExperimentJob(kind="svm", workload=spec, config=config,
                          tier="replay"),
            ExperimentJob(kind="ideal", workload=spec, config=config),
        ], label="tiers")
        assert runner.stats.tier_counts == {"replay": 1, "event": 1}
        assert "tier_event=1" in runner.summary()
        assert "tier_replay=1" in runner.summary()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.log(1, "mmu", "tlb_miss", "vaddr=0x1000")
        assert len(tracer) == 0

    def test_disabled_tracer_never_builds_lazy_detail(self):
        tracer = Tracer(enabled=False)

        def explode():
            raise AssertionError("detail built while tracing is disabled")

        tracer.log(1, "mmu", "tlb_miss", explode)   # must not raise

    def test_lazy_detail_is_evaluated_when_enabled(self):
        tracer = Tracer(enabled=True)
        calls = []

        def detail():
            calls.append(1)
            return "vpn=7"

        tracer.log(3, "ptw", "walk_done", detail)
        assert calls == [1]
        assert tracer.records[0].detail == "vpn=7"

    def test_limit_drops_and_counts(self):
        tracer = Tracer(enabled=True, limit=2)
        for cycle in range(5):
            tracer.log(cycle, "bus", "grant")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_section_brackets_a_block(self):
        tracer = Tracer(enabled=True)
        with tracer.section(10, "harness", "sweep", "fig5"):
            tracer.log(11, "harness", "point")
        events = [r.event for r in tracer]
        assert events == ["sweep:begin", "point", "sweep:end"]
        assert tracer.records[0].detail == "fig5"
        assert tracer.records[2].detail == "fig5"

    def test_section_emits_end_even_on_raise(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.section(10, "harness", "sweep"):
                raise RuntimeError("boom")
        assert [r.event for r in tracer] == ["sweep:begin", "sweep:end"]

    def test_section_evaluates_lazy_detail_once(self):
        tracer = Tracer(enabled=True)
        calls = []

        def detail():
            calls.append(1)
            return "d"

        with tracer.section(0, "c", "e", detail):
            pass
        assert calls == [1]

    def test_filter_by_component_and_event(self):
        tracer = Tracer(enabled=True)
        tracer.log(0, "mmu", "tlb_miss")
        tracer.log(1, "ptw", "walk_done")
        tracer.log(2, "mmu", "tlb_miss")
        assert len(tracer.filter(component="mmu")) == 2
        assert len(tracer.filter(event="walk_done")) == 1
        assert len(tracer.filter(component="mmu", event="walk_done")) == 0
