"""Unit tests for the banked DRAM model."""

import pytest

from repro.mem.dram import DRAMConfig, DRAMModel
from repro.mem.port import MemoryRequest
from repro.sim.engine import Simulator


def make_dram(**overrides):
    sim = Simulator()
    config = DRAMConfig(**overrides) if overrides else DRAMConfig()
    return sim, DRAMModel(sim, config)


def issue(sim, dram, addr, size=4, is_write=False):
    done = []
    request = MemoryRequest(addr=addr, size=size, is_write=is_write,
                            callback=lambda r: done.append(r))
    dram.access(request)
    sim.run()
    assert len(done) == 1
    return done[0]


def test_single_read_latency_components():
    sim, dram = make_dram()
    request = issue(sim, dram, 0x1000, size=8)
    cfg = dram.config
    expected = cfg.controller_latency + cfg.row_miss_latency + 1
    assert request.latency == expected


def test_row_hit_is_faster_than_row_miss():
    sim, dram = make_dram()
    first = issue(sim, dram, 0x0)
    second = issue(sim, dram, 0x8)          # same row
    third = issue(sim, dram, 0x100000)      # different row, same bank eventually
    assert second.latency < first.latency
    assert dram.stats.counter("row_hits").value >= 1
    assert dram.stats.counter("row_misses").value >= 2


def test_write_has_extra_penalty():
    sim, dram = make_dram()
    read = issue(sim, dram, 0x0)
    sim2, dram2 = make_dram()
    write = issue(sim2, dram2, 0x0, is_write=True)
    assert write.latency == read.latency + dram2.config.write_latency_penalty


def test_large_transfer_occupies_data_bus_longer():
    sim, dram = make_dram()
    small = issue(sim, dram, 0x0, size=8)
    sim2, dram2 = make_dram()
    big = issue(sim2, dram2, 0x0, size=256)
    assert big.latency > small.latency
    extra_beats = 256 // dram2.config.data_bus_bytes_per_cycle - 1
    assert big.latency == small.latency + extra_beats


def test_same_bank_requests_serialise():
    sim, dram = make_dram()
    done = []
    for i in range(4):
        request = MemoryRequest(addr=0x0 + i * 8, size=8,
                                callback=lambda r: done.append(sim.now))
        dram.access(request)
    sim.run()
    assert len(done) == 4
    assert done == sorted(done)
    assert len(set(done)) == 4  # strictly increasing completion times


def test_different_banks_overlap():
    cfg = DRAMConfig()
    sim, dram = make_dram()
    row_bytes = cfg.row_bytes
    done = []
    # Two requests mapping to different banks can overlap their access phases.
    for addr in (0, row_bytes):
        assert dram.bank_of(0) != dram.bank_of(row_bytes)
        request = MemoryRequest(addr=addr, size=8,
                                callback=lambda r: done.append(sim.now))
        dram.access(request)
    sim.run()
    serial_time = 2 * (cfg.controller_latency + cfg.row_miss_latency + 1)
    assert max(done) < serial_time


def test_counters_track_bytes():
    sim, dram = make_dram()
    issue(sim, dram, 0x0, size=64)
    issue(sim, dram, 0x1000, size=32, is_write=True)
    assert dram.stats.counter("bytes_read").value == 64
    assert dram.stats.counter("bytes_written").value == 32
    assert dram.total_bytes_transferred == 96


def test_utilisation_bounded():
    sim, dram = make_dram()
    issue(sim, dram, 0x0, size=128)
    assert 0.0 < dram.utilisation(sim.now) <= 1.0
    assert dram.utilisation(0) == 0.0


def test_bank_mapping_is_stable():
    _, dram = make_dram()
    assert dram.bank_of(0x0) == dram.bank_of(0x0)
    banks = {dram.bank_of(i * dram.config.row_bytes)
             for i in range(dram.config.num_banks)}
    assert len(banks) == dram.config.num_banks


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        DRAMConfig(num_banks=0)
    with pytest.raises(ValueError):
        DRAMConfig(row_bytes=1000)   # not a power of two
    with pytest.raises(ValueError):
        DRAMConfig(data_bus_bytes_per_cycle=0)


def test_invalid_request_rejected():
    with pytest.raises(ValueError):
        MemoryRequest(addr=-1)
    with pytest.raises(ValueError):
        MemoryRequest(addr=0, size=0)
