"""Unit tests for the host-CPU cache model."""

import pytest

from repro.mem.cache import Cache, CacheConfig
from repro.mem.port import LatencyPipe
from repro.sim.engine import Simulator


def make_cache(**overrides):
    sim = Simulator()
    defaults = dict(size_bytes=1024, line_bytes=64, associativity=2,
                    hit_latency=1, miss_penalty=50)
    defaults.update(overrides)
    return sim, Cache(sim, CacheConfig(**defaults))


def test_first_access_misses_second_hits():
    _, cache = make_cache()
    miss = cache.lookup(0x100)
    hit = cache.lookup(0x100)
    assert miss > hit
    assert hit == cache.config.hit_latency
    assert cache.stats.counter("misses").value == 1
    assert cache.stats.counter("hits").value == 1


def test_same_line_different_offsets_hit():
    _, cache = make_cache()
    cache.lookup(0x100)
    assert cache.lookup(0x104) == cache.config.hit_latency
    assert cache.lookup(0x13C) == cache.config.hit_latency


def test_lru_eviction_within_set():
    _, cache = make_cache()
    num_sets = cache.config.num_sets
    line = cache.config.line_bytes
    stride = num_sets * line          # same set, different tags
    cache.lookup(0 * stride)
    cache.lookup(1 * stride)
    cache.lookup(0 * stride)          # refresh line 0
    cache.lookup(2 * stride)          # evicts line 1 (LRU)
    assert cache.lookup(0 * stride) == cache.config.hit_latency
    assert cache.lookup(1 * stride) > cache.config.hit_latency


def test_dirty_eviction_costs_writeback():
    _, cache = make_cache()
    num_sets = cache.config.num_sets
    stride = num_sets * cache.config.line_bytes
    cache.lookup(0 * stride, is_write=True)
    cache.lookup(1 * stride)
    cache.lookup(2 * stride)            # evicts dirty line 0
    cache.lookup(3 * stride)
    assert cache.stats.counter("writebacks").value >= 1


def test_hit_rate_property():
    _, cache = make_cache()
    assert cache.hit_rate == 0.0
    cache.lookup(0)
    cache.lookup(0)
    cache.lookup(0)
    assert cache.hit_rate == pytest.approx(2 / 3)


def test_flush_invalidates_and_counts_dirty():
    _, cache = make_cache()
    cache.lookup(0x0, is_write=True)
    cache.lookup(0x40)
    dirty = cache.flush()
    assert dirty == 1
    assert cache.lookup(0x0) > cache.config.hit_latency


def test_streaming_larger_than_cache_has_low_hit_rate():
    _, cache = make_cache()
    for addr in range(0, 64 * 1024, 4):
        cache.lookup(addr)
    # 64-byte lines with 4-byte strides: 15/16 of accesses hit in the line.
    assert 0.9 < cache.hit_rate < 0.95


def test_backing_target_receives_line_fills():
    sim = Simulator()
    pipe = LatencyPipe(sim, latency=5)
    cache = Cache(sim, CacheConfig(size_bytes=1024, line_bytes=64,
                                   associativity=2), backing=pipe)
    cache.lookup(0x200)
    cache.lookup(0x200)
    sim.run()
    assert len(pipe.requests) == 1
    assert pipe.requests[0].size == 64
    assert pipe.requests[0].addr == 0x200 & ~63


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=0)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, line_bytes=64, associativity=3)
