"""Tests for the experiment functions (structure and expected shapes).

These are integration tests: each experiment runs end-to-end on tiny
workloads and the tests assert the qualitative shapes the paper reports
(hit rate saturation, pinning recovering demand-paging cost, crossovers),
not absolute numbers.
"""


from repro.eval import experiments as exp
from repro.eval.harness import HarnessConfig


def test_table1_rows_and_monotonic_resources():
    rows = exp.table1_resources(scale="tiny", thread_counts=(1, 2),
                                tlb_entries=(16,))
    assert rows
    by_kernel = {}
    for row in rows:
        assert row["luts"] > 0 and row["ffs"] > 0
        by_kernel.setdefault(row["kernel"], {})[row["threads"]] = row["luts"]
    for kernel, luts in by_kernel.items():
        assert luts[2] > luts[1], f"{kernel} resources must grow with threads"


def test_table2_characterises_every_workload():
    rows = exp.table2_workloads(scale="tiny")
    names = {row["workload"] for row in rows}
    assert "vecadd" in names and "linked_list" in names
    for row in rows:
        assert row["mem_ops"] > 0
        assert row["unique_pages"] > 0


def test_table3_and_fig4_shapes():
    rows = exp.table3_speedups(scale="tiny",
                               kernels=("vecadd", "matmul", "linked_list"),
                               config=HarnessConfig(auto_size_tlb=True))
    assert len(rows) == 3
    by_kernel = {row["workload"]: row for row in rows}
    # Compute-heavy kernels beat software; SVM never loses to copy-DMA by much
    # and wins on the pointer workload (marshalling cost).
    assert by_kernel["matmul"]["speedup_sw"] > 1.5
    assert by_kernel["vecadd"]["speedup_sw"] > 1.0
    assert by_kernel["linked_list"]["speedup_dma"] > 1.0
    for row in rows:
        assert row["vm_overhead"] >= 1.0

    series = exp.fig4_speedup_bars(scale="tiny", kernels=("vecadd", "matmul"))
    assert len(series["workloads"]) == 2
    assert len(series["speedup_vs_software"]) == 2


def test_fig5_hit_rate_increases_with_tlb_size():
    sweep = exp.fig5_tlb_sweep(kernels=("random_access",),
                               tlb_sizes=(4, 16, 64), scale="tiny")
    data = sweep["random_access"]
    assert data["hit_rate"] == sorted(data["hit_rate"])
    assert data["fabric_cycles"][0] >= data["fabric_cycles"][-1]
    # Streaming kernels reach high hit rates with tiny TLBs.
    stream = exp.fig5_tlb_sweep(kernels=("vecadd",), tlb_sizes=(4, 8),
                                scale="tiny")["vecadd"]
    assert stream["hit_rate"][0] > 0.7


def test_fig5_replacement_ablation_structure():
    result = exp.fig5_replacement_ablation(tlb_sizes=(8, 32), scale="tiny")
    assert set(result) == {"tlb_entries", "lru", "fifo", "random"}
    for policy in ("lru", "fifo", "random"):
        assert len(result[policy]) == 2


def test_fig6_overhead_shrinks_with_page_size():
    result = exp.fig6_vm_overhead(kernels=("vecadd",),
                                  page_sizes=(4096, 65536), scale="tiny")
    overheads = result["vecadd"]["vm_overhead"]
    assert overheads[0] >= overheads[-1] >= 1.0
    assert result["vecadd"]["hit_rate"][-1] >= result["vecadd"]["hit_rate"][0]


def test_fig7_throughput_grows_with_threads_then_saturates():
    result = exp.fig7_scaling(kernels=("vecadd",), thread_counts=(1, 4),
                              scale="tiny")
    data = result["vecadd"]
    assert data["items_per_kcycle"][1] > data["items_per_kcycle"][0] * 0.9
    assert data["total_cycles"][1] < 4 * data["total_cycles"][0]


def test_fig7_walker_ablation_shared_is_never_faster():
    result = exp.fig7_walker_ablation(thread_counts=(1, 4), scale="tiny")
    assert result["shared_walker"][-1] >= result["private_walker"][-1] * 0.95


def test_fig8_runtime_decreases_with_residency():
    result = exp.fig8_fault_sweep(kernels=("vecadd",),
                                  residencies=(0.0, 1.0), scale="tiny")
    data = result["vecadd"]
    assert data["total_cycles"][0] > data["total_cycles"][-1]
    assert data["faults"][0] > data["faults"][-1] == 0


def test_fig8_pinning_recovers_demand_paging_penalty():
    result = exp.fig8_pinning_ablation(kernel="vecadd", residency=0.25)
    assert result["demand_paging_faults"] > 0
    assert result["pinned_faults"] == 0
    assert result["pinned_cycles"] < result["demand_paging_cycles"]


def test_fig9_svm_advantage_grows_with_size():
    result = exp.fig9_crossover(sizes=(1024, 65536))
    ratio_small = result["copydma_total_cycles"][0] / result["svm_total_cycles"][0]
    ratio_large = result["copydma_total_cycles"][-1] / result["svm_total_cycles"][-1]
    assert ratio_large > ratio_small


def test_fig9_sparse_access_favours_svm():
    result = exp.fig9_sparse_crossover(table_bytes=(262144, 4194304),
                                       accesses=2048)
    # The copy baseline must move the whole table; SVM only touches what it uses.
    assert result["copydma_total_cycles"][-1] > result["svm_total_cycles"][-1]


def test_fig10_pareto_is_subset_and_sorted():
    result = exp.fig10_dse(kernel="vecadd", scale="tiny")
    points = result["points"]
    pareto = result["pareto"]
    assert 0 < len(pareto) <= len(points)
    runtimes = [p["runtime_cycles"] for p in pareto]
    assert runtimes == sorted(runtimes)


def test_experiment_registry_complete():
    assert set(exp.EXPERIMENTS) == {"table1", "table2", "table3", "fig4",
                                    "fig5", "fig5_replacement", "fig6",
                                    "fig7", "fig7_walker", "fig8",
                                    "fig8_pinning", "fig9", "fig9_sparse",
                                    "fig10", "fig11", "fig12", "fig13",
                                    "fig13_policy_dse", "fig14"}


def test_experiment_metadata_describes_knobs():
    table3 = exp.EXPERIMENTS["table3"]
    assert table3.scales and table3.sweepable
    assert table3.defaults["scale"] == "default"
    table2 = exp.EXPERIMENTS["table2"]
    assert table2.scales and not table2.sweepable
    fig9_sparse = exp.EXPERIMENTS["fig9_sparse"]
    assert not fig9_sparse.scales and fig9_sparse.sweepable
    for registered in exp.EXPERIMENTS.values():
        assert registered.title and registered.description


def test_experiment_run_passes_only_declared_knobs():
    rows = exp.EXPERIMENTS["table2"].run(scale="tiny", runner=object())
    assert rows                                  # runner silently not passed
    result = exp.EXPERIMENTS["fig8_pinning"].run(scale="tiny")
    assert result["pinned_faults"] == 0
    import pytest
    with pytest.raises(TypeError):
        exp.EXPERIMENTS["fig5"].run(not_a_knob=1)


# ---------------------------------------------------------------------------
# Parallel / memoized dispatch (repro.exec)
# ---------------------------------------------------------------------------
def test_parallel_sweep_results_equal_serial():
    from repro.eval.experiments import fig5_tlb_sweep, fig8_fault_sweep
    from repro.exec import MemoCache, SweepRunner

    runner = SweepRunner(jobs=2, cache=MemoCache())
    kwargs = dict(kernels=("vecadd",), tlb_sizes=(4, 8), scale="tiny")
    assert fig5_tlb_sweep(runner=runner, **kwargs) == fig5_tlb_sweep(**kwargs)
    fault_kwargs = dict(kernels=("vecadd",), residencies=(0.5, 1.0),
                        scale="tiny")
    assert (fig8_fault_sweep(runner=runner, **fault_kwargs)
            == fig8_fault_sweep(**fault_kwargs))
    # Jobs are picklable, so the pool path (not the fallback) actually ran.
    assert runner.stats.parallel_batches >= 1


def test_fig10_dse_parallel_matches_serial():
    from repro.core.dse import SweepAxes
    from repro.eval.experiments import fig10_dse
    from repro.exec import MemoCache, SweepRunner

    axes = SweepAxes(tlb_entries=(8, 16), max_burst_bytes=(128,),
                     max_outstanding=(2,), shared_walker=(False,))
    runner = SweepRunner(jobs=2, cache=MemoCache())
    parallel = fig10_dse(kernel="vecadd", scale="tiny", axes=axes,
                         runner=runner)
    serial = fig10_dse(kernel="vecadd", scale="tiny", axes=axes)
    assert parallel == serial


def test_repeated_points_hit_the_cache_across_figures():
    from repro.eval.experiments import fig5_tlb_sweep
    from repro.exec import MemoCache, SweepRunner

    runner = SweepRunner(jobs=1, cache=MemoCache())
    kwargs = dict(kernels=("vecadd",), tlb_sizes=(4, 8), scale="tiny")
    fig5_tlb_sweep(runner=runner, **kwargs)
    executed_first = runner.stats.points_executed
    fig5_tlb_sweep(runner=runner, **kwargs)       # identical grid: all cached
    assert runner.stats.points_executed == executed_first
    assert runner.stats.cache_hits == len(kwargs["tlb_sizes"])


def test_fig13_separates_static_and_adaptive_policies():
    rows = exp.fig13_adaptive_scheduling(
        scale="tiny", process_counts=(2,),
        policies=("round-robin", "adaptive-fault"),
        models=("svm-shared-tlb",))
    by_policy = {row["policy"]: row for row in rows}
    static = by_policy["round-robin"]
    adaptive = by_policy["adaptive-fault"]
    assert static["adaptive"] is False
    assert static["epochs[svm-shared-tlb]"] == 0
    assert adaptive["adaptive"] is True
    assert adaptive["epochs[svm-shared-tlb]"] > 1
    assert adaptive["svm-shared-tlb"] > 0


def test_fig13_rejects_translation_free_models():
    import pytest
    with pytest.raises(ValueError):
        exp.fig13_adaptive_scheduling(models=("software",))


def test_fig13_policy_dse_differentiates_policies_at_fixed_hardware():
    from repro.core.dse import SweepAxes
    result = exp.fig13_policy_dse(
        scale="tiny",
        axes=SweepAxes(tlb_entries=(16,), max_burst_bytes=(256,),
                       max_outstanding=(4,), shared_walker=(False,),
                       policy=("round-robin", "adaptive-fault")))
    points = result["points"]
    assert [p["params"]["policy"] for p in points] == ["round-robin",
                                                       "adaptive-fault"]
    # Same hardware, different scheduling: the runtimes must differ — the
    # policy axis is a real axis, not a relabeling of identical runs.
    runtimes = {p["params"]["policy"]: p["runtime_cycles"] for p in points}
    assert runtimes["round-robin"] != runtimes["adaptive-fault"]
    assert result["pareto"]
