"""Unit tests for generator-based process plumbing."""

import pytest

from repro.sim.process import (
    Access,
    Burst,
    Compute,
    Fence,
    ProcessState,
    count_bytes,
    run_functional,
)


def simple_kernel():
    yield Compute(5)
    yield Access(addr=0x1000, size=4)
    yield Burst(addr=0x2000, count=8, size=4, is_write=True)
    yield Fence()


def test_run_functional_collects_all_operations():
    ops = run_functional(simple_kernel())
    assert len(ops) == 4
    assert isinstance(ops[0], Compute)
    assert isinstance(ops[1], Access)
    assert isinstance(ops[2], Burst)
    assert isinstance(ops[3], Fence)


def test_count_bytes_sums_access_and_burst():
    ops = run_functional(simple_kernel())
    assert count_bytes(ops) == 4 + 8 * 4


def test_burst_total_bytes():
    burst = Burst(addr=0, count=16, size=8)
    assert burst.total_bytes == 128


def test_compute_rejects_negative_cycles():
    with pytest.raises(ValueError):
        Compute(-1)


def test_process_state_advance_and_finish():
    state = ProcessState(simple_kernel())
    ops = []
    while True:
        op = state.advance()
        if op is None:
            break
        ops.append(op)
    assert state.finished
    assert len(ops) == 4
    assert state.ops_executed == 4


def test_process_state_finish_hooks_called():
    state = ProcessState(simple_kernel())
    called = []
    state.on_finish.append(lambda s: called.append(s))
    while state.advance() is not None:
        pass
    state.finish(cycle=123)
    assert called == [state]
    assert state.finished_at == 123


def test_advance_after_finish_returns_none():
    state = ProcessState(iter(()))
    assert state.advance() is None
    assert state.advance() is None
    assert state.finished


def test_empty_generator_finishes_immediately():
    def empty():
        if False:  # pragma: no cover
            yield Compute(1)

    ops = run_functional(empty())
    assert ops == []
