"""Tests for the parallel, memoized sweep-execution engine."""

import pytest

from repro.core.platform import PlatformConfig
from repro.eval.harness import HarnessConfig
from repro.exec import MemoCache, SweepRunner, default_cache, stable_key
from repro.exec.keys import canonical
from repro.workloads import workload


def square(x):
    return x * x


def double(x):
    return 2 * x


# ---------------------------------------------------------------------------
# Stable keys
# ---------------------------------------------------------------------------
def test_stable_key_is_deterministic_for_dataclasses():
    spec = workload("vecadd", scale="tiny")
    config = HarnessConfig(tlb_entries=32)
    assert stable_key(spec, config) == stable_key(spec, config)


def test_stable_key_distinguishes_different_configs():
    spec = workload("vecadd", scale="tiny")
    a = stable_key(spec, HarnessConfig(tlb_entries=16))
    b = stable_key(spec, HarnessConfig(tlb_entries=32))
    assert a != b


def test_stable_key_covers_nested_config_fields():
    spec = workload("vecadd", scale="tiny")
    a = stable_key(spec, HarnessConfig(platform=PlatformConfig(page_size=4096)))
    b = stable_key(spec, HarnessConfig(platform=PlatformConfig(page_size=16384)))
    assert a != b


def test_stable_key_distinguishes_functions():
    assert stable_key(square, 3) != stable_key(double, 3)


def test_stable_key_rejects_local_closures():
    captured = 42

    def local_fn(x):
        return x + captured

    with pytest.raises(TypeError):
        stable_key(local_fn, 1)
    with pytest.raises(TypeError):
        stable_key(lambda x: x, 1)


def test_canonical_dict_order_does_not_matter():
    assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})


# ---------------------------------------------------------------------------
# MemoCache
# ---------------------------------------------------------------------------
def test_memo_cache_counts_hits_and_misses():
    cache = MemoCache()
    assert cache.get("k") is None
    cache.put("k", 123)
    assert cache.get("k") == 123
    assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}
    cache.clear()
    assert len(cache) == 0


def test_default_cache_is_process_global():
    assert default_cache() is default_cache()


# ---------------------------------------------------------------------------
# SweepRunner
# ---------------------------------------------------------------------------
def test_serial_map_preserves_order():
    runner = SweepRunner(jobs=1)
    assert runner.map(square, [3, 1, 2]) == [9, 1, 4]


def test_parallel_map_matches_serial():
    items = list(range(12))
    serial = SweepRunner(jobs=1).map(square, items)
    parallel = SweepRunner(jobs=4).map(square, items)
    assert parallel == serial


def test_unpicklable_function_falls_back_to_serial():
    offset = 10
    runner = SweepRunner(jobs=4)

    def local_fn(x):
        return x + offset

    assert runner.map(local_fn, [1, 2, 3]) == [11, 12, 13]
    assert runner.stats.serial_batches == 1
    assert runner.stats.parallel_batches == 0


def test_cache_dedupes_within_one_call():
    runner = SweepRunner(jobs=1, cache=MemoCache())
    calls = runner.map(square, [5, 5, 5, 6])
    assert calls == [25, 25, 25, 36]
    assert runner.stats.points_executed == 2     # 5 and 6 evaluated once each
    assert runner.stats.cache_hits == 2


def test_cache_reuses_across_calls_and_runners():
    cache = MemoCache()
    first = SweepRunner(jobs=1, cache=cache)
    first.map(square, [1, 2, 3])
    second = SweepRunner(jobs=1, cache=cache)
    assert second.map(square, [2, 3, 4]) == [4, 9, 16]
    assert second.stats.cache_hits == 2
    assert second.stats.points_executed == 1     # only 4 was fresh


def test_cache_is_keyed_by_function_not_just_input():
    cache = MemoCache()
    runner = SweepRunner(jobs=1, cache=cache)
    assert runner.map(square, [3]) == [9]
    assert runner.map(double, [3]) == [6]        # no stale cross-function hit


def test_no_cache_means_every_point_executes():
    runner = SweepRunner(jobs=1, cache=None)
    runner.map(square, [7, 7, 7])
    assert runner.stats.points_executed == 3
    assert runner.stats.cache_hits == 0


def test_timings_and_progress_are_recorded():
    lines = []
    runner = SweepRunner(jobs=1, progress=lines.append)
    runner.map(square, [1, 2], label="demo")
    runner.map(square, [3], label="demo")
    assert runner.timings["demo"] > 0.0
    assert len(lines) == 2 and "demo" in lines[0]
    assert "demo" in runner.summary()


def test_jobs_validation():
    with pytest.raises(ValueError):
        SweepRunner(jobs=0)
    assert SweepRunner(jobs=None).jobs >= 1


def test_unpicklable_later_item_falls_back_to_serial():
    # _picklable only samples the first item; a later unpicklable one must
    # still degrade to the serial path instead of raising out of map().
    runner = SweepRunner(jobs=2)
    items = [3, lambda: None]          # second item cannot cross a process
    assert runner.map(type, items) == [int, type(items[1])]
    assert runner.stats.serial_batches == 1


def _worker_only_unknown_model(arg):
    # Stand-in for a spawn/forkserver worker that lacks an execution model
    # registered after import time: raises only outside the parent process.
    import os

    from repro.models import UnknownModelError
    parent_pid, value = arg
    if os.getpid() != parent_pid:
        raise UnknownModelError("model registered only in the parent")
    return value * 2


def test_model_missing_in_workers_falls_back_to_serial():
    import os

    runner = SweepRunner(jobs=2)
    items = [(os.getpid(), 1), (os.getpid(), 2)]
    assert runner.map(_worker_only_unknown_model, items) == [2, 4]
    assert runner.stats.serial_batches == 1


# ---------------------------------------------------------------------------
# Eager failure propagation
# ---------------------------------------------------------------------------
def _fail_fast_or_sleep(x):
    import time

    if x == 0:
        raise RuntimeError("bad point")
    time.sleep(1.0)
    return x


def test_parallel_failure_propagates_eagerly():
    # One instantly failing point among slow ones: the pool must surface the
    # failure as soon as it completes instead of draining every sleeper.
    import time

    runner = SweepRunner(jobs=2)
    started = time.perf_counter()
    with pytest.raises(RuntimeError, match="bad point"):
        runner.map(_fail_fast_or_sleep, [0, 1, 2, 3])
    elapsed = time.perf_counter() - started
    # Serial would be ~3s; a drained pool ~2s.  Eager cancel leaves at most
    # the one sleeper that was already running.
    assert elapsed < 1.8
    assert runner.stats.failed_jobs == 1


def test_serial_failure_is_counted():
    runner = SweepRunner(jobs=1)
    with pytest.raises(RuntimeError):
        runner.map(_fail_fast_or_sleep, [0])
    assert runner.stats.failed_jobs == 1


def test_genuine_type_error_still_raises_after_serial_fallback():
    # TypeError is a pool-fallback trigger; a real TypeError from fn itself
    # must re-raise from the serial pass, and be counted as a failure.
    runner = SweepRunner(jobs=2)
    with pytest.raises(TypeError):
        runner.map(len, [1, 2])
    assert runner.stats.failed_jobs >= 1


# ---------------------------------------------------------------------------
# Summary surfaces
# ---------------------------------------------------------------------------
def test_summary_dict_mirrors_the_text_summary():
    runner = SweepRunner(jobs=1, cache=MemoCache())
    runner.map(square, [1, 2, 2], label="demo")
    data = runner.summary_dict()
    assert data["jobs"] == 1
    assert set(data["timings_s"]) == {"demo"}
    assert data["total_wall_s"] >= data["timings_s"]["demo"] - 1e-9
    assert data["stats"]["points_submitted"] == 3
    assert data["stats"]["points_executed"] == 2
    assert data["stats"]["cache_hits"] == 1
    assert data["stats"]["failed_jobs"] == 0
    assert data["stats"]["retries"] == 0
    assert data["cache"]["entries"] == 2
