"""Unit tests for workload specs, suites and characterisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.platform import Platform
from repro.sim.process import Access, Burst, run_functional
from repro.workloads import (
    WorkloadSpec,
    available_workload_kernels,
    characterise,
    pattern_classes,
    standard_suite,
    workload,
)


def test_standard_suite_covers_every_kernel():
    suite = standard_suite("tiny")
    assert sorted(s.kernel for s in suite) == available_workload_kernels()


def test_suite_scales_differ_in_size():
    tiny = {s.kernel: s.params for s in standard_suite("tiny")}
    default = {s.kernel: s.params for s in standard_suite("default")}
    assert default["vecadd"]["n"] > tiny["vecadd"]["n"]
    with pytest.raises(ValueError):
        standard_suite("huge")


def test_workload_override_params():
    spec = workload("vecadd", scale="tiny", n=1000)
    assert spec.params["n"] == 1000


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        WorkloadSpec(name="x", kernel="fft")
    with pytest.raises(ValueError):
        WorkloadSpec(name="x", kernel="vecadd", residency=2.0)


@pytest.mark.parametrize("scale", ("tiny", "default", "large"))
def test_work_items_matches_bound_items(scale):
    # The spec-level item count must agree with what binding computes, for
    # every kernel at every scale — no param-name guessing.
    for spec in standard_suite(scale):
        bound = spec.bind(Platform().space)
        assert spec.work_items == bound.items, spec.kernel


def test_work_items_respects_overrides_and_defaults():
    assert workload("vecadd", scale="tiny", n=1000).work_items == 1000
    assert workload("matmul", scale="tiny", n=8).work_items == 64
    assert workload("linked_list", scale="tiny", nodes=64,
                    visit=16).work_items == 16
    # visit capped at the node count, exactly as the binder truncates.
    assert workload("linked_list", scale="tiny", nodes=64,
                    visit=1000).work_items == 64
    # Defaults (no params at all) mirror the binder defaults.
    assert WorkloadSpec(name="w", kernel="vecadd").work_items == 65536
    assert WorkloadSpec(name="w", kernel="spmv").work_items == 2048 * 8


def test_pattern_classes_cover_all_kernels():
    classified = [k for kernels in pattern_classes().values() for k in kernels]
    assert sorted(classified) == available_workload_kernels()


def test_binding_allocates_buffers_in_space():
    platform = Platform()
    before = platform.space.footprint_bytes()
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    assert platform.space.footprint_bytes() - before == bound.footprint_bytes
    assert len(bound.areas) == 3


def test_bound_workload_kernels_are_reusable():
    platform = Platform()
    bound = workload("saxpy", scale="tiny").bind(platform.space)
    first = run_functional(bound.make_kernel())
    second = run_functional(bound.make_kernel())
    assert len(first) == len(second) > 0


def test_bound_workload_accesses_stay_inside_areas():
    platform = Platform()
    for kernel in ("vecadd", "matmul", "linked_list", "histogram", "spmv",
                   "filter2d", "merge_sort", "random_access", "saxpy"):
        bound = workload(kernel, scale="tiny").bind(platform.space)
        ops = run_functional(bound.make_kernel())
        for op in ops:
            if not isinstance(op, (Access, Burst)):
                continue
            size = op.total_bytes if isinstance(op, Burst) else op.size
            area = platform.space.area_of(op.addr)
            assert area is not None, f"{kernel}: {op.addr:#x} outside any mapping"
            assert area.contains(op.addr, size)


def test_linked_list_marshal_items_set():
    platform = Platform()
    ll = workload("linked_list", scale="tiny").bind(platform.space)
    stream = workload("vecadd", scale="tiny").bind(platform.space)
    assert ll.marshal_items > 0
    assert stream.marshal_items == 0


def test_residency_controls_resident_pages():
    platform = Platform()
    bound = workload("vecadd", scale="tiny", residency=0.5).bind(platform.space)
    resident = sum(platform.space.resident_pages(a) for a in bound.areas)
    total = sum(a.size for a in bound.areas) // platform.page_size
    assert 0 < resident < total


def test_seed_makes_binding_deterministic():
    def chain(seed):
        platform = Platform()
        bound = workload("linked_list", scale="tiny", seed=seed).bind(platform.space)
        return [op.addr for op in run_functional(bound.make_kernel())
                if isinstance(op, Access)]

    assert chain(3) == chain(3)
    assert chain(3) != chain(4)


# ---------------------------------------------------------------- characterise
def test_characterise_reports_consistent_traffic():
    platform = Platform()
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    result = characterise(bound, pattern="streaming")
    n = bound.items
    assert result.bytes_moved == 3 * n * 4
    assert result.unique_pages == bound.footprint_bytes // 4096
    assert result.memory_operations > 0
    assert result.compute_cycles > 0
    row = result.as_row()
    assert row["workload"] == "vecadd"
    assert row["pattern"] == "streaming"


def test_characterise_blocked_kernel_shows_page_reuse():
    platform = Platform()
    matmul = characterise(workload("matmul", scale="tiny").bind(platform.space))
    stream = characterise(workload("vecadd", scale="tiny").bind(platform.space))
    assert matmul.page_reuse_factor > stream.page_reuse_factor


def test_characterise_pointer_kernel_has_large_working_set():
    platform = Platform()
    pointer = characterise(workload("linked_list", scale="tiny").bind(platform.space))
    stream = characterise(workload("vecadd", scale="tiny").bind(platform.space))
    # Pointer chasing touches its pages in random order: the 90% working set
    # is close to the full footprint, unlike streaming.
    assert pointer.tlb_working_set_pages > 0.8 * pointer.unique_pages
    assert stream.tlb_working_set_pages <= stream.unique_pages


@settings(max_examples=15, deadline=None)
@given(n=st.sampled_from([256, 1024, 4096]),
       residency=st.sampled_from([0.5, 1.0]))
def test_property_binding_footprint_matches_areas(n, residency):
    platform = Platform()
    bound = workload("vecadd", scale="tiny", n=n,
                     residency=residency).bind(platform.space)
    mapped = sum(a.size for a in bound.areas)
    # Mappings are page-aligned, so they may exceed the nominal footprint by
    # at most one page per buffer.
    assert bound.footprint_bytes <= mapped
    assert mapped < bound.footprint_bytes + 4096 * len(bound.areas)
    assert bound.copy_in_bytes + bound.copy_out_bytes <= mapped
