"""Unit tests for bus arbitration policies."""

import pytest

from repro.mem.arbiter import (
    FixedPriorityArbiter,
    RoundRobinArbiter,
    WeightedArbiter,
    make_arbiter,
)


def test_round_robin_rotates_over_all_candidates():
    arbiter = RoundRobinArbiter()
    grants = [arbiter.choose([0, 1, 2]) for _ in range(6)]
    assert grants == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_idle_masters():
    arbiter = RoundRobinArbiter()
    assert arbiter.choose([1, 3]) == 1
    assert arbiter.choose([1, 3]) == 3
    assert arbiter.choose([1, 3]) == 1


def test_round_robin_single_candidate():
    arbiter = RoundRobinArbiter()
    for _ in range(3):
        assert arbiter.choose([2]) == 2


def test_round_robin_empty_rejected():
    with pytest.raises(ValueError):
        RoundRobinArbiter().choose([])


def test_fixed_priority_always_lowest():
    arbiter = FixedPriorityArbiter()
    assert arbiter.choose([3, 1, 2]) == 1
    assert arbiter.choose([3, 1, 2]) == 1
    assert arbiter.choose([2, 3]) == 2


def test_fixed_priority_empty_rejected():
    with pytest.raises(ValueError):
        FixedPriorityArbiter().choose([])


def test_weighted_grants_proportional_to_weights():
    arbiter = WeightedArbiter([2, 1])
    grants = [arbiter.choose([0, 1]) for _ in range(6)]
    assert grants.count(0) == 4
    assert grants.count(1) == 2


def test_weighted_rejects_bad_weights():
    with pytest.raises(ValueError):
        WeightedArbiter([])
    with pytest.raises(ValueError):
        WeightedArbiter([1, 0])


def test_weighted_handles_subset_of_masters():
    arbiter = WeightedArbiter([1, 1, 1])
    assert arbiter.choose([2]) == 2


def test_make_arbiter_factory():
    assert isinstance(make_arbiter("round_robin", 4), RoundRobinArbiter)
    assert isinstance(make_arbiter("fixed_priority", 4), FixedPriorityArbiter)
    assert isinstance(make_arbiter("weighted", 4), WeightedArbiter)
    with pytest.raises(ValueError):
        make_arbiter("unknown", 4)


def test_round_robin_fairness_over_many_rounds():
    arbiter = RoundRobinArbiter()
    counts = {0: 0, 1: 0, 2: 0, 3: 0}
    for _ in range(400):
        counts[arbiter.choose([0, 1, 2, 3])] += 1
    assert max(counts.values()) - min(counts.values()) <= 1
