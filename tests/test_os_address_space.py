"""Unit and property tests for process address spaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.layout import Region
from repro.os.address_space import AddressSpace
from repro.os.frames import FrameAllocator
from repro.vm.types import AccessType


def make_space(num_frames=256, page_size=4096, seed=1):
    region = Region("dram", 0x1000000, num_frames * page_size)
    return AddressSpace(FrameAllocator(region, page_size=page_size), seed=seed)


def test_mmap_fully_resident_translates_everywhere():
    space = make_space()
    area = space.mmap(8 * 4096, name="buf")
    for offset in range(0, area.size, 4096):
        translation = space.translate(area.start + offset)
        assert translation.paddr >= 0x1000000
    assert space.resident_pages(area) == 8


def test_mmap_zero_residency_has_no_resident_pages():
    space = make_space()
    area = space.mmap(8 * 4096, residency=0.0)
    assert space.resident_pages(area) == 0
    with pytest.raises(KeyError):
        space.translate(area.start)


def test_mmap_partial_residency_matches_fraction():
    space = make_space()
    area = space.mmap(16 * 4096, residency=0.5)
    assert space.resident_pages(area) == 8


def test_mmap_rounds_size_to_page():
    space = make_space()
    area = space.mmap(100)
    assert area.size == 4096


def test_mmap_rejects_bad_args():
    space = make_space()
    with pytest.raises(ValueError):
        space.mmap(0)
    with pytest.raises(ValueError):
        space.mmap(4096, residency=1.5)
    with pytest.raises(ValueError):
        space.mmap(4096, fixed_addr=123)   # not page aligned


def test_mappings_do_not_overlap():
    space = make_space()
    areas = [space.mmap(4096 * 4, name=f"a{i}") for i in range(5)]
    for i, first in enumerate(areas):
        for second in areas[i + 1:]:
            assert not first.overlaps(second)


def test_fixed_address_mapping_and_overlap_rejection():
    space = make_space()
    space.mmap(4 * 4096, fixed_addr=0x7000_0000)
    with pytest.raises(ValueError):
        space.mmap(4096, fixed_addr=0x7000_1000)


def test_malloc_allocates_in_heap_region():
    space = make_space()
    first = space.malloc(1000)
    second = space.malloc(1000)
    assert first >= AddressSpace.HEAP_BASE
    assert second >= first + 4096
    assert space.translate(first).writable


def test_munmap_releases_frames_and_unmaps():
    space = make_space(num_frames=32)
    before = space.frames.frames_free
    area = space.mmap(8 * 4096)
    assert space.frames.frames_free == before - 8
    released = space.munmap(area)
    assert released == 8
    assert space.frames.frames_free == before
    with pytest.raises(KeyError):
        space.translate(area.start)
    with pytest.raises(ValueError):
        space.munmap(area)


def test_munmap_shoots_down_registered_mmus():
    class FakeMMU:
        def __init__(self):
            self.invalidated = []

        def invalidate(self, vpn, asid=None):
            self.invalidated.append((vpn, asid))

    space = make_space()
    mmu = FakeMMU()
    space.register_shootdown_target(mmu)
    area = space.mmap(2 * 4096)
    space.munmap(area)
    assert len(mmu.invalidated) == 2
    # Shootdowns are targeted at this space's ASID: on a TLB shared across
    # processes, other spaces' entries for the same VPN must survive.
    assert all(asid == space.page_table.asid for _, asid in mmu.invalidated)


def test_protect_changes_writability():
    space = make_space()
    area = space.mmap(2 * 4096)
    space.protect(area, writable=False)
    assert space.translate(area.start, AccessType.READ) is not None
    with pytest.raises(KeyError):
        space.translate(area.start, AccessType.WRITE)


def test_pin_faults_in_missing_pages():
    space = make_space()
    area = space.mmap(8 * 4096, residency=0.25)
    missing = 8 - space.resident_pages(area)
    faulted = space.pin(area)
    assert faulted == missing
    assert space.resident_pages(area) == 8
    assert area.pinned


def test_area_of_lookup():
    space = make_space()
    area = space.mmap(4096)
    assert space.area_of(area.start) is area
    assert space.area_of(area.start + 4095) is area
    assert space.area_of(0xDEADBEEF) is None


def test_footprint_accounts_all_areas():
    space = make_space()
    space.mmap(4096)
    space.mmap(2 * 4096)
    assert space.footprint_bytes() == 3 * 4096


def test_page_size_mismatch_rejected():
    region = Region("dram", 0, 64 * 4096)
    frames = FrameAllocator(region, page_size=4096)
    from repro.vm.pagetable import PageTableConfig
    with pytest.raises(ValueError):
        AddressSpace(frames, page_table_config=PageTableConfig(page_size=16384))


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=16 * 4096),
                      min_size=1, max_size=10),
       residency=st.sampled_from([0.0, 0.25, 0.5, 1.0]))
def test_property_resident_pages_never_exceed_mapping(sizes, residency):
    space = make_space(num_frames=1024)
    for i, size in enumerate(sizes):
        area = space.mmap(size, name=f"buf{i}", residency=residency)
        pages = area.size // space.page_size
        resident = space.resident_pages(area)
        assert 0 <= resident <= pages
        if residency == 1.0:
            assert resident == pages
        if residency == 0.0:
            assert resident == 0


@settings(max_examples=30, deadline=None)
@given(n_areas=st.integers(min_value=1, max_value=8))
def test_property_translations_point_into_allocator_region(n_areas):
    space = make_space(num_frames=512)
    region = space.frames.region
    for i in range(n_areas):
        area = space.mmap(4 * 4096, name=f"a{i}")
        for offset in range(0, area.size, space.page_size):
            paddr = space.translate(area.start + offset).paddr
            assert region.base <= paddr < region.end
