"""Tests for the SVM variant family (svm-prefetch, svm-shared-tlb, svm-hugepage).

These assert the trends each variant exists to produce — not just that the
models run: prefetching cuts demand TLB misses and miss-stall cycles on
streaming kernels, hugepages cut walker traffic, and the shared-TLB model
composes with multi-thread and multi-process workloads.
"""

import pytest

from repro.eval.experiments import fig11_model_ablation
from repro.eval.harness import HarnessConfig
from repro.exec.jobs import ExperimentJob, run_job
from repro.models import (ALL_MODELS, CANONICAL_MODELS, VARIANT_MODELS,
                          get_model, registered_models)
from repro.workloads import duet, workload

CONFIG = HarnessConfig(tlb_entries=16)


def _run(model: str, kernel: str = "vecadd", **job_kwargs):
    return run_job(ExperimentJob(model, workload(kernel, scale="tiny"),
                                 CONFIG, **job_kwargs))


# ---------------------------------------------------------------------------
# Registry surface
# ---------------------------------------------------------------------------
def test_seven_models_are_registered():
    assert len(ALL_MODELS) == 7
    assert set(ALL_MODELS) == set(CANONICAL_MODELS) | set(VARIANT_MODELS)
    assert set(ALL_MODELS) <= set(registered_models())
    for name in VARIANT_MODELS:
        assert get_model(name).name == name


def test_models_cli_lists_the_variant_family(capsys):
    from repro.cli import main
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in VARIANT_MODELS:
        assert name in out
    assert len([line for line in out.splitlines() if line.strip()]) >= 7


# ---------------------------------------------------------------------------
# svm-prefetch: fewer TLB-miss stalls than svm
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["vecadd", "saxpy", "filter2d", "matmul"])
def test_prefetch_reduces_tlb_misses_and_stalls_on_streaming_kernels(kernel):
    svm = _run("svm", kernel)
    prefetch = _run("svm-prefetch", kernel)
    assert prefetch.tlb_misses < svm.tlb_misses
    assert (prefetch.breakdown["miss_stall_cycles"]
            < svm.breakdown["miss_stall_cycles"])
    assert prefetch.tlb_hit_rate > svm.tlb_hit_rate
    assert prefetch.breakdown["prefetch_hits"] > 0


def test_prefetch_throttles_itself_on_random_access():
    # A random table walk has no stride; an unthrottled prefetcher would
    # flood the serial walker and *slow the workload down*.  The accuracy
    # gate must keep issued prefetches to a handful and the slowdown small.
    svm = _run("svm", "random_access")
    prefetch = _run("svm-prefetch", "random_access")
    assert prefetch.breakdown["prefetches_issued"] < 32
    assert prefetch.total_cycles < svm.total_cycles * 1.05


def test_prefetch_moves_walks_off_the_demand_path():
    svm = _run("svm")
    prefetch = _run("svm-prefetch")
    # Walks happen in the background (prefetches) instead of while the
    # datapath waits; they also deduplicate the concurrent re-misses the
    # demand path suffers on fresh pages, so *total* walks may even drop.
    assert prefetch.breakdown["prefetches_issued"] > 0
    demand_walks = (prefetch.breakdown["walks"]
                    - prefetch.breakdown["prefetches_issued"])
    assert demand_walks < svm.breakdown["walks"]
    assert (prefetch.breakdown["miss_stall_cycles"]
            < svm.breakdown["miss_stall_cycles"])


# ---------------------------------------------------------------------------
# svm-hugepage: fewer walker cycles than svm
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["vecadd", "matmul", "random_access"])
def test_hugepage_reduces_walker_traffic(kernel):
    svm = _run("svm", kernel)
    huge = _run("svm-hugepage", kernel)
    assert huge.breakdown["walker_cycles"] < svm.breakdown["walker_cycles"]
    assert huge.breakdown["walker_levels"] < svm.breakdown["walker_levels"]
    assert huge.tlb_misses <= svm.tlb_misses


def test_hugepage_walks_read_one_level_per_miss():
    huge = _run("svm-hugepage")
    assert huge.breakdown["walks"] > 0
    assert huge.breakdown["walker_levels"] == huge.breakdown["walks"]


# ---------------------------------------------------------------------------
# svm-shared-tlb: one TLB for all threads / processes
# ---------------------------------------------------------------------------
def test_shared_tlb_matches_svm_for_a_single_thread():
    # With one hardware thread there is nothing to share: the model must
    # reproduce the canonical numbers exactly.
    svm = _run("svm")
    shared = _run("svm-shared-tlb")
    assert shared.total_cycles == svm.total_cycles
    assert shared.tlb_misses == svm.tlb_misses


def test_shared_tlb_contends_across_threads():
    private = _run("svm", "random_access", num_threads=2)
    shared = _run("svm-shared-tlb", "random_access", num_threads=2)
    # Two threads squeezing into one 16-entry TLB miss more than two
    # threads with 16 private entries each.
    assert shared.tlb_misses > private.tlb_misses
    assert shared.total_cycles >= private.total_cycles


def test_shared_tlb_runs_multiprocess_specs():
    outcome = run_job(ExperimentJob(
        "svm-shared-tlb", duet("vecadd", "linked_list", scale="tiny",
                               quantum=5000), CONFIG))
    assert outcome.model == "svm-shared-tlb"
    assert outcome.breakdown["context_switches"] >= 2
    assert outcome.total_cycles > 0


# ---------------------------------------------------------------------------
# Fig. 11 ablation
# ---------------------------------------------------------------------------
def test_fig11_sweeps_all_seven_models():
    rows = fig11_model_ablation(scale="tiny", kernels=("vecadd",))
    assert len(rows) == 1
    row = rows[0]
    for model in ALL_MODELS:
        assert isinstance(row[model], int) and row[model] > 0
    # The headline trends, straight from the ablation row.
    assert row["tlb_misses[svm-prefetch]"] < row["tlb_misses[svm]"]
    assert row["walker_levels[svm-hugepage]"] < row["walker_levels[svm]"]


def test_fig11_through_cli_with_model_subset(capsys):
    from repro.cli import main
    assert main(["run", "fig11", "--scale", "tiny",
                 "--models", "svm,svm-prefetch", "--json"]) == 0
    import json
    rows = json.loads(capsys.readouterr().out)
    assert all("svm-prefetch" in row and "copydma" not in row for row in rows)


def test_run_models_flag_rejects_unknown_and_modelless_experiments(capsys):
    from repro.cli import main
    assert main(["run", "fig11", "--models", "warpdrive"]) == 2
    assert main(["run", "fig5", "--models", "svm"]) == 2
