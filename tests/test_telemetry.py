"""Tests for the scheduling-telemetry subsystem and adaptive policies.

Three layers:

* **Counter exactness** — the TelemetryBus samples at fence-drained slice
  boundaries, so summing any counter over every epoch must reproduce the
  run's final statistics exactly, and per-process (per-ASID) attribution
  must partition the totals without leakage.
* **Plan invariants** — the PR-4 guarantees hold for epoch-driven execution
  too: every operation of every process executes exactly once, and a fixed
  (spec, seed) pair yields a bit-identical run, telemetry included.
* **Feedback** — a toy adaptive policy registered in-test measurably
  reallocates quanta between epochs through ``observe``, and the built-in
  ``adaptive-fault`` policy never loses to ``round-robin`` on a pathological
  one-thrasher contention mix.
"""

from repro.eval.harness import HarnessConfig, run_multiprocess
from repro.os.scheduler import (ADAPTIVE_POLICIES, SCHEDULER_POLICIES,
                                AdaptiveSchedulingPolicy, get_policy,
                                register_policy)
from repro.sim.stats import sum_matching
from repro.workloads.multiprocess import contention

#: The pathological mix: one TLB-hostile sparse sweeper (process 0) against
#: one well-behaved streaming kernel, at partial residency so faults happen
#: online.  Small shared TLB so the thrasher's slices actually do damage.
THRASHER_MIX = dict(scale="tiny", quantum=2_000, residency=0.5)
SMALL_TLB = HarnessConfig(tlb_entries=16)


def _adaptive_run(policy, config=SMALL_TLB, kernels=("random_access",
                                                     "vecadd")):
    mp = contention(list(kernels), policy=policy, **THRASHER_MIX)
    return run_multiprocess(mp, config, flush_on_switch=False)


# ---------------------------------------------------------------------------
# Counter exactness
# ---------------------------------------------------------------------------
def test_epoch_totals_reproduce_final_stats_exactly():
    result = _adaptive_run("adaptive-fault")
    assert result.ok and result.telemetry is not None
    totals = result.telemetry.totals()
    stats = result.system_result.stats
    assert totals["tlb_misses"] == result.tlb_misses
    assert totals["tlb_hits"] == sum_matching(stats, "mmu.", "tlb_hits")
    assert totals["tlb_refills"] == sum_matching(stats, "mmu.", "tlb_refills")
    assert totals["walker_cycles"] == result.walker_cycles
    assert totals["major_faults"] == sum_matching(stats, "os.",
                                                  "major_faults")
    assert totals["minor_faults"] == sum_matching(stats, "os.",
                                                  "minor_faults")
    assert totals["context_switch_stalls"] == stats[
        "os.kernel.cycles.context_switch"]


def test_per_asid_attribution_partitions_totals_without_leaks():
    result = _adaptive_run("miss-fair")
    trace = result.telemetry
    names = [info.name for info in trace.processes]
    asids = [info.asid for info in trace.processes]
    assert len(set(asids)) == len(asids)       # one ASID per process
    per_process = {name: trace.process_totals(name) for name in names}
    for counter in ("tlb_misses", "tlb_hits", "major_faults",
                    "walker_cycles"):
        assert sum(p[counter] for p in per_process.values()) == \
            trace.totals()[counter]
    # The thrasher (sparse random access, process 0) must be the process
    # the misses are attributed to — not its streaming neighbour.
    assert per_process["0"]["tlb_misses"] > per_process["1"]["tlb_misses"]


def test_major_faults_match_the_per_process_fault_handlers():
    result = _adaptive_run("adaptive-fault")
    stats = result.system_result.stats
    trace = result.telemetry
    total_pages = sum_matching(stats, "os.kernel.faults.",
                               "pages_faulted_in")
    assert trace.totals()["major_faults"] == total_pages > 0
    # Attribution is by *ownership*: each process's majors equal its own
    # handler's demand-paged count, not whatever was live during its slices.
    for info in trace.processes:
        assert trace.process_totals(info.name)["major_faults"] == \
            stats.get(f"{info.fault_handler}.pages_faulted_in", 0.0)


# ---------------------------------------------------------------------------
# Plan invariants under adaptive execution
# ---------------------------------------------------------------------------
def test_every_operation_executes_exactly_once():
    from repro.core.platform import Platform
    from repro.sim.process import run_functional

    mp = contention(["random_access", "vecadd"], policy="miss-fair",
                    **THRASHER_MIX)
    # Reference op counts: bind the same specs into a throwaway platform.
    platform = Platform()
    spaces = [platform.space, platform.kernel.create_process("ref1")]
    expected = [len(run_functional(spec.bind(spaces[i]).make_kernel()))
                for i, spec in enumerate(mp.specs)]

    result = run_multiprocess(mp, SMALL_TLB, flush_on_switch=False)
    trace = result.telemetry
    for index, count in enumerate(expected):
        assert trace.process_totals(str(index))["ops_executed"] == count
    final = trace.epochs[-1]
    assert all(p.remaining_ops == 0 for p in final.processes)


def test_adaptive_runs_are_deterministic_for_fixed_spec_and_seed():
    for policy in ADAPTIVE_POLICIES:
        first = _adaptive_run(policy)
        second = _adaptive_run(policy)
        assert first.total_cycles == second.total_cycles
        assert first.tlb_misses == second.tlb_misses
        assert first.telemetry.totals() == second.telemetry.totals()
        for name in ("0", "1"):
            assert (first.telemetry.quanta_history(name)
                    == second.telemetry.quanta_history(name))


def test_all_adaptive_builtins_complete_under_host_sharing():
    config = HarnessConfig(tlb_entries=16, host_shares_tlb=True)
    for policy in ADAPTIVE_POLICIES:
        result = _adaptive_run(policy, config=config)
        assert result.ok
        assert result.telemetry.num_epochs > 1
        assert result.translation_breakdown()["epochs"] == \
            result.telemetry.num_epochs


# ---------------------------------------------------------------------------
# Feedback actually steers
# ---------------------------------------------------------------------------
def test_toy_adaptive_policy_reallocates_quanta_between_epochs():
    # The "fifth model" proof for online scheduling: a policy defined
    # entirely outside repro.os drives run_multiprocess epoch-wise through
    # the observe hook, and its decisions show up in the telemetry trace.
    @register_policy("test-flip-flop")
    class FlipFlopPolicy(AdaptiveSchedulingPolicy):
        """Alternates which process gets a long quantum every epoch."""

        def observe(self, epoch):
            favoured = str(epoch.epoch % len(epoch.processes))
            return {p.process: (epoch.base_quantum * 2
                                if p.process == favoured
                                else epoch.base_quantum // 2)
                    for p in epoch.processes}

    try:
        result = _adaptive_run("test-flip-flop")
        assert result.ok
        history = result.telemetry.quanta_history("0")
        assert len(history) > 2
        # Epoch 0 is the static start; afterwards the grant flip-flops.
        assert history[1] != history[2]
        granted = {h for h in history[1:] if h > 0}
        assert granted <= {2 * 2_000, 2_000 // 2}
    finally:
        del SCHEDULER_POLICIES["test-flip-flop"]


def test_adaptive_fault_shrinks_the_thrashers_quanta():
    result = _adaptive_run("adaptive-fault")
    trace = result.telemetry
    # After the first feedback round the sparse sweeper (0) must hold a
    # shorter quantum than the streaming kernel (1).
    thrasher = trace.quanta_history("0")
    streamer = trace.quanta_history("1")
    assert any(t < s for t, s in zip(thrasher[1:], streamer[1:])
               if t > 0 and s > 0)


def test_adaptive_fault_never_loses_to_round_robin_on_one_thrasher_mix():
    adaptive = _adaptive_run("adaptive-fault")
    static = _adaptive_run("round-robin")
    assert static.telemetry is None          # static path: no epoch machinery
    assert adaptive.total_cycles <= static.total_cycles


def test_builtin_adaptive_policies_are_registered_and_flagged():
    for name in ADAPTIVE_POLICIES:
        assert name in SCHEDULER_POLICIES
        assert get_policy(name).adaptive is True
    for name in ("round-robin", "weighted-fair", "fault-aware"):
        assert get_policy(name).adaptive is False
