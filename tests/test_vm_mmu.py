"""Unit tests for the per-thread MMU (TLB + walker + fault delegation)."""

import pytest

from repro.mem.port import LatencyPipe
from repro.sim.engine import Simulator
from repro.vm.faults import AbortingFaultHandler, ImmediateFaultHandler
from repro.vm.mmu import MMU, MMUConfig
from repro.vm.pagetable import PageTable, PageTableConfig
from repro.vm.tlb import TLBConfig
from repro.vm.types import AccessType
from repro.vm.walker import PageTableWalker


def make_mmu(tlb_entries=4, fault_handler=None, page_size=4096,
             walker_latency=20):
    sim = Simulator()
    table = PageTable(PageTableConfig(page_size=page_size))
    walker = PageTableWalker(sim, port=LatencyPipe(sim, latency=walker_latency))
    mmu = MMU(sim, table, walker, fault_handler=fault_handler,
              config=MMUConfig(tlb=TLBConfig(entries=tlb_entries,
                                             page_size=page_size)))
    return sim, table, mmu


def translate(sim, mmu, vaddr, access=AccessType.READ):
    results = []
    mmu.translate(vaddr, access, lambda t: results.append(t))
    sim.run()
    assert len(results) == 1
    return results[0]


def test_tlb_miss_then_hit_translates_correctly():
    sim, table, mmu = make_mmu()
    table.map(vpn=2, frame=20)
    first = translate(sim, mmu, 2 * 4096 + 8)
    second = translate(sim, mmu, 2 * 4096 + 16)
    assert first.paddr == 20 * 4096 + 8
    assert second.paddr == 20 * 4096 + 16
    assert mmu.stats.counter("tlb_misses").value == 1
    assert mmu.stats.counter("tlb_hits").value == 1


def test_hit_is_faster_than_miss():
    sim, table, mmu = make_mmu()
    table.map(vpn=1, frame=1)
    start = sim.now
    translate(sim, mmu, 4096)
    miss_time = sim.now - start
    start = sim.now
    translate(sim, mmu, 4096 + 4)
    hit_time = sim.now - start
    assert hit_time < miss_time


def test_unmapped_without_handler_is_fatal():
    sim, _, mmu = make_mmu()
    result = translate(sim, mmu, 0xDEAD000)
    assert result is None
    assert mmu.stats.counter("fatal_faults").value == 1


def test_not_present_fault_resolved_by_handler():
    sim, table, mmu = make_mmu()
    handler = ImmediateFaultHandler(table, frame_for_vpn=lambda vpn: vpn + 100)
    mmu.fault_handler = handler
    table.map(vpn=6, frame=0, present=False)
    result = translate(sim, mmu, 6 * 4096 + 4)
    assert result is not None
    assert result.paddr == table.entry(6).frame * 4096 + 4
    assert mmu.stats.counter("faults.not_present").value == 1
    assert len(handler.log) == 1 and handler.log[0].resolved


def test_aborting_handler_leads_to_fatal_fault():
    sim, table, mmu = make_mmu()
    mmu.fault_handler = AbortingFaultHandler()
    table.map(vpn=6, frame=0, present=False)
    result = translate(sim, mmu, 6 * 4096)
    assert result is None
    assert mmu.stats.counter("fatal_faults").value == 1


def test_protection_fault_on_write_to_readonly():
    sim, table, mmu = make_mmu()
    mmu.fault_handler = ImmediateFaultHandler(table)
    table.map(vpn=8, frame=8, writable=False)
    read = translate(sim, mmu, 8 * 4096, AccessType.READ)
    assert read is not None
    write = translate(sim, mmu, 8 * 4096, AccessType.WRITE)
    assert write is None            # ImmediateFaultHandler refuses protection faults
    assert mmu.stats.counter("faults.protection").value == 1


def test_write_hit_requires_writable_tlb_entry():
    sim, table, mmu = make_mmu()
    table.map(vpn=4, frame=4, writable=True)
    translate(sim, mmu, 4 * 4096)            # fill TLB
    result = translate(sim, mmu, 4 * 4096, AccessType.WRITE)
    assert result is not None
    assert result.writable


def test_shootdown_forces_rewalk():
    sim, table, mmu = make_mmu()
    table.map(vpn=5, frame=5)
    translate(sim, mmu, 5 * 4096)
    assert mmu.stats.counter("tlb_misses").value == 1
    # OS remaps the page to a different frame and shoots down the TLB.
    table.map(vpn=5, frame=99)
    assert mmu.invalidate(5) is True
    result = translate(sim, mmu, 5 * 4096)
    assert result.paddr == 99 * 4096
    assert mmu.stats.counter("tlb_misses").value == 2


def test_flush_clears_all_entries():
    sim, table, mmu = make_mmu()
    for vpn in range(3):
        table.map(vpn, frame=vpn)
        translate(sim, mmu, vpn * 4096)
    assert mmu.flush() == 3
    translate(sim, mmu, 0)
    assert mmu.stats.counter("tlb_misses").value == 4


def test_page_size_must_match_page_table():
    sim = Simulator()
    table = PageTable(PageTableConfig(page_size=16384))
    walker = PageTableWalker(sim)
    with pytest.raises(ValueError):
        MMU(sim, table, walker,
            config=MMUConfig(tlb=TLBConfig(page_size=4096)))


def test_large_page_size_translation():
    sim, table, mmu = make_mmu(page_size=65536)
    table.map(vpn=1, frame=3)
    result = translate(sim, mmu, 65536 + 400)
    assert result.paddr == 3 * 65536 + 400
    assert result.page_size == 65536


def test_export_stats_publishes_tlb_metrics():
    sim, table, mmu = make_mmu()
    table.map(vpn=0, frame=0)
    translate(sim, mmu, 0)
    translate(sim, mmu, 4)
    mmu.export_stats()
    assert mmu.stats.scalars["tlb_hit_rate"].value == pytest.approx(0.5)
    assert mmu.stats.scalars["tlb_occupancy"].value == 1


def test_fault_retry_limit_eventually_gives_up():
    sim, table, mmu = make_mmu()

    class NeverFixesHandler:
        def __init__(self):
            self.calls = 0

        def handle_fault(self, fault, resume):
            self.calls += 1
            resume(True)       # claims success but never fixes the PTE

    handler = NeverFixesHandler()
    mmu.fault_handler = handler
    table.map(vpn=1, frame=0, present=False)
    result = translate(sim, mmu, 4096)
    assert result is None
    assert handler.calls == mmu.config.max_fault_retries
