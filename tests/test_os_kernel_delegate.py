"""Unit tests for the host kernel cost model and delegate threads."""

import pytest

from repro.os.delegate import DelegateThread, ThreadArguments
from repro.os.kernel import HostKernel, KernelConfig
from repro.sim.engine import Simulator


def make_kernel(**overrides):
    sim = Simulator()
    config = KernelConfig(**overrides) if overrides else KernelConfig()
    return sim, HostKernel(sim, config)


def test_create_process_returns_distinct_spaces():
    sim, kernel = make_kernel()
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    assert a is not b
    assert a.page_table.asid != b.page_table.asid
    assert kernel.processes == ["a", "b"]
    with pytest.raises(ValueError):
        kernel.create_process("a")


def test_fault_handler_created_per_process():
    sim, kernel = make_kernel()
    kernel.create_process("p")
    handler = kernel.fault_handler("p")
    assert handler.space is kernel.address_space("p")


def test_driver_costs_accumulate():
    sim, kernel = make_kernel()
    space = kernel.create_process("p")
    area = space.mmap(8 * 4096)
    total = 0
    total += kernel.cost_hw_thread_create()
    total += kernel.cost_hw_thread_join()
    total += kernel.cost_pin(area)
    total += kernel.cost_prefetch(4)
    total += kernel.cost_dma_alloc(64 * 1024)
    assert kernel.software_overhead_cycles == total
    assert total > 0


def test_pin_cost_scales_with_pages():
    sim, kernel = make_kernel()
    space = kernel.create_process("p")
    small = space.mmap(2 * 4096)
    large = space.mmap(32 * 4096)
    assert kernel.cost_pin(large) > kernel.cost_pin(small)


def test_kernel_config_validation():
    with pytest.raises(ValueError):
        KernelConfig(page_size=1000)
    with pytest.raises(ValueError):
        KernelConfig(page_table_levels=0)


def test_thread_arguments_accessors():
    args = ThreadArguments(pointers={"src": 0x1000}, scalars={"n": 42})
    assert args.pointer("src") == 0x1000
    assert args.scalar("n") == 42


def test_delegate_lifecycle_charges_create_and_join():
    sim, kernel = make_kernel()
    space = kernel.create_process("p")
    delegate = DelegateThread(sim, kernel, space, "hwt0")

    fabric_duration = 500
    started = []

    def start_fabric(done):
        started.append(sim.now)
        sim.schedule(fabric_duration, done)

    completion = delegate.create_and_start(start_fabric)
    sim.run()

    assert delegate.joined
    assert completion.finished_at - completion.started_at == fabric_duration
    # Wall time adds driver create + join overhead around the fabric run.
    assert completion.wall_cycles > fabric_duration
    assert started[0] == completion.started_at


def test_delegate_pins_areas_before_start():
    sim, kernel = make_kernel()
    space = kernel.create_process("p")
    area = space.mmap(8 * 4096, residency=0.0)
    delegate = DelegateThread(sim, kernel, space, "hwt0")
    delegate.create_and_start(lambda done: sim.schedule(10, done),
                              pinned_areas=[area])
    sim.run()
    assert space.resident_pages(area) == 8
    assert kernel.stats.counter("cycles.pin").value > 0


def test_delegate_on_joined_hook_and_double_start_rejected():
    sim, kernel = make_kernel()
    space = kernel.create_process("p")
    delegate = DelegateThread(sim, kernel, space, "hwt0")
    seen = []
    delegate.on_joined(lambda completion: seen.append(completion.name))
    delegate.create_and_start(lambda done: sim.schedule(1, done))
    sim.run()
    assert seen == ["hwt0"]


def test_prefetch_cost_charged_when_requested():
    sim, kernel = make_kernel()
    space = kernel.create_process("p")
    delegate = DelegateThread(sim, kernel, space, "hwt0")
    delegate.create_and_start(lambda done: sim.schedule(1, done),
                              prefetch_pages=16)
    sim.run()
    assert kernel.stats.counter("cycles.prefetch").value > 0
