"""Unit tests for statistics collection."""

import pytest

from repro.sim.stats import (
    Accumulator,
    Counter,
    Histogram,
    Scalar,
    StatsRegistry,
    merge_snapshots,
)


def test_counter_increments_and_resets():
    counter = Counter("hits")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_scalar_set():
    scalar = Scalar("cycles")
    scalar.set(123.0)
    assert scalar.value == 123.0


def test_accumulator_tracks_mean_min_max():
    acc = Accumulator("latency")
    for sample in (10, 20, 30):
        acc.add(sample)
    assert acc.count == 3
    assert acc.mean == pytest.approx(20.0)
    assert acc.minimum == 10
    assert acc.maximum == 30


def test_accumulator_empty_mean_is_zero():
    assert Accumulator("x").mean == 0.0


def test_histogram_buckets_power_of_two():
    hist = Histogram("lat")
    for sample in (0, 1, 2, 3, 4, 100):
        hist.add(sample)
    assert hist.count == 6
    buckets = hist.as_dict()
    assert sum(buckets.values()) == 6


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        Histogram("x").add(-1)


def test_stat_group_snapshot_flattens_all_kinds():
    registry = StatsRegistry()
    group = registry.group("dram")
    group.counter("reads").inc(3)
    group.scalar("cycles").set(99)
    group.accumulator("latency").add(10)
    group.accumulator("latency").add(30)
    snap = group.snapshot()
    assert snap["reads"] == 3
    assert snap["cycles"] == 99
    assert snap["latency.mean"] == pytest.approx(20.0)
    assert snap["latency.count"] == 2


def test_registry_snapshot_prefixes_owner():
    registry = StatsRegistry()
    registry.group("bus").counter("requests").inc(7)
    registry.group("tlb").counter("hits").inc(2)
    snap = registry.snapshot()
    assert snap["bus.requests"] == 7
    assert snap["tlb.hits"] == 2


def test_registry_query_by_prefix():
    registry = StatsRegistry()
    registry.group("mmu.t0").counter("hits").inc(1)
    registry.group("mmu.t1").counter("hits").inc(2)
    registry.group("dram").counter("reads").inc(3)
    result = registry.query("mmu.")
    assert set(result) == {"mmu.t0.hits", "mmu.t1.hits"}


def test_registry_reset_clears_values():
    registry = StatsRegistry()
    registry.group("a").counter("x").inc(5)
    registry.reset()
    assert registry.snapshot()["a.x"] == 0


def test_group_is_reused_per_owner():
    registry = StatsRegistry()
    first = registry.group("x")
    second = registry.group("x")
    assert first is second


def test_merge_snapshots_collects_values():
    merged = merge_snapshots([{"a": 1, "b": 2}, {"a": 3}])
    assert merged == {"a": [1, 3], "b": [2]}
